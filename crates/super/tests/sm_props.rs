//! Property tests for the supervision state machine: no fault sequence,
//! however adversarial, can drive it along an illegal edge — and the
//! whole schedule is a deterministic function of the input sequence.

use kop_super::{legal_edge, ModuleState, SuperConfig, SupervisorSm};
use proptest::prelude::*;

/// One external stimulus to the machine.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// A quarantine record / health strike lands.
    Down,
    /// The virtual clock advances this many ticks, polling at each one.
    Advance(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![Just(Op::Down), (1u64..12).prop_map(Op::Advance),]
}

/// Drive the machine with `ops`, resolving each issued restart with the
/// next outcome from `outcomes` (cycled). Returns the observed state
/// trace, one entry per transition opportunity.
fn drive(cfg: SuperConfig, ops: &[Op], outcomes: &[bool]) -> Vec<ModuleState> {
    let mut sm = SupervisorSm::new(cfg);
    let mut now = 0u64;
    let mut outcome_cursor = 0usize;
    let mut trace = vec![sm.state()];
    for op in ops {
        match op {
            Op::Down => {
                sm.on_down();
                trace.push(sm.state());
            }
            Op::Advance(ticks) => {
                for _ in 0..*ticks {
                    now += 1;
                    if let Some(_attempt) = sm.poll(now) {
                        trace.push(sm.state());
                        let ok = outcomes.is_empty() || outcomes[outcome_cursor % outcomes.len()];
                        outcome_cursor += 1;
                        if ok {
                            sm.on_restart_ok();
                        } else {
                            sm.on_restart_err(now);
                        }
                    }
                    trace.push(sm.state());
                }
            }
        }
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn any_fault_sequence_walks_only_legal_edges(
        ops in proptest::collection::vec(arb_op(), 1..60),
        outcomes in proptest::collection::vec(any::<bool>(), 1..8),
        max_restarts in 1u32..6,
    ) {
        let cfg = SuperConfig { max_restarts, ..SuperConfig::default() };
        let trace = drive(cfg, &ops, &outcomes);
        for w in trace.windows(2) {
            prop_assert!(
                legal_edge(&w[0], &w[1]),
                "illegal edge {} -> {}",
                w[0],
                w[1]
            );
        }
        // Failed is terminal: once reached, nothing after it differs.
        if let Some(first_failed) = trace.iter().position(|s| *s == ModuleState::Failed) {
            for s in &trace[first_failed..] {
                prop_assert_eq!(*s, ModuleState::Failed, "left terminal Failed");
            }
        }
    }

    #[test]
    fn schedule_is_deterministic(
        ops in proptest::collection::vec(arb_op(), 1..60),
        outcomes in proptest::collection::vec(any::<bool>(), 1..8),
    ) {
        let cfg = SuperConfig::default();
        let a = drive(cfg, &ops, &outcomes);
        let b = drive(cfg, &ops, &outcomes);
        prop_assert_eq!(a, b, "same inputs must replay to the same schedule");
    }

    #[test]
    fn restart_budget_is_never_exceeded(
        ops in proptest::collection::vec(arb_op(), 1..80),
        max_restarts in 1u32..5,
    ) {
        let cfg = SuperConfig { max_restarts, ..SuperConfig::default() };
        // All restarts fail, so the budget is consumed as fast as possible.
        let mut sm = SupervisorSm::new(cfg);
        let mut now = 0u64;
        let mut issued = 0u32;
        for op in &ops {
            match op {
                Op::Down => sm.on_down(),
                Op::Advance(ticks) => {
                    for _ in 0..*ticks {
                        now += 1;
                        if sm.poll(now).is_some() {
                            issued += 1;
                            sm.on_restart_err(now);
                        }
                    }
                }
            }
        }
        prop_assert!(issued <= max_restarts, "issued {} > budget {}", issued, max_restarts);
        if issued == max_restarts {
            prop_assert_eq!(sm.state(), ModuleState::Failed);
        }
    }
}
