//! Supervisor against a live kernel: quarantine → backoff → restart →
//! serving again, budget exhaustion → terminal `Failed`, and the
//! zero-downtime upgrade path on a device-free module.

use std::sync::Arc;

use kop_compiler::{compile_module, CompileOptions, CompilerKey};
use kop_core::{KernelError, Size, VAddr};
use kop_interp::Interp;
use kop_ir::parse_module;
use kop_kernel::{Kernel, KernelConfig};
use kop_policy::{PolicyModule, ViolationAction};
use kop_super::{upgrade_module, ModuleState, NoDrain, SuperConfig, Supervisor, UpgradeOptions};

const CREDSCAN_SRC: &str = r#"
module "credscan"
global @found : i64 = 0
define i64 @scan(i64 %start, i64 %len) {
entry:
  br %head
head:
  %off = phi i64 [ 0, %entry ], [ %off.next, %next ]
  %c = icmp ult i64 %off, %len
  condbr i1 %c, %body, %done
body:
  %addr = add i64 %start, %off
  %p = inttoptr i64 %addr to ptr
  %word = load i64, ptr %p
  %hit = icmp eq i64 %word, 0x6472777373617020
  condbr i1 %hit, %record, %next
record:
  store i64 %addr, ptr @found
  br %next
next:
  %off.next = add i64 %off, 8
  br %head
done:
  %r = load i64, ptr @found
  ret i64 %r
}
"#;

/// v2 of the same module: identical scanner plus a version probe, so a
/// test can prove dispatch reaches the new code.
const CREDSCAN_V2_SRC: &str = r#"
module "credscan"
global @found : i64 = 0
define i64 @scan(i64 %start, i64 %len) {
entry:
  br %head
head:
  %off = phi i64 [ 0, %entry ], [ %off.next, %next ]
  %c = icmp ult i64 %off, %len
  condbr i1 %c, %body, %done
body:
  %addr = add i64 %start, %off
  %p = inttoptr i64 %addr to ptr
  %word = load i64, ptr %p
  %hit = icmp eq i64 %word, 0x6472777373617020
  condbr i1 %hit, %record, %next
record:
  store i64 %addr, ptr @found
  br %next
next:
  %off.next = add i64 %off, 8
  br %head
done:
  %r = load i64, ptr @found
  ret i64 %r
}
define i64 @ver() {
entry:
  ret i64 2
}
"#;

const SECRET_ADDR: u64 = 0x0060_0000;
const SECRET_WORD: u64 = 0x6472_7773_7361_7020;

fn key() -> CompilerKey {
    CompilerKey::from_passphrase("operator-key", "carat-kop-dev")
}

fn compile(src: &str) -> kop_compiler::SignedModule {
    let module = parse_module(src).expect("parse");
    compile_module(module, &CompileOptions::carat_kop(), &key())
        .expect("compile")
        .signed
}

fn quarantine_kernel() -> Kernel {
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    policy.set_violation_action(ViolationAction::Quarantine);
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    kernel
        .mem
        .write_uint(VAddr(SECRET_ADDR), Size(8), SECRET_WORD)
        .expect("plant secret");
    kernel
}

/// Probe the forbidden word until the kernel quarantines the module.
fn exhaust_budget(kernel: &mut Kernel, name: &str) {
    let mut interp = Interp::new(kernel).expect("interp");
    for _ in 0..16 {
        match interp.call(name, "scan", &[SECRET_ADDR, 8]) {
            Ok(Some(found)) => assert_eq!(found, 0, "probe must be squashed"),
            Err(KernelError::ModuleQuarantined { module, .. }) => {
                assert_eq!(module, name);
                return;
            }
            other => panic!("unexpected probe outcome: {other:?}"),
        }
    }
    panic!("budget never exhausted");
}

/// Tick the supervisor until `name` reports `Running` again (or give up).
fn tick_until_running(sup: &mut Supervisor, kernel: &mut Kernel, name: &str) {
    for _ in 0..64 {
        sup.tick(kernel);
        if sup.state(name) == Some(ModuleState::Running) {
            return;
        }
    }
    panic!(
        "supervisor never restarted '{name}' ({:?})",
        sup.state(name)
    );
}

#[test]
fn quarantined_module_is_restarted_and_serves_again() {
    let mut kernel = quarantine_kernel();
    let signed = compile(CREDSCAN_SRC);
    kernel.insmod(&signed).expect("insmod");

    let mut sup = Supervisor::new(SuperConfig::default());
    sup.attach(&kernel, "credscan", &signed).expect("attach");

    let sites_before = kernel.tracer().site_count();
    exhaust_budget(&mut kernel, "credscan");
    assert!(
        kernel.module("credscan").is_none(),
        "quarantine unloaded it"
    );

    tick_until_running(&mut sup, &mut kernel, "credscan");
    assert!(
        kernel.module("credscan").is_some(),
        "restart re-inserted it"
    );
    assert_eq!(sup.restarts("credscan"), 1);
    assert_eq!(sup.recovery_latencies().len(), 1);
    assert_eq!(
        kernel.violation_count("credscan"),
        0,
        "restart grants a fresh violation budget"
    );
    assert_eq!(
        kernel.tracer().site_count(),
        sites_before,
        "restart must not re-register guard sites"
    );

    // The restarted instance serves: a single fresh probe is squashed
    // (budget 1/3), proving guards and globals were re-armed.
    let mut interp = Interp::new(&mut kernel).expect("interp");
    let found = interp
        .call("credscan", "scan", &[SECRET_ADDR, 8])
        .expect("restarted module serves")
        .expect("returns");
    assert_eq!(found, 0, "@found was re-zeroed and the probe squashed");
}

#[test]
fn restart_budget_exhaustion_is_permanent_failure() {
    let mut kernel = quarantine_kernel();
    let signed = compile(CREDSCAN_SRC);
    kernel.insmod(&signed).expect("insmod");

    let cfg = SuperConfig {
        max_restarts: 2,
        base_backoff_ticks: 1,
        max_backoff_ticks: 4,
    };
    let mut sup = Supervisor::new(cfg);
    sup.attach(&kernel, "credscan", &signed).expect("attach");

    for round in 0..2 {
        exhaust_budget(&mut kernel, "credscan");
        tick_until_running(&mut sup, &mut kernel, "credscan");
        assert_eq!(sup.restarts("credscan"), round + 1);
    }

    // Third quarantine: the budget (2) is gone.
    exhaust_budget(&mut kernel, "credscan");
    for _ in 0..8 {
        sup.tick(&mut kernel);
    }
    assert!(sup.failed("credscan"), "escalates to permanent Failed");
    assert!(kernel.module("credscan").is_none(), "stays unloaded");
    assert_eq!(
        kernel.lifecycle().get("credscan").map(|l| l.state),
        Some("failed".to_string()),
        "operator-visible record"
    );
    assert!(
        kernel
            .dmesg()
            .iter()
            .any(|l| l.contains("FAILED permanently")),
        "permanent failure lands in dmesg"
    );
}

#[test]
fn live_upgrade_swaps_dispatch_and_bumps_epoch() {
    let mut kernel = quarantine_kernel();
    let v1 = compile(CREDSCAN_SRC);
    kernel.insmod(&v1).expect("insmod v1");

    let gen_before = kernel.policy().store_generation();
    let v2 = compile(CREDSCAN_V2_SRC);
    let report = upgrade_module(
        &mut kernel,
        "credscan",
        &v2,
        &mut NoDrain,
        UpgradeOptions::default(),
    )
    .expect("upgrade");

    assert_eq!(report.instance, "credscan#v2");
    assert!(report.migrated.is_empty(), "nothing to migrate on NoDrain");
    assert!(
        report.generation > gen_before,
        "swap bumps the policy snapshot epoch"
    );
    assert_eq!(kernel.dispatch_target("credscan"), Some("credscan#v2"));
    assert!(
        kernel.modules().iter().all(|m| m.name != "credscan"),
        "v1 unloaded after the swap"
    );

    // Calls through the module name reach v2's code.
    let mut interp = Interp::new(&mut kernel).expect("interp");
    let ver = interp
        .call("credscan", "ver", &[])
        .expect("dispatch resolves to v2")
        .expect("returns");
    assert_eq!(ver, 2);

    // A second upgrade walks the instance namespace forward.
    let report2 = upgrade_module(
        &mut kernel,
        "credscan",
        &v2,
        &mut NoDrain,
        UpgradeOptions::default(),
    )
    .expect("second upgrade");
    assert_eq!(report2.instance, "credscan#v3");
    assert!(kernel.modules().iter().all(|m| m.name != "credscan#v2"));
}
