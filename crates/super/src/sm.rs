//! The supervision state machine, pure and deterministic.
//!
//! One [`SupervisorSm`] per supervised module walks
//! `Running → Quarantined → Backoff(n) → Restarting → Running | Failed`
//! against a virtual clock. It decides *when* to restart; the
//! [`crate::Supervisor`] performs the actual kernel calls and feeds the
//! results back in. Keeping the machine pure makes every schedule
//! replayable and lets the proptest drive it with arbitrary fault
//! sequences.

use core::fmt;

/// Where a supervised module is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModuleState {
    /// Loaded and serving.
    Running,
    /// Down (quarantined by the kernel, or reported unhealthy); a
    /// restart has not been scheduled yet.
    Quarantined,
    /// Waiting out the exponential backoff before restart `attempt`.
    Backoff {
        /// The restart attempt this backoff gates (1-based).
        attempt: u32,
        /// Virtual-clock tick at which the restart becomes due.
        until: u64,
    },
    /// Restart `attempt` is in flight.
    Restarting {
        /// The restart attempt being performed (1-based).
        attempt: u32,
    },
    /// Restart budget exhausted; the module stays down permanently.
    Failed,
}

impl ModuleState {
    /// Operator-facing label (mirrored into the kernel's lifecycle
    /// registry, so `/dev/trace lifecycle` shows it).
    pub fn label(&self) -> String {
        match self {
            ModuleState::Running => "running".into(),
            ModuleState::Quarantined => "quarantined".into(),
            ModuleState::Backoff { attempt, .. } => format!("backoff({attempt})"),
            ModuleState::Restarting { attempt } => format!("restarting({attempt})"),
            ModuleState::Failed => "failed".into(),
        }
    }
}

impl fmt::Display for ModuleState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Whether `from → to` is an edge the supervision machine may take.
/// Staying put is always legal; `Failed` is terminal.
pub fn legal_edge(from: &ModuleState, to: &ModuleState) -> bool {
    use ModuleState::*;
    if from == to {
        return true;
    }
    match (from, to) {
        (Running, Quarantined) => true,
        (Quarantined, Backoff { .. }) | (Quarantined, Failed) => true,
        (Backoff { .. }, Restarting { .. }) => true,
        (Restarting { .. }, Running)
        | (Restarting { .. }, Backoff { .. })
        | (Restarting { .. }, Failed) => true,
        // Backoff reschedules (e.g. a fresh quarantine observed while
        // waiting) keep the same shape with a later attempt.
        (Backoff { .. }, Backoff { .. }) => true,
        _ => false,
    }
}

/// Supervision policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct SuperConfig {
    /// Restarts granted before the module is declared [`ModuleState::Failed`].
    pub max_restarts: u32,
    /// Backoff before the first restart, in virtual-clock ticks.
    pub base_backoff_ticks: u64,
    /// Backoff ceiling (the exponential curve saturates here).
    pub max_backoff_ticks: u64,
}

impl Default for SuperConfig {
    fn default() -> Self {
        SuperConfig {
            max_restarts: 5,
            base_backoff_ticks: 2,
            max_backoff_ticks: 64,
        }
    }
}

impl SuperConfig {
    /// Deterministic exponential backoff for restart `attempt` (1-based):
    /// `min(base · 2^(attempt-1), max)`.
    pub fn backoff(&self, attempt: u32) -> u64 {
        let shifted = self
            .base_backoff_ticks
            .checked_shl(attempt.saturating_sub(1))
            .unwrap_or(u64::MAX);
        shifted.min(self.max_backoff_ticks)
    }
}

/// The per-module supervision machine.
#[derive(Clone, Debug)]
pub struct SupervisorSm {
    cfg: SuperConfig,
    state: ModuleState,
    /// Restarts performed or in flight so far.
    attempts: u32,
}

impl SupervisorSm {
    /// A machine for a freshly attached (running) module.
    pub fn new(cfg: SuperConfig) -> SupervisorSm {
        SupervisorSm {
            cfg,
            state: ModuleState::Running,
            attempts: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> ModuleState {
        self.state
    }

    /// Restart attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    fn transition(&mut self, to: ModuleState) {
        debug_assert!(
            legal_edge(&self.state, &to),
            "illegal supervision edge {} -> {}",
            self.state,
            to
        );
        self.state = to;
    }

    /// The module went down (kernel quarantine observed, or a
    /// watchdog/reset health strike). Only meaningful while `Running`;
    /// any other state already knows the module is down.
    pub fn on_down(&mut self) {
        if self.state == ModuleState::Running {
            self.transition(ModuleState::Quarantined);
        }
    }

    /// Advance to virtual-clock tick `now`. Returns `Some(attempt)` when
    /// a restart is due — the caller must perform it and report back via
    /// [`Self::on_restart_ok`] / [`Self::on_restart_err`].
    pub fn poll(&mut self, now: u64) -> Option<u32> {
        match self.state {
            ModuleState::Quarantined => {
                let attempt = self.attempts + 1;
                if attempt > self.cfg.max_restarts {
                    self.transition(ModuleState::Failed);
                } else {
                    self.transition(ModuleState::Backoff {
                        attempt,
                        until: now + self.cfg.backoff(attempt),
                    });
                }
                None
            }
            ModuleState::Backoff { attempt, until } if now >= until => {
                self.attempts = attempt;
                self.transition(ModuleState::Restarting { attempt });
                Some(attempt)
            }
            _ => None,
        }
    }

    /// The restart issued by [`Self::poll`] succeeded.
    pub fn on_restart_ok(&mut self) {
        debug_assert!(matches!(self.state, ModuleState::Restarting { .. }));
        self.transition(ModuleState::Running);
    }

    /// The restart issued by [`Self::poll`] failed at tick `now`.
    pub fn on_restart_err(&mut self, now: u64) {
        let ModuleState::Restarting { attempt } = self.state else {
            debug_assert!(false, "restart_err outside Restarting");
            return;
        };
        let next = attempt + 1;
        if next > self.cfg.max_restarts {
            self.transition(ModuleState::Failed);
        } else {
            self.transition(ModuleState::Backoff {
                attempt: next,
                until: now + self.cfg.backoff(next),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_saturates() {
        let cfg = SuperConfig::default();
        assert_eq!(cfg.backoff(1), 2);
        assert_eq!(cfg.backoff(2), 4);
        assert_eq!(cfg.backoff(3), 8);
        assert_eq!(cfg.backoff(6), 64);
        assert_eq!(cfg.backoff(60), 64, "saturates at the ceiling");
    }

    #[test]
    fn happy_restart_walks_the_canonical_edges() {
        let mut sm = SupervisorSm::new(SuperConfig::default());
        assert_eq!(sm.state(), ModuleState::Running);
        sm.on_down();
        assert_eq!(sm.state(), ModuleState::Quarantined);
        assert_eq!(sm.poll(10), None);
        assert_eq!(
            sm.state(),
            ModuleState::Backoff {
                attempt: 1,
                until: 12
            }
        );
        assert_eq!(sm.poll(11), None, "backoff not yet elapsed");
        assert_eq!(sm.poll(12), Some(1));
        assert_eq!(sm.state(), ModuleState::Restarting { attempt: 1 });
        sm.on_restart_ok();
        assert_eq!(sm.state(), ModuleState::Running);
        assert_eq!(sm.attempts(), 1);
    }

    #[test]
    fn budget_exhaustion_is_terminal_failed() {
        let cfg = SuperConfig {
            max_restarts: 2,
            ..SuperConfig::default()
        };
        let mut sm = SupervisorSm::new(cfg);
        let mut now = 0;
        for _ in 0..2 {
            sm.on_down();
            sm.poll(now);
            let ModuleState::Backoff { until, .. } = sm.state() else {
                panic!("expected backoff");
            };
            now = until;
            let attempt = sm.poll(now).expect("restart due");
            assert!(attempt <= 2);
            sm.on_restart_ok();
        }
        sm.on_down();
        sm.poll(now);
        assert_eq!(sm.state(), ModuleState::Failed);
        // Terminal: nothing moves it again.
        sm.on_down();
        assert_eq!(sm.poll(now + 1000), None);
        assert_eq!(sm.state(), ModuleState::Failed);
    }

    #[test]
    fn failed_restart_reschedules_with_longer_backoff() {
        let mut sm = SupervisorSm::new(SuperConfig::default());
        sm.on_down();
        sm.poll(0);
        let a1 = sm.poll(2).expect("first restart due");
        assert_eq!(a1, 1);
        sm.on_restart_err(2);
        let ModuleState::Backoff { attempt, until } = sm.state() else {
            panic!("expected rescheduled backoff");
        };
        assert_eq!(attempt, 2);
        assert_eq!(until, 2 + 4, "second backoff is twice the first");
    }
}
