//! Zero-downtime live upgrade: load v2 alongside v1, drain v1's
//! in-flight work (bounded), swap dispatch atomically behind a policy
//! snapshot generation bump, and only then unload v1.
//!
//! Ordering is the whole protocol:
//!
//! 1. **Load v2** under a fresh instance name (`name#v2`, `name#v3`, …).
//!    All attestation and static checks run exactly as at first insmod;
//!    v1 keeps serving throughout.
//! 2. **Drain v1** for at most [`UpgradeOptions::drain_ticks`] device
//!    ticks. Whatever is still undelivered after the budget is *migrated*
//!    — pulled off v1's queues for the caller to resubmit through v2 —
//!    rather than waited on forever (a wedged device must not block the
//!    upgrade).
//! 3. **Swap dispatch** (`alias → v2` is one map write), then **bump the
//!    policy snapshot generation**. Any admit decision still holding a
//!    pre-swap snapshot is now detectably stale: its generation is below
//!    the post-swap epoch, so stale grants cannot be admitted after the
//!    swap is visible.
//! 4. **Unload v1.** Its queues are empty or migrated, dispatch no longer
//!    resolves to it, and its policy snapshot generation is dead.

use kop_compiler::SignedModule;
use kop_core::{KernelError, KernelResult};
use kop_kernel::Kernel;
use kop_trace::{Producer, TraceEvent};

/// How an upgrade reaches the outgoing instance's in-flight work.
///
/// The supervisor crate cannot depend on any particular device model, so
/// the caller lends it a port: `drain` runs the device forward, `pending`
/// reports undelivered frames, and `migrate` pulls whatever is left off
/// the queues for resubmission through the successor.
pub trait DrainPort {
    /// Run the outgoing instance's device for up to `max_ticks` ticks,
    /// delivering whatever it can. Returns frames delivered.
    fn drain(&mut self, max_ticks: u64) -> u64;
    /// Frames still queued but undelivered.
    fn pending(&self) -> u64;
    /// Remove all undelivered frames from the queues and return their
    /// bytes, in submission order. Delivered frames must not appear here
    /// (they would be duplicated on resubmission).
    fn migrate(&mut self) -> Vec<Vec<u8>>;
}

/// A port for modules with no drainable device state.
pub struct NoDrain;

impl DrainPort for NoDrain {
    fn drain(&mut self, _max_ticks: u64) -> u64 {
        0
    }
    fn pending(&self) -> u64 {
        0
    }
    fn migrate(&mut self) -> Vec<Vec<u8>> {
        Vec::new()
    }
}

/// Knobs for [`upgrade_module`].
#[derive(Clone, Copy, Debug)]
pub struct UpgradeOptions {
    /// Device-tick budget for the drain phase; work still pending after
    /// this is forcibly migrated.
    pub drain_ticks: u64,
}

impl Default for UpgradeOptions {
    fn default() -> Self {
        UpgradeOptions { drain_ticks: 256 }
    }
}

/// What an upgrade did.
#[derive(Clone, Debug)]
pub struct UpgradeReport {
    /// Instance name the new version was loaded as (dispatch for the
    /// module name now resolves here).
    pub instance: String,
    /// Frames the outgoing instance delivered during the drain phase.
    pub drained: u64,
    /// Undelivered frames forcibly migrated off the outgoing instance;
    /// the caller must resubmit them through the successor (in order,
    /// before new traffic) to preserve zero-loss.
    pub migrated: Vec<Vec<u8>>,
    /// Policy snapshot generation published by the post-swap epoch bump;
    /// grants older than this are stale.
    pub generation: u64,
}

/// First unused upgrade instance name for `name`: `name#v2`, `name#v3`, …
fn next_instance_name(kernel: &Kernel, name: &str) -> String {
    (2..)
        .map(|k| format!("{name}#v{k}"))
        .find(|candidate| kernel.module(candidate).is_none())
        .expect("unbounded instance namespace")
}

/// Upgrade the module serving `name` to `signed_v2` with zero downtime.
/// See the module docs for the protocol; `drain` is the port to the
/// outgoing instance's device (use [`NoDrain`] for pure-compute modules).
///
/// On success, dispatch for `name` resolves to the returned
/// [`UpgradeReport::instance`] and the outgoing instance is unloaded.
/// On any error before the swap, v1 is left serving untouched.
pub fn upgrade_module(
    kernel: &mut Kernel,
    name: &str,
    signed_v2: &SignedModule,
    drain: &mut dyn DrainPort,
    opts: UpgradeOptions,
) -> KernelResult<UpgradeReport> {
    // Resolve the instance actually serving `name` (this may itself be a
    // previous upgrade's `name#v2`).
    let outgoing = kernel.dispatch_target(name).unwrap_or(name).to_string();
    if kernel.module(&outgoing).is_none() {
        return Err(KernelError::NoSuchModule(outgoing));
    }

    // 1. Load v2 alongside; v1 keeps serving.
    let instance = next_instance_name(kernel, name);
    kernel.insmod_named(signed_v2, &instance)?;

    // 2. Bounded drain, then forced migration of the remainder.
    let drained = drain.drain(opts.drain_ticks);
    let migrated = if drain.pending() > 0 {
        drain.migrate()
    } else {
        Vec::new()
    };

    // Carry any per-module policy override to the successor so the swap
    // does not widen (or narrow) what guards admit.
    let outgoing_policy = kernel.policy_for(&outgoing);
    if !std::sync::Arc::ptr_eq(&outgoing_policy, kernel.policy()) {
        kernel.set_module_policy(&instance, outgoing_policy);
    }

    // 3. Swap dispatch, then bump the policy epoch: grants snapshotted
    // before this line carry a lower generation and are refused admission.
    kernel.set_dispatch_alias(name, &instance)?;
    let generation = kernel.policy_for(&instance).bump_epoch();
    kernel.tracer().record(
        Producer::Loader,
        TraceEvent::UpgradeSwap {
            module: name.to_string(),
            instance: instance.clone(),
            generation,
        },
    );
    kernel.printk(&format!(
        "carat: upgraded '{name}' -> '{instance}' (epoch {generation}, drained {drained}, migrated {})",
        migrated.len()
    ));

    // 4. v1 is invisible to dispatch and its grants are stale: unload.
    if outgoing != instance {
        kernel.rmmod(&outgoing)?;
    }

    Ok(UpgradeReport {
        instance,
        drained,
        migrated,
        generation,
    })
}
