//! # kop-super — the module lifecycle supervisor
//!
//! CARAT KOP quarantines a module the instant it exhausts its violation
//! budget, which protects the kernel but leaves the workload down. This
//! crate closes the loop with a deterministic supervision layer:
//!
//! * [`SupervisorSm`] — the pure per-module state machine
//!   (`Running → Quarantined → Backoff(n) → Restarting → Running | Failed`)
//!   with exponential backoff on a virtual clock and a hard restart
//!   budget. Every transition is checked against [`legal_edge`].
//! * [`Supervisor`] — drives a fleet of machines against a live
//!   [`kop_kernel::Kernel`]: consumes quarantine records and health
//!   strikes, and re-insmods from the cached `Arc<ModuleImage>` (no
//!   recompile; attestation re-verified; same addresses, so per-site
//!   trace counts reconcile across restarts).
//! * [`upgrade_module`] — zero-downtime live upgrade: load v2 alongside
//!   v1, bounded drain + forced migration of in-flight frames, atomic
//!   dispatch swap behind a policy snapshot generation bump (stale
//!   grants refuse admission), then unload v1.
//!
//! The chaos-soak harness in `kop-bench` (`reproduce soak`) drives fault
//! storms against a supervised fleet and shows supervised delivered
//! fraction dominating the unsupervised baseline at every fault rate.

#![warn(missing_docs)]

pub mod sm;
pub mod supervisor;
pub mod upgrade;

pub use sm::{legal_edge, ModuleState, SuperConfig, SupervisorSm};
pub use supervisor::{CachedModule, Supervisor};
pub use upgrade::{upgrade_module, DrainPort, NoDrain, UpgradeOptions, UpgradeReport};
