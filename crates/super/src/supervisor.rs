//! The supervisor: watches the kernel's quarantine stream and
//! health signals, and re-insmods supervised modules from their cached
//! execution images under deterministic backoff.

use std::collections::BTreeMap;
use std::sync::Arc;

use kop_compiler::SignedModule;
use kop_core::{KernelError, KernelResult};
use kop_kernel::{Kernel, ModuleImage, ModuleLayout};

use crate::sm::{ModuleState, SuperConfig, SupervisorSm};

/// Everything needed to re-insert a module without recompiling:
/// the signed container (attestation re-verified on every restart), the
/// shared execution image, and the address layout to rebind at.
#[derive(Clone)]
pub struct CachedModule {
    /// The signed container the module was originally loaded from.
    pub signed: SignedModule,
    /// The execution image built at first insmod (bytecode pre-resolved
    /// against `layout`'s addresses; guard-site table kept alive so
    /// per-site trace counts reconcile across restarts).
    pub image: Arc<ModuleImage>,
    /// The address-space footprint to rebind at.
    pub layout: ModuleLayout,
}

struct Tenant {
    cached: CachedModule,
    sm: SupervisorSm,
    /// Virtual-clock tick at which the module was observed down
    /// (recovery-latency bookkeeping).
    down_since: Option<u64>,
}

/// Supervises a fleet of loaded modules: consumes [`Kernel`]
/// quarantine records (and explicit health strikes), schedules restarts
/// on a deterministic virtual clock, and escalates to permanent
/// [`ModuleState::Failed`] when the restart budget runs out.
///
/// Drive it by calling [`Supervisor::tick`] once per supervision round;
/// each tick advances the virtual clock by one.
pub struct Supervisor {
    cfg: SuperConfig,
    tenants: BTreeMap<String, Tenant>,
    clock: u64,
    quarantine_cursor: usize,
    recovery_latencies: Vec<u64>,
}

impl Supervisor {
    /// A supervisor with the given policy knobs.
    pub fn new(cfg: SuperConfig) -> Supervisor {
        Supervisor {
            cfg,
            tenants: BTreeMap::new(),
            clock: 0,
            quarantine_cursor: 0,
            recovery_latencies: Vec::new(),
        }
    }

    /// Put the loaded module `name` under supervision, caching its image
    /// and layout for restart. The signed container must be the one the
    /// module was loaded from.
    pub fn attach(
        &mut self,
        kernel: &Kernel,
        name: &str,
        signed: &SignedModule,
    ) -> KernelResult<()> {
        let m = kernel
            .module(name)
            .ok_or_else(|| KernelError::NoSuchModule(name.to_string()))?;
        let layout = m.layout();
        if signed.content_hash() != layout.content_hash {
            return Err(KernelError::BadSignature(
                "attach: container does not match loaded module".into(),
            ));
        }
        self.tenants.insert(
            name.to_string(),
            Tenant {
                cached: CachedModule {
                    signed: signed.clone(),
                    image: Arc::clone(m.image()),
                    layout,
                },
                sm: SupervisorSm::new(self.cfg),
                down_since: None,
            },
        );
        Ok(())
    }

    /// Consume any new kernel quarantine records addressed to supervised
    /// modules. Called automatically by [`Self::tick`].
    pub fn observe(&mut self, kernel: &Kernel) {
        let records = kernel.quarantine_records();
        for rec in &records[self.quarantine_cursor.min(records.len())..] {
            if let Some(t) = self.tenants.get_mut(&rec.module) {
                t.sm.on_down();
                t.down_since.get_or_insert(self.clock);
            }
        }
        self.quarantine_cursor = records.len();
    }

    /// Report a health strike from outside the quarantine path (e.g. the
    /// driver watchdog fired or the adapter reset repeatedly): the module
    /// is unloaded if still resident and scheduled for supervised
    /// restart like a quarantine.
    pub fn report_unhealthy(&mut self, kernel: &mut Kernel, name: &str) -> KernelResult<()> {
        let t = self
            .tenants
            .get_mut(name)
            .ok_or_else(|| KernelError::NoSuchModule(name.to_string()))?;
        if kernel.modules().iter().any(|m| m.name == name) {
            kernel.rmmod(name)?;
        }
        kernel.printk(&format!("carat: supervisor: health strike on '{name}'"));
        kernel.lifecycle().set_state(name, "quarantined");
        t.sm.on_down();
        t.down_since.get_or_insert(self.clock);
        Ok(())
    }

    /// One supervision round: advance the virtual clock, fold in new
    /// quarantine records, and perform any restart that has come due.
    pub fn tick(&mut self, kernel: &mut Kernel) {
        self.clock += 1;
        self.observe(kernel);
        let now = self.clock;
        let mut finished_recoveries = Vec::new();
        for (name, t) in self.tenants.iter_mut() {
            let before = t.sm.state();
            if let Some(_attempt) = t.sm.poll(now) {
                match kernel.restart_module(&t.cached.signed, &t.cached.image, &t.cached.layout) {
                    Ok(()) => {
                        t.sm.on_restart_ok();
                        if let Some(down) = t.down_since.take() {
                            finished_recoveries.push(now - down);
                        }
                    }
                    Err(e) => {
                        kernel.printk(&format!(
                            "carat: supervisor: restart of '{name}' failed: {e}"
                        ));
                        t.sm.on_restart_err(now);
                    }
                }
            }
            let after = t.sm.state();
            if after != before {
                match after {
                    // `Running` was already mirrored by restart_module
                    // (with the restart count); `Quarantined` by the
                    // kernel's quarantine path.
                    ModuleState::Backoff { .. }
                    | ModuleState::Restarting { .. }
                    | ModuleState::Failed => {
                        kernel.lifecycle().set_state(name, &after.label());
                    }
                    _ => {}
                }
                if after == ModuleState::Failed {
                    kernel.printk(&format!(
                        "carat: supervisor: module '{name}' FAILED permanently after {} restart(s)",
                        t.sm.attempts()
                    ));
                }
            }
        }
        self.recovery_latencies.extend(finished_recoveries);
    }

    /// Current supervision state of `name`.
    pub fn state(&self, name: &str) -> Option<ModuleState> {
        self.tenants.get(name).map(|t| t.sm.state())
    }

    /// Restarts consumed by `name` so far.
    pub fn restarts(&self, name: &str) -> u32 {
        self.tenants.get(name).map_or(0, |t| t.sm.attempts())
    }

    /// Whether `name` has been declared permanently failed.
    pub fn failed(&self, name: &str) -> bool {
        self.state(name) == Some(ModuleState::Failed)
    }

    /// The cached container/image/layout for `name` (e.g. for a live
    /// upgrade to reuse).
    pub fn cached(&self, name: &str) -> Option<&CachedModule> {
        self.tenants.get(name).map(|t| &t.cached)
    }

    /// Ticks from observed-down to serving-again, one entry per
    /// completed recovery (the recovery-latency CDF's raw samples).
    pub fn recovery_latencies(&self) -> &[u64] {
        &self.recovery_latencies
    }

    /// The supervisor's virtual clock (ticks == [`Self::tick`] calls).
    pub fn clock(&self) -> u64 {
        self.clock
    }
}
