//! Ring-buffer edge cases the satellite checklist demands: wraparound /
//! overwrite ordering, drop-counter accuracy under a full buffer, and a
//! property test that per-producer sequence numbers are gap-free when no
//! drops are reported.

use proptest::prelude::*;

use kop_trace::{Producer, TraceEvent, Tracer};

fn producer_of(i: u64) -> Producer {
    Producer::ALL[(i % Producer::ALL.len() as u64) as usize]
}

#[test]
fn exact_fill_has_no_drops_then_one_more_drops_one() {
    let t = Tracer::with_capacity(8);
    t.set_enabled(true);
    for i in 0..8 {
        t.record(producer_of(i), TraceEvent::Xmit { bytes: i });
    }
    assert_eq!(t.snapshot().total_drops(), 0, "exactly full != overflow");
    t.record(Producer::Bench, TraceEvent::Reset);
    let snap = t.snapshot();
    assert_eq!(snap.total_drops(), 1);
    assert_eq!(snap.records.len(), 8);
    // The overwritten record was the oldest one, emitted by producer_of(0).
    assert_eq!(
        snap.drops
            .iter()
            .find(|(p, _)| *p == producer_of(0))
            .unwrap()
            .1,
        1
    );
}

#[test]
fn sustained_overflow_keeps_exactly_the_newest_window() {
    let t = Tracer::with_capacity(16);
    t.set_enabled(true);
    for i in 0..1000u64 {
        t.record(Producer::Driver, TraceEvent::Xmit { bytes: i });
    }
    let snap = t.snapshot();
    assert_eq!(snap.records.len(), 16);
    let bytes: Vec<u64> = snap
        .records
        .iter()
        .map(|r| match r.event {
            TraceEvent::Xmit { bytes } => bytes,
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(bytes, (984..1000).collect::<Vec<u64>>());
    assert_eq!(t.drops(Producer::Driver), 984);
    assert_eq!(t.seq(Producer::Driver), 1000);
}

#[test]
fn drop_accounting_balances_emitted_vs_retained() {
    // For every producer: seq (ever emitted) == retained + dropped,
    // no matter how the producers interleave.
    let t = Tracer::with_capacity(7);
    t.set_enabled(true);
    for i in 0..123u64 {
        t.record(producer_of(i * 7 + 3), TraceEvent::Xmit { bytes: i });
    }
    let snap = t.snapshot();
    for p in Producer::ALL {
        let retained = snap.by_producer(p).len() as u64;
        let dropped = snap.drops.iter().find(|(q, _)| *q == p).unwrap().1;
        let emitted = snap.seqs.iter().find(|(q, _)| *q == p).unwrap().1;
        assert_eq!(emitted, retained + dropped, "balance for {p}");
    }
    assert_eq!(snap.clock, 123);
}

proptest! {
    #[test]
    fn seqs_are_gap_free_per_producer_when_no_drops(
        picks in proptest::collection::vec(0usize..Producer::ALL.len(), 1..200)
    ) {
        // Capacity >= event count: nothing can be overwritten.
        let t = Tracer::with_capacity(picks.len());
        t.set_enabled(true);
        for &p in &picks {
            t.record(Producer::ALL[p], TraceEvent::Reset);
        }
        let snap = t.snapshot();
        prop_assert_eq!(snap.total_drops(), 0);
        for p in Producer::ALL {
            let seqs: Vec<u64> = snap.by_producer(p).iter().map(|r| r.seq).collect();
            // Gap-free: exactly 0..k in order.
            let expect: Vec<u64> = (0..seqs.len() as u64).collect();
            prop_assert_eq!(&seqs, &expect, "producer {}", p);
        }
        // Global timestamps are unique and strictly increasing.
        for w in snap.records.windows(2) {
            prop_assert!(w[0].ts < w[1].ts);
        }
    }

    #[test]
    fn retained_seqs_stay_ordered_even_with_drops(
        picks in proptest::collection::vec(0usize..Producer::ALL.len(), 1..300),
        cap in 1usize..32,
    ) {
        let t = Tracer::with_capacity(cap);
        t.set_enabled(true);
        for &p in &picks {
            t.record(Producer::ALL[p], TraceEvent::Reset);
        }
        let snap = t.snapshot();
        prop_assert!(snap.records.len() <= cap);
        for p in Producer::ALL {
            let seqs: Vec<u64> = snap.by_producer(p).iter().map(|r| r.seq).collect();
            // Retained records per producer are strictly ascending and
            // contiguous at the tail (drops only eat the oldest).
            for w in seqs.windows(2) {
                prop_assert_eq!(w[1], w[0] + 1, "tail-contiguous for {}", p);
            }
            let emitted = snap.seqs.iter().find(|(q, _)| *q == p).unwrap().1;
            if let Some(&last) = seqs.last() {
                prop_assert_eq!(last, emitted - 1, "newest retained is newest emitted");
            }
        }
    }
}
