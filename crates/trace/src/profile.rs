//! Per-guard-site profiling: hit counts and log2-bucketed latency
//! histograms.
//!
//! Aggregation is independent of the ring buffer — the ring can overwrite
//! old events, but the profiler never loses a check, so per-site totals
//! reconcile exactly with the aggregate guard-check count (asserted by
//! the root `tests/trace.rs`).

use crate::sites::SiteId;

/// Number of log2 latency buckets. Bucket `i` covers `[2^i, 2^(i+1))`
/// nanoseconds (bucket 0 also absorbs 0 ns); 32 buckets reach ~4.3 s.
pub const LATENCY_BUCKETS: usize = 32;

/// Map a latency to its log2 bucket.
pub fn latency_bucket(ns: u64) -> usize {
    (63 - ns.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
}

/// Aggregated profile of one guard site.
#[derive(Clone, PartialEq, Debug)]
pub struct SiteProfile {
    /// Total checks observed at this site.
    pub hits: u64,
    /// Checks that did not come back `Allowed`.
    pub denied: u64,
    /// Sum of check latencies (host ns).
    pub total_ns: u64,
    /// log2 latency histogram; `hist[i]` counts checks in `[2^i, 2^(i+1))` ns.
    pub hist: [u64; LATENCY_BUCKETS],
    /// Lowest guarded address attributed to this site (`u64::MAX` when no
    /// check ever carried an address).
    pub lo_addr: u64,
    /// One past the highest guarded byte attributed to this site (0 when
    /// no check ever carried an address).
    pub hi_addr: u64,
}

impl Default for SiteProfile {
    fn default() -> SiteProfile {
        SiteProfile {
            hits: 0,
            denied: 0,
            total_ns: 0,
            hist: [0; LATENCY_BUCKETS],
            lo_addr: u64::MAX,
            hi_addr: 0,
        }
    }
}

impl SiteProfile {
    /// Mean check latency in ns (0 when no hits).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.hits).unwrap_or(0)
    }

    /// Index of the highest non-empty histogram bucket, if any.
    pub fn max_bucket(&self) -> Option<usize> {
        self.hist.iter().rposition(|&n| n > 0)
    }

    /// The observed address envelope `[lo, hi)` of this site's checks, if
    /// any check carried its guarded address. The promotion tier uses the
    /// envelope to find the policy region a hot site's accesses live in.
    pub fn envelope(&self) -> Option<(u64, u64)> {
        (self.hi_addr > self.lo_addr).then_some((self.lo_addr, self.hi_addr))
    }
}

/// Dense per-site profile store, indexed by raw [`SiteId`].
#[derive(Debug, Default)]
pub(crate) struct Profiler {
    per_site: Vec<SiteProfile>,
}

impl Profiler {
    pub(crate) fn record(&mut self, site: SiteId, ns: u64, denied: bool) {
        self.record_at(site, ns, denied, None);
    }

    pub(crate) fn record_at(
        &mut self,
        site: SiteId,
        ns: u64,
        denied: bool,
        span: Option<(u64, u64)>,
    ) {
        let idx = site.0 as usize;
        if idx >= self.per_site.len() {
            self.per_site.resize(idx + 1, SiteProfile::default());
        }
        let p = &mut self.per_site[idx];
        p.hits += 1;
        if denied {
            p.denied += 1;
        }
        p.total_ns += ns;
        p.hist[latency_bucket(ns)] += 1;
        if let Some((addr, size)) = span {
            p.lo_addr = p.lo_addr.min(addr);
            p.hi_addr = p.hi_addr.max(addr.saturating_add(size));
        }
    }

    pub(crate) fn get(&self, site: SiteId) -> SiteProfile {
        self.per_site
            .get(site.0 as usize)
            .cloned()
            .unwrap_or_default()
    }

    pub(crate) fn snapshot(&self) -> Vec<(SiteId, SiteProfile)> {
        self.per_site
            .iter()
            .enumerate()
            .filter(|(_, p)| p.hits > 0)
            .map(|(i, p)| (SiteId(i as u32), p.clone()))
            .collect()
    }

    pub(crate) fn total_hits(&self) -> u64 {
        self.per_site.iter().map(|p| p.hits).sum()
    }

    pub(crate) fn reset(&mut self) {
        self.per_site.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(latency_bucket(1), 0);
        assert_eq!(latency_bucket(2), 1);
        assert_eq!(latency_bucket(3), 1);
        assert_eq!(latency_bucket(4), 2);
        assert_eq!(latency_bucket(1023), 9);
        assert_eq!(latency_bucket(1024), 10);
        assert_eq!(latency_bucket(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn envelope_tracks_the_observed_address_window() {
        let mut p = Profiler::default();
        assert_eq!(p.get(SiteId(1)).envelope(), None);
        p.record(SiteId(1), 10, false); // no address attached
        assert_eq!(p.get(SiteId(1)).envelope(), None);
        p.record_at(SiteId(1), 10, false, Some((0x1000, 8)));
        p.record_at(SiteId(1), 10, false, Some((0x1040, 16)));
        assert_eq!(p.get(SiteId(1)).envelope(), Some((0x1000, 0x1050)));
        assert_eq!(p.get(SiteId(1)).hits, 3);
    }

    #[test]
    fn profile_aggregates_hits_and_latency() {
        let mut p = Profiler::default();
        p.record(SiteId(2), 100, false);
        p.record(SiteId(2), 300, true);
        let prof = p.get(SiteId(2));
        assert_eq!(prof.hits, 2);
        assert_eq!(prof.denied, 1);
        assert_eq!(prof.total_ns, 400);
        assert_eq!(prof.mean_ns(), 200);
        assert_eq!(
            prof.hist[latency_bucket(100)] + prof.hist[latency_bucket(300)],
            2
        );
        assert_eq!(p.total_hits(), 2);
        assert_eq!(p.get(SiteId(0)).hits, 0);
        assert_eq!(p.snapshot().len(), 1);
    }
}
