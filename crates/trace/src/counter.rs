//! Named atomic counters and the registry that unifies them.
//!
//! Before kop-trace, every layer kept its own ad-hoc counter struct
//! (`DriverStats`, the policy's `GuardStats`, per-figure locals). A
//! [`Counter`] is a cheaply-cloneable named counter cell; subsystems keep
//! holding their counters directly (same cost as before) and *also*
//! register them into the tracer's [`CounterRegistry`], so figures and
//! examples read one sorted snapshot instead of three structs.
//!
//! ## Striping
//!
//! A counter is not one `AtomicU64` but a small array of cache-line
//! padded stripes; each thread adds to its own stripe and [`Counter::get`]
//! sums them. A single shared cell turns into a cross-core ping-pong line
//! the moment two guard paths hammer it (the multi-queue forwarding
//! figure measured *negative* scaling from one queue to two purely from
//! `policy.checks`/`policy.permitted` contention), while striped adds
//! stay core-local. Totals remain exact: every add lands in exactly one
//! stripe and the sum loses nothing.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Stripes per counter. Concurrent threads get consecutive stripe
/// indices, so any ≤16 threads born together never share a line.
const STRIPES: usize = 16;

/// One cache-line padded stripe, so adds from different threads never
/// false-share.
#[repr(align(64))]
struct Stripe(AtomicU64);

/// The stripe this thread adds to.
fn stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

struct CounterInner {
    name: String,
    stripes: [Stripe; STRIPES],
}

/// A named monotonic (resettable) counter. Clones share the same cell.
#[derive(Clone)]
pub struct Counter {
    inner: Arc<CounterInner>,
}

impl Counter {
    /// New counter starting at zero.
    pub fn new(name: impl Into<String>) -> Counter {
        Counter {
            inner: Arc::new(CounterInner {
                name: name.into(),
                stripes: std::array::from_fn(|_| Stripe(AtomicU64::new(0))),
            }),
        }
    }

    /// The counter's registry name (e.g. `"policy.checks"`).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Add `n` (to this thread's stripe).
    #[inline]
    pub fn add(&self, n: u64) {
        self.inner.stripes[stripe()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (sum across stripes).
    #[inline]
    pub fn get(&self) -> u64 {
        self.inner
            .stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Overwrite the value (used by reset paths; not atomic with respect
    /// to concurrent adds — reset only quiesced counters).
    pub fn set(&self, v: u64) {
        self.inner.stripes[0].0.store(v, Ordering::Relaxed);
        for s in &self.inner.stripes[1..] {
            s.0.store(0, Ordering::Relaxed);
        }
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.set(0);
    }

    /// True if `other` is a clone of this counter (same cell).
    pub fn same_cell(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({}={})", self.name(), self.get())
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name(), self.get())
    }
}

/// The one place figures read counters from. Registration is idempotent
/// per name: re-registering a name keeps the first cell (so two layers
/// can race to register without clobbering live counts).
#[derive(Default)]
pub struct CounterRegistry {
    counters: Mutex<Vec<Counter>>,
}

impl CounterRegistry {
    /// Empty registry.
    pub fn new() -> CounterRegistry {
        CounterRegistry::default()
    }

    /// Get the counter named `name`, creating it at zero if absent.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.counters.lock();
        if let Some(c) = counters.iter().find(|c| c.name() == name) {
            return c.clone();
        }
        let c = Counter::new(name);
        counters.push(c.clone());
        c
    }

    /// Register an externally-created counter. Returns `false` (and keeps
    /// the existing cell) if the name is already taken by a different cell.
    pub fn register(&self, counter: &Counter) -> bool {
        let mut counters = self.counters.lock();
        if let Some(existing) = counters.iter().find(|c| c.name() == counter.name()) {
            return existing.same_cell(counter);
        }
        counters.push(counter.clone());
        true
    }

    /// Look up a counter by name without creating it.
    pub fn get(&self, name: &str) -> Option<Counter> {
        self.counters
            .lock()
            .iter()
            .find(|c| c.name() == name)
            .cloned()
    }

    /// All `(name, value)` pairs, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .counters
            .lock()
            .iter()
            .map(|c| (c.name().to_string(), c.get()))
            .collect();
        out.sort();
        out
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.counters.lock().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reset every registered counter to zero.
    pub fn reset_all(&self) {
        for c in self.counters.lock().iter() {
            c.reset();
        }
    }
}

impl fmt::Debug for CounterRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.snapshot()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_adds_sum_exactly_across_threads() {
        let c = Counter::new("striped");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..50_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 400_000);
        c.reset();
        assert_eq!(c.get(), 0);
        c.set(7);
        assert_eq!(c.get(), 7);
    }
}
