//! Stable guard-site identifiers.
//!
//! A *guard site* is one injected guard call in module IR (or a named
//! synthetic site for native code paths like the Rust e1000e driver).
//! Site assignment is a deterministic walk over the module — functions in
//! definition order, blocks in layout order, placed instructions in block
//! order — so the compiler, the attestation, and the loader all agree on
//! the numbering without any side channel. The attestation records the
//! site count and a digest of the canonical site text; the loader can
//! recompute both and refuse modules whose site map doesn't match what
//! the compiler signed.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use kop_ir::{Inst, Module};

/// Symbol name of the memory guard. Must match the compiler's
/// `GUARD_SYMBOL` (asserted by a compiler test).
pub const GUARD_SYMBOL: &str = "carat_guard";

/// Symbol name of the intrinsic guard. Must match the compiler's
/// `INTRINSIC_GUARD_SYMBOL`.
pub const INTRINSIC_GUARD_SYMBOL: &str = "carat_intrinsic_guard";

/// Globally unique (per [`crate::Tracer`]) identifier of a guard site.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SiteId(pub u32);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{}", self.0)
    }
}

/// What kind of guard a site is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SiteKind {
    /// A `carat_guard` memory-access check.
    Mem,
    /// A `carat_intrinsic_guard` privileged-intrinsic check.
    Intrinsic,
    /// A named native site (no IR behind it), e.g. the Rust driver's
    /// descriptor-ring stores.
    Synthetic,
}

impl SiteKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            SiteKind::Mem => "mem",
            SiteKind::Intrinsic => "intrinsic",
            SiteKind::Synthetic => "synthetic",
        }
    }
}

/// One guard site discovered in module IR, before a tracer assigns it a
/// global [`SiteId`].
#[derive(Clone, PartialEq, Debug)]
pub struct GuardSite {
    /// Enclosing function name.
    pub function: String,
    /// 0-based ordinal of this guard within the function (walk order).
    pub ordinal: u32,
    /// Raw `InstId` of the guard call instruction, the key the
    /// interpreter uses to attribute a dynamic check back to this site.
    pub inst: u32,
    /// Memory or intrinsic guard.
    pub kind: SiteKind,
}

impl GuardSite {
    /// Human-readable label, e.g. `tx_fill/g3` (`ig` for intrinsic sites).
    pub fn label(&self) -> String {
        let tag = match self.kind {
            SiteKind::Intrinsic => "ig",
            _ => "g",
        };
        format!("{}/{}{}", self.function, tag, self.ordinal)
    }
}

/// Walk `module` and assign every guard call a stable site.
///
/// Order: functions in definition order; within a function, placed
/// instructions in block layout order. Both `carat_guard` and
/// `carat_intrinsic_guard` calls get sites (ordinals share one counter
/// per function, so labels stay unique).
pub fn assign_guard_sites(module: &Module) -> Vec<GuardSite> {
    let mut out = Vec::new();
    for func in &module.functions {
        let mut ordinal = 0u32;
        for block in &func.blocks {
            for &iid in &block.insts {
                if let Inst::Call { callee, .. } = func.inst(iid) {
                    let kind = match callee.as_str() {
                        GUARD_SYMBOL => SiteKind::Mem,
                        INTRINSIC_GUARD_SYMBOL => SiteKind::Intrinsic,
                        _ => continue,
                    };
                    out.push(GuardSite {
                        function: func.name.clone(),
                        ordinal,
                        inst: iid.0,
                        kind,
                    });
                    ordinal += 1;
                }
            }
        }
    }
    out
}

/// Canonical text form of a module's site map — the attestation digests
/// this, so both sides must produce it byte-identically. Deliberately
/// excludes [`GuardSite::inst`]: arena instruction ids are renumbered by
/// a print/parse round trip, so only the walk-order identity
/// `(function, ordinal, kind)` is digest-stable. The `inst` id remains a
/// runtime-local lookup key for the loader's in-memory module.
pub fn canonical_site_text(module_name: &str, sites: &[GuardSite]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "sites-v1 module={module_name} count={}", sites.len());
    for site in sites {
        let _ = writeln!(
            s,
            "{} ord={} kind={}",
            site.function,
            site.ordinal,
            site.kind.name()
        );
    }
    s
}

/// Per-module lookup table mapping a guard call instruction back to its
/// tracer-global [`SiteId`]. Built by the loader at `insmod`, consulted
/// by the interpreter on every guard dispatch (allocation-free lookup).
#[derive(Clone, Debug, Default)]
pub struct SiteTable {
    by_function: BTreeMap<String, BTreeMap<u32, SiteId>>,
    len: usize,
}

impl SiteTable {
    /// Empty table (module with no guards).
    pub fn new() -> SiteTable {
        SiteTable::default()
    }

    /// Record that the guard call `inst` inside `function` is site `id`.
    pub fn insert(&mut self, function: &str, inst: u32, id: SiteId) {
        let fresh = self
            .by_function
            .entry(function.to_string())
            .or_default()
            .insert(inst, id)
            .is_none();
        if fresh {
            self.len += 1;
        }
    }

    /// Resolve a guard call back to its site.
    pub fn lookup(&self, function: &str, inst: u32) -> Option<SiteId> {
        self.by_function.get(function)?.get(&inst).copied()
    }

    /// Number of sites in this module.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the module has no guard sites.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All `SiteId`s in this table, ascending.
    pub fn ids(&self) -> Vec<SiteId> {
        let mut ids: Vec<SiteId> = self
            .by_function
            .values()
            .flat_map(|m| m.values().copied())
            .collect();
        ids.sort();
        ids
    }
}

/// Metadata a tracer keeps per registered site.
#[derive(Clone, PartialEq, Debug)]
pub struct SiteMeta {
    /// The global id.
    pub id: SiteId,
    /// Owning module (or native subsystem, e.g. `"e1000e"`).
    pub module: String,
    /// Human-readable label (`function/gN` or a synthetic name).
    pub label: String,
    /// Site kind.
    pub kind: SiteKind,
}
