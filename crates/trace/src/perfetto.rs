//! Chrome / perfetto `trace_event` JSON export.
//!
//! Emits the legacy "JSON Array Format" that `chrome://tracing` and
//! ui.perfetto.dev both ingest: an array of objects with `name`, `cat`,
//! `ph`, `ts`, `pid`, `tid`. Guard enter/exit map to `B`/`E` duration
//! events; everything else is an instant (`i`, thread scope). The
//! virtual-clock tick is exported as 1 µs so traces render with visible
//! extent. JSON is rendered by hand (the workspace is dependency-free);
//! [`validate_events`] / [`validate_json`] check the structural
//! invariants the viewer relies on.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{Producer, TraceEvent};
use crate::{TraceSnapshot, Tracer};

/// The `pid` all tracks share — there is one simulated kernel.
pub const PERFETTO_PID: u32 = 1;

/// One exported trace_event object.
#[derive(Clone, PartialEq, Debug)]
pub struct PerfettoEvent {
    /// Event name shown on the slice.
    pub name: String,
    /// Category (the producer's name).
    pub cat: String,
    /// Phase: `B`/`E` for guard spans, `i` for instants, `M` for metadata.
    pub ph: char,
    /// Timestamp in µs (1 virtual tick = 1 µs).
    pub ts: u64,
    /// Process id.
    pub pid: u32,
    /// Thread id (producer track, 1-based).
    pub tid: u32,
}

/// Convert a snapshot into trace_event objects, including one `M`
/// (metadata) event per producer naming its track.
pub fn export_events(tracer: &Tracer, snap: &TraceSnapshot) -> Vec<PerfettoEvent> {
    let mut out = Vec::with_capacity(snap.records.len() + Producer::COUNT);
    for p in Producer::ALL {
        out.push(PerfettoEvent {
            name: format!("thread_name:{}", p.name()),
            cat: "__metadata".to_string(),
            ph: 'M',
            ts: 0,
            pid: PERFETTO_PID,
            tid: p.index() as u32 + 1,
        });
    }
    for rec in &snap.records {
        let name = match &rec.event {
            TraceEvent::GuardEnter { site } | TraceEvent::GuardExit { site, .. } => tracer
                .site_label(*site)
                .unwrap_or_else(|| format!("{site}")),
            other => other.name().to_string(),
        };
        let ph = match rec.event {
            TraceEvent::GuardEnter { .. } => 'B',
            TraceEvent::GuardExit { .. } => 'E',
            _ => 'i',
        };
        out.push(PerfettoEvent {
            name,
            cat: rec.producer.name().to_string(),
            ph,
            ts: rec.ts,
            pid: PERFETTO_PID,
            tid: rec.producer.index() as u32 + 1,
        });
    }
    out
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render events as a chrome://tracing JSON array.
pub fn to_json(events: &[PerfettoEvent]) -> String {
    let mut s = String::from("[\n");
    for (i, ev) in events.iter().enumerate() {
        s.push_str("  {\"name\": \"");
        escape_json(&ev.name, &mut s);
        s.push_str("\", \"cat\": \"");
        escape_json(&ev.cat, &mut s);
        let _ = write!(
            s,
            "\", \"ph\": \"{}\", \"ts\": {}, \"pid\": {}, \"tid\": {}}}",
            ev.ph, ev.ts, ev.pid, ev.tid
        );
        if i + 1 < events.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push(']');
    s
}

/// One-call export: snapshot the tracer and render JSON.
pub fn export_json(tracer: &Tracer) -> String {
    let snap = tracer.snapshot();
    to_json(&export_events(tracer, &snap))
}

/// Structural validation of an event list in chrome://tracing schema
/// terms: required fields non-degenerate, known phases, and timestamps
/// monotonically non-decreasing per `(pid, tid)` track.
pub fn validate_events(events: &[PerfettoEvent]) -> Result<(), String> {
    let mut last_ts: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    let mut depth: BTreeMap<(u32, u32), i64> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        if ev.name.is_empty() {
            return Err(format!("event {i}: empty name"));
        }
        if !matches!(ev.ph, 'B' | 'E' | 'i' | 'M' | 'X') {
            return Err(format!("event {i}: unknown phase {:?}", ev.ph));
        }
        if ev.ph == 'M' {
            continue;
        }
        let track = (ev.pid, ev.tid);
        if let Some(&prev) = last_ts.get(&track) {
            if ev.ts < prev {
                return Err(format!(
                    "event {i}: ts {} < {} on track pid={} tid={}",
                    ev.ts, prev, ev.pid, ev.tid
                ));
            }
        }
        last_ts.insert(track, ev.ts);
        let d = depth.entry(track).or_insert(0);
        match ev.ph {
            'B' => *d += 1,
            'E' => {
                *d -= 1;
                if *d < 0 {
                    return Err(format!("event {i}: E without matching B on tid={}", ev.tid));
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Cheap structural check of rendered JSON: array-shaped, and every
/// required trace_event key appears. (A parser-free sanity net for tests
/// and CI; the real schema check is [`validate_events`].)
pub fn validate_json(json: &str) -> Result<(), String> {
    let t = json.trim();
    if !t.starts_with('[') || !t.ends_with(']') {
        return Err("not a JSON array".to_string());
    }
    if t.len() > 2 {
        for key in [
            "\"name\"", "\"cat\"", "\"ph\"", "\"ts\"", "\"pid\"", "\"tid\"",
        ] {
            if !t.contains(key) {
                return Err(format!("missing required key {key}"));
            }
        }
    }
    Ok(())
}
