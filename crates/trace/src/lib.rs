//! # kop-trace — kernel-wide tracing & metrics
//!
//! The paper's headline numbers are guard *overhead* on the e1000e TX
//! path (Fig. 5/6), but without in-kernel instrumentation nothing can say
//! *which* guard site the cycles went to. This crate is the repo's
//! ftrace: an always-compiled, cheap-when-disabled observability
//! subsystem threaded through every layer.
//!
//! * [`Tracer`] — the per-kernel trace instance: a fixed-capacity,
//!   overwrite-on-full ring buffer of typed [`TraceEvent`]s with
//!   per-producer sequence numbers and drop counters, timestamped by a
//!   deterministic virtual clock (one tick per event).
//! * [`sites`] — stable guard-site IDs: a deterministic walk assigns each
//!   injected guard call a `(function, site)` identity that the
//!   attestation digests, the loader registers, and the interpreter uses
//!   to attribute every dynamic check.
//! * [`profile`] — per-site hit counts and log2-bucketed check-latency
//!   histograms, aggregated independently of the ring (so totals
//!   reconcile exactly even after wraparound).
//! * [`Counter`] / [`CounterRegistry`] — the unified named-counter story:
//!   `DriverStats` and the policy's `GuardStats` register their cells
//!   here so figures read one registry instead of three structs.
//! * [`perfetto`] — Chrome/perfetto `trace_event` JSON export.
//! * [`report`] — text consumers (`top guard sites`, raw dump).
//! * [`control`] — the tracefs-style text protocol behind the kernel's
//!   `/dev/trace` chardev (`tracing_on`, `trace`, `top`, `perfetto`, …).
//!
//! ## Disabled-path cost
//!
//! Every emission site does `tracer.enabled()` first — one relaxed atomic
//! load, no lock, no allocation. The acceptance bar (guarded TX with
//! tracing compiled in but disabled regresses < 2%) is asserted by the
//! root `tests/trace.rs`.

#![warn(missing_docs)]

pub mod counter;
pub mod event;
pub mod perfetto;
pub mod profile;
pub mod report;
mod ring;
pub mod sites;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

pub use counter::{Counter, CounterRegistry};
pub use event::{GuardDecision, Producer, TraceEvent, TraceRecord};
pub use profile::{latency_bucket, SiteProfile, LATENCY_BUCKETS};
pub use sites::{
    assign_guard_sites, canonical_site_text, GuardSite, SiteId, SiteKind, SiteMeta, SiteTable,
    GUARD_SYMBOL, INTRINSIC_GUARD_SYMBOL,
};

/// Default ring capacity (events) used by `Tracer::new`.
pub const DEFAULT_CAPACITY: usize = 4096;

/// A consistent view of the ring at one instant.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceSnapshot {
    /// Retained records, oldest first.
    pub records: Vec<TraceRecord>,
    /// Per-producer `(producer, next sequence number)` — equals the count
    /// of events that producer has ever emitted.
    pub seqs: Vec<(Producer, u64)>,
    /// Per-producer `(producer, records overwritten)`.
    pub drops: Vec<(Producer, u64)>,
    /// Virtual clock at snapshot time (total events ever recorded).
    pub clock: u64,
}

impl TraceSnapshot {
    /// Total drops across all producers.
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().map(|(_, d)| d).sum()
    }

    /// Records emitted by one producer, oldest first.
    pub fn by_producer(&self, p: Producer) -> Vec<&TraceRecord> {
        self.records.iter().filter(|r| r.producer == p).collect()
    }
}

struct SiteRegistry {
    metas: Vec<SiteMeta>,
}

/// The trace instance one simulated kernel (or one native test harness)
/// owns. Always compiled in; `Arc`-share it across layers and flip
/// [`Tracer::set_enabled`] to start paying for events.
pub struct Tracer {
    enabled: AtomicBool,
    ring: Mutex<ring::Ring>,
    sites: Mutex<SiteRegistry>,
    profiler: Mutex<profile::Profiler>,
    counters: CounterRegistry,
}

impl Tracer {
    /// New disabled tracer with [`DEFAULT_CAPACITY`].
    pub fn new() -> Arc<Tracer> {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }

    /// New disabled tracer with an explicit ring capacity (min 1).
    pub fn with_capacity(capacity: usize) -> Arc<Tracer> {
        Arc::new(Tracer {
            enabled: AtomicBool::new(false),
            ring: Mutex::new(ring::Ring::new(capacity)),
            sites: Mutex::new(SiteRegistry { metas: Vec::new() }),
            profiler: Mutex::new(profile::Profiler::default()),
            counters: CounterRegistry::new(),
        })
    }

    /// Is tracing on? One relaxed load — this is the *entire* cost a
    /// disabled tracer adds to a guard check.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn tracing on or off (`echo 1 > tracing_on`).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Record an event. No-op while disabled.
    #[inline]
    pub fn record(&self, producer: Producer, event: TraceEvent) {
        if !self.enabled() {
            return;
        }
        self.ring.lock().push(producer, event);
    }

    /// Aggregate one guard check into the per-site profile. No-op while
    /// disabled. Independent of the ring: wraparound never loses a check.
    #[inline]
    pub fn record_check(&self, site: SiteId, ns: u64, denied: bool) {
        if !self.enabled() {
            return;
        }
        self.profiler.lock().record(site, ns, denied);
    }

    /// Like [`Tracer::record_check`], additionally folding the guarded
    /// `[addr, addr + size)` span into the site's observed address
    /// envelope — the input the profile-directed promotion tier uses to
    /// map a hot site onto its policy region.
    #[inline]
    pub fn record_check_at(&self, site: SiteId, ns: u64, denied: bool, addr: u64, size: u64) {
        if !self.enabled() {
            return;
        }
        self.profiler
            .lock()
            .record_at(site, ns, denied, Some((addr, size)));
    }

    /// Consistent snapshot of the ring, sequences, and drop counters.
    pub fn snapshot(&self) -> TraceSnapshot {
        let ring = self.ring.lock();
        TraceSnapshot {
            records: ring.records(),
            seqs: Producer::ALL.iter().map(|&p| (p, ring.seq(p))).collect(),
            drops: Producer::ALL.iter().map(|&p| (p, ring.drops(p))).collect(),
            clock: ring.clock(),
        }
    }

    /// Discard retained records (drop counters, sequences, and the clock
    /// keep running).
    pub fn clear(&self) {
        self.ring.lock().clear();
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.ring.lock().capacity()
    }

    /// Events ever emitted by `p` (its next sequence number).
    pub fn seq(&self, p: Producer) -> u64 {
        self.ring.lock().seq(p)
    }

    /// Events of `p` overwritten by wraparound.
    pub fn drops(&self, p: Producer) -> u64 {
        self.ring.lock().drops(p)
    }

    // --- sites ---------------------------------------------------------

    /// Register a module's IR guard sites (loader calls this at insmod).
    /// Returns the per-module lookup table the interpreter consults.
    pub fn register_module_sites(&self, module: &str, sites: &[GuardSite]) -> Arc<SiteTable> {
        let mut table = SiteTable::new();
        let mut reg = self.sites.lock();
        for site in sites {
            let id = SiteId(reg.metas.len() as u32);
            reg.metas.push(SiteMeta {
                id,
                module: module.to_string(),
                label: site.label(),
                kind: site.kind,
            });
            table.insert(&site.function, site.inst, id);
        }
        Arc::new(table)
    }

    /// Register one named synthetic site (native code paths — e.g. the
    /// Rust e1000e driver's descriptor-ring stores).
    pub fn register_site(&self, module: &str, label: &str) -> SiteId {
        let mut reg = self.sites.lock();
        let id = SiteId(reg.metas.len() as u32);
        reg.metas.push(SiteMeta {
            id,
            module: module.to_string(),
            label: label.to_string(),
            kind: SiteKind::Synthetic,
        });
        id
    }

    /// Metadata for a site, if registered.
    pub fn site_meta(&self, id: SiteId) -> Option<SiteMeta> {
        self.sites.lock().metas.get(id.0 as usize).cloned()
    }

    /// Label for a site, if registered.
    pub fn site_label(&self, id: SiteId) -> Option<String> {
        self.site_meta(id).map(|m| m.label)
    }

    /// Number of registered sites.
    pub fn site_count(&self) -> usize {
        self.sites.lock().metas.len()
    }

    // --- profiles ------------------------------------------------------

    /// Profile of one site (zeros if never hit).
    pub fn site_profile(&self, id: SiteId) -> SiteProfile {
        self.profiler.lock().get(id)
    }

    /// All sites with at least one hit, joined with their metadata.
    pub fn profile_snapshot(&self) -> Vec<(SiteMeta, SiteProfile)> {
        let profiles = self.profiler.lock().snapshot();
        let reg = self.sites.lock();
        profiles
            .into_iter()
            .map(|(id, prof)| {
                let meta = reg.metas.get(id.0 as usize).cloned().unwrap_or(SiteMeta {
                    id,
                    module: "?".to_string(),
                    label: format!("{id}"),
                    kind: SiteKind::Synthetic,
                });
                (meta, prof)
            })
            .collect()
    }

    /// Total guard checks aggregated across every site — the number that
    /// must reconcile with the interpreter's/policy's own check count.
    pub fn total_checks(&self) -> u64 {
        self.profiler.lock().total_hits()
    }

    /// The hotness query the promotion tier runs: every profiled site
    /// with at least `min_hits` checks and not a single denial, hottest
    /// first. Denied sites are excluded by design — a site that ever
    /// produced a violation must keep the full check + trace path, never
    /// an inlined fast admit.
    pub fn hot_sites(&self, min_hits: u64) -> Vec<(SiteMeta, SiteProfile)> {
        let mut hot: Vec<(SiteMeta, SiteProfile)> = self
            .profile_snapshot()
            .into_iter()
            .filter(|(_, p)| p.hits >= min_hits.max(1) && p.denied == 0)
            .collect();
        hot.sort_by(|a, b| b.1.hits.cmp(&a.1.hits).then(a.0.id.cmp(&b.0.id)));
        hot
    }

    /// Reset all per-site profiles (site registrations are kept).
    pub fn reset_profiles(&self) {
        self.profiler.lock().reset();
    }

    // --- counters ------------------------------------------------------

    /// The unified counter registry for this tracer.
    pub fn counters(&self) -> &CounterRegistry {
        &self.counters
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer {
            enabled: AtomicBool::new(false),
            ring: Mutex::new(ring::Ring::new(DEFAULT_CAPACITY)),
            sites: Mutex::new(SiteRegistry { metas: Vec::new() }),
            profiler: Mutex::new(profile::Profiler::default()),
            counters: CounterRegistry::new(),
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("capacity", &self.capacity())
            .field("sites", &self.site_count())
            .field("total_checks", &self.total_checks())
            .finish()
    }
}

/// The tracefs-style text control protocol (`/dev/trace` speaks this).
pub mod control {
    use super::*;

    /// Handle one request. Commands, mirroring tracefs file UX:
    ///
    /// * `tracing_on` → `"0"` / `"1"`
    /// * `tracing_on 0|1` → `"ok"` (enable/disable)
    /// * `trace` → the retained ring, one record per line
    /// * `top` / `top N` → the top-N guard-sites table (default 10)
    /// * `counters` → the unified counter registry, `name=value` lines
    /// * `rx` (alias `forward`) → the receive/forwarding datapath slice
    ///   of the registry: every counter whose leaf name starts with
    ///   `rx_`, `irq_` or `poll_`, `name=value` lines
    /// * `perfetto` → chrome://tracing JSON for the retained ring
    /// * `clear` → `"ok"` (drop retained records)
    ///
    /// Unknown commands return `Err` with a usage string.
    pub fn handle(tracer: &Tracer, request: &str) -> Result<String, String> {
        let req = request.trim();
        let mut parts = req.split_whitespace();
        match (parts.next(), parts.next()) {
            (Some("tracing_on"), None) => Ok(if tracer.enabled() { "1" } else { "0" }.to_string()),
            (Some("tracing_on"), Some("1")) => {
                tracer.set_enabled(true);
                Ok("ok".to_string())
            }
            (Some("tracing_on"), Some("0")) => {
                tracer.set_enabled(false);
                Ok("ok".to_string())
            }
            (Some("trace"), None) => Ok(report::dump(tracer)),
            (Some("top"), n) => {
                let n = n.and_then(|s| s.parse().ok()).unwrap_or(10);
                Ok(report::top_sites(tracer, n))
            }
            (Some("counters"), None) => {
                let mut s = String::new();
                for (name, v) in tracer.counters().snapshot() {
                    s.push_str(&name);
                    s.push('=');
                    s.push_str(&v.to_string());
                    s.push('\n');
                }
                Ok(s)
            }
            (Some("rx") | Some("forward"), None) => {
                let mut s = String::new();
                for (name, v) in tracer.counters().snapshot() {
                    let leaf = name.rsplit('.').next().unwrap_or(&name);
                    if leaf.starts_with("rx_")
                        || leaf.starts_with("irq_")
                        || leaf.starts_with("poll_")
                    {
                        s.push_str(&name);
                        s.push('=');
                        s.push_str(&v.to_string());
                        s.push('\n');
                    }
                }
                Ok(s)
            }
            (Some("perfetto"), None) => Ok(perfetto::export_json(tracer)),
            (Some("clear"), None) => {
                tracer.clear();
                Ok("ok".to_string())
            }
            _ => Err(format!(
                "unknown trace command {req:?}; \
                 usage: tracing_on [0|1] | trace | top [N] | counters | rx | perfetto | clear"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev() -> TraceEvent {
        TraceEvent::Xmit { bytes: 60 }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::with_capacity(8);
        t.record(Producer::Driver, ev());
        t.record_check(SiteId(0), 10, false);
        assert!(t.snapshot().records.is_empty());
        assert_eq!(t.total_checks(), 0);
        assert_eq!(t.seq(Producer::Driver), 0);
    }

    #[test]
    fn wraparound_overwrites_oldest_and_keeps_order() {
        let t = Tracer::with_capacity(4);
        t.set_enabled(true);
        for i in 0..10u64 {
            t.record(Producer::Bench, TraceEvent::Xmit { bytes: i });
        }
        let snap = t.snapshot();
        assert_eq!(snap.records.len(), 4);
        // The newest 4 survive, oldest first.
        let bytes: Vec<u64> = snap
            .records
            .iter()
            .map(|r| match r.event {
                TraceEvent::Xmit { bytes } => bytes,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(bytes, vec![6, 7, 8, 9]);
        // Timestamps and sequences strictly increase.
        for w in snap.records.windows(2) {
            assert!(w[0].ts < w[1].ts);
            assert!(w[0].seq < w[1].seq);
        }
        assert_eq!(t.drops(Producer::Bench), 6);
        assert_eq!(t.seq(Producer::Bench), 10);
        assert_eq!(snap.clock, 10);
    }

    #[test]
    fn drops_are_charged_to_the_overwritten_producer() {
        let t = Tracer::with_capacity(2);
        t.set_enabled(true);
        t.record(Producer::Kernel, ev());
        t.record(Producer::Driver, ev());
        // These two evict the Kernel record then the first Driver record.
        t.record(Producer::Interp, ev());
        t.record(Producer::Interp, ev());
        assert_eq!(t.drops(Producer::Kernel), 1);
        assert_eq!(t.drops(Producer::Driver), 1);
        assert_eq!(t.drops(Producer::Interp), 0);
        assert_eq!(t.snapshot().total_drops(), 2);
    }

    #[test]
    fn clear_keeps_clock_and_sequences_running() {
        let t = Tracer::with_capacity(8);
        t.set_enabled(true);
        t.record(Producer::Bench, ev());
        t.clear();
        t.record(Producer::Bench, ev());
        let snap = t.snapshot();
        assert_eq!(snap.records.len(), 1);
        assert_eq!(snap.records[0].ts, 1, "clock not reset by clear");
        assert_eq!(snap.records[0].seq, 1, "seq not reset by clear");
        assert_eq!(snap.total_drops(), 0, "clear is not a drop");
    }

    #[test]
    fn site_registration_assigns_dense_ids_and_labels() {
        let t = Tracer::new();
        let a = t.register_site("e1000e", "tx_desc_store");
        let b = t.register_site("e1000e", "tdt_doorbell");
        assert_eq!(a, SiteId(0));
        assert_eq!(b, SiteId(1));
        assert_eq!(t.site_label(b).unwrap(), "tdt_doorbell");
        assert_eq!(t.site_count(), 2);
        t.set_enabled(true);
        t.record_check(a, 100, false);
        t.record_check(a, 200, true);
        assert_eq!(t.site_profile(a).hits, 2);
        assert_eq!(t.site_profile(a).denied, 1);
        assert_eq!(t.total_checks(), 2);
        let top = report::top_sites(&t, 5);
        assert!(top.contains("tx_desc_store"), "{top}");
    }

    #[test]
    fn hot_sites_ranks_by_hits_and_excludes_denied_and_cold() {
        let t = Tracer::new();
        let hot = t.register_site("m", "hot");
        let cold = t.register_site("m", "cold");
        let bad = t.register_site("m", "violator");
        t.set_enabled(true);
        for i in 0..100u64 {
            t.record_check_at(hot, 10, false, 0x1000 + i * 8, 8);
        }
        t.record_check(cold, 10, false);
        for _ in 0..200 {
            t.record_check(bad, 10, false);
        }
        t.record_check(bad, 10, true); // one denial disqualifies
        let hits = t.hot_sites(50);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0.id, hot);
        assert_eq!(hits[0].1.envelope(), Some((0x1000, 0x1000 + 100 * 8)));
        // Lower threshold admits the cold site too, hottest first.
        let all = t.hot_sites(1);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0.id, hot);
        assert_eq!(all[1].0.id, cold);
    }

    #[test]
    fn control_protocol_mirrors_tracefs() {
        let t = Tracer::with_capacity(8);
        assert_eq!(control::handle(&t, "tracing_on").unwrap(), "0");
        assert_eq!(control::handle(&t, "tracing_on 1").unwrap(), "ok");
        assert_eq!(control::handle(&t, "tracing_on").unwrap(), "1");
        t.record(Producer::Driver, ev());
        let dump = control::handle(&t, "trace").unwrap();
        assert!(dump.contains("xmit bytes=60"), "{dump}");
        assert!(control::handle(&t, "perfetto").unwrap().contains("\"ph\""));
        assert_eq!(control::handle(&t, "clear").unwrap(), "ok");
        assert!(control::handle(&t, "bogus").is_err());
        assert_eq!(control::handle(&t, "tracing_on 0").unwrap(), "ok");
        assert!(!t.enabled());
    }

    #[test]
    fn rx_command_filters_receive_counters() {
        let t = Tracer::new();
        t.counters().counter("e1000e.rx_packets").add(12);
        t.counters().counter("e1000e.irq_fired").add(3);
        t.counters().counter("e1000e.poll_passes").add(5);
        t.counters().counter("e1000e.tx_packets").add(99);
        t.counters().counter("policy.checks").add(1000);
        let out = control::handle(&t, "rx").unwrap();
        assert!(out.contains("e1000e.rx_packets=12"), "{out}");
        assert!(out.contains("e1000e.irq_fired=3"), "{out}");
        assert!(out.contains("e1000e.poll_passes=5"), "{out}");
        assert!(!out.contains("tx_packets"), "{out}");
        assert!(!out.contains("policy.checks"), "{out}");
        // `forward` is an alias.
        assert_eq!(control::handle(&t, "forward").unwrap(), out);
    }

    #[test]
    fn counter_registry_is_shared_and_idempotent() {
        let t = Tracer::new();
        let c1 = t.counters().counter("driver.tx_packets");
        let c2 = t.counters().counter("driver.tx_packets");
        c1.add(3);
        c2.inc();
        assert_eq!(c1.get(), 4);
        assert!(c1.same_cell(&c2));
        let external = Counter::new("policy.checks");
        assert!(t.counters().register(&external));
        let clash = Counter::new("policy.checks");
        assert!(
            !t.counters().register(&clash),
            "second cell same name loses"
        );
        external.add(7);
        assert_eq!(t.counters().get("policy.checks").unwrap().get(), 7);
        let snap = t.counters().snapshot();
        assert_eq!(
            snap,
            vec![
                ("driver.tx_packets".to_string(), 4),
                ("policy.checks".to_string(), 7)
            ]
        );
    }

    #[test]
    fn perfetto_export_is_structurally_valid() {
        let t = Tracer::with_capacity(64);
        let site = t.register_site("mod_x", "f/g0");
        t.set_enabled(true);
        t.record(
            Producer::Loader,
            TraceEvent::ModuleLoad {
                module: "mod_x".to_string(),
                guard_sites: 1,
            },
        );
        t.record(Producer::Interp, TraceEvent::GuardEnter { site });
        t.record(
            Producer::Interp,
            TraceEvent::GuardExit {
                site,
                decision: GuardDecision::Quarantined,
                ns: 120,
            },
        );
        t.record(
            Producer::Kernel,
            TraceEvent::ModuleQuarantine {
                module: "mod_x".to_string(),
                violations: 1,
            },
        );
        let snap = t.snapshot();
        let events = perfetto::export_events(&t, &snap);
        perfetto::validate_events(&events).expect("structurally valid");
        // Required fields on every non-metadata event.
        for ev in events.iter().filter(|e| e.ph != 'M') {
            assert!(!ev.name.is_empty());
            assert_eq!(ev.pid, perfetto::PERFETTO_PID);
            assert!(ev.tid >= 1);
        }
        // Guard events are a balanced B/E pair on the interp track named
        // by the site label.
        assert!(events.iter().any(|e| e.ph == 'B' && e.name == "f/g0"));
        assert!(events.iter().any(|e| e.ph == 'E' && e.name == "f/g0"));
        let json = perfetto::to_json(&events);
        perfetto::validate_json(&json).expect("json shape");
        for key in [
            "\"name\"", "\"cat\"", "\"ph\"", "\"ts\"", "\"pid\"", "\"tid\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn validate_events_rejects_nonmonotonic_tracks() {
        let mk = |ts, tid| perfetto::PerfettoEvent {
            name: "x".to_string(),
            cat: "c".to_string(),
            ph: 'i',
            ts,
            pid: 1,
            tid,
        };
        assert!(perfetto::validate_events(&[mk(5, 1), mk(4, 1)]).is_err());
        // Different tracks may interleave arbitrarily.
        assert!(perfetto::validate_events(&[mk(5, 1), mk(4, 2)]).is_ok());
    }
}
