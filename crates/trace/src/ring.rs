//! The fixed-capacity, overwrite-on-full event ring.
//!
//! Mirrors ftrace's per-CPU ring buffer semantics in miniature: when the
//! buffer is full the *oldest* record is overwritten and a drop is
//! charged to that record's producer. Sequence numbers are assigned under
//! the same lock as insertion, so per-producer sequences are gap-free in
//! the set {emitted records} — a reader seeing gaps in the *retained*
//! records can reconcile them exactly against the drop counters.

use std::collections::VecDeque;

use crate::event::{Producer, TraceEvent, TraceRecord};

/// Ring state: buffer, virtual clock, per-producer sequence and drop
/// counters. Everything lives under one mutex (in [`crate::Tracer`]) so a
/// snapshot is internally consistent.
#[derive(Debug)]
pub(crate) struct Ring {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
    /// Virtual clock: one tick per recorded event. Deterministic and
    /// strictly monotonic — host time never leaks into the trace.
    clock: u64,
    seqs: [u64; Producer::COUNT],
    drops: [u64; Producer::COUNT],
}

impl Ring {
    pub(crate) fn new(capacity: usize) -> Ring {
        let capacity = capacity.max(1);
        Ring {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            clock: 0,
            seqs: [0; Producer::COUNT],
            drops: [0; Producer::COUNT],
        }
    }

    pub(crate) fn push(&mut self, producer: Producer, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            let evicted = self.buf.pop_front().expect("capacity >= 1");
            self.drops[evicted.producer.index()] += 1;
        }
        let ts = self.clock;
        self.clock += 1;
        let seq = self.seqs[producer.index()];
        self.seqs[producer.index()] += 1;
        self.buf.push_back(TraceRecord {
            ts,
            seq,
            producer,
            event,
        });
    }

    pub(crate) fn records(&self) -> Vec<TraceRecord> {
        self.buf.iter().cloned().collect()
    }

    pub(crate) fn clear(&mut self) {
        // Clearing consumes the retained records without charging drops;
        // sequence counters and the clock keep running so post-clear
        // records remain globally ordered.
        self.buf.clear();
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn clock(&self) -> u64 {
        self.clock
    }

    pub(crate) fn seq(&self, p: Producer) -> u64 {
        self.seqs[p.index()]
    }

    pub(crate) fn drops(&self, p: Producer) -> u64 {
        self.drops[p.index()]
    }
}
