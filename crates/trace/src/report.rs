//! Text consumers: the "top guard sites" table and the raw trace dump.

use std::fmt::Write as _;

use crate::profile::SiteProfile;
use crate::sites::SiteMeta;
use crate::Tracer;

/// Render the top-`n` guard sites by hit count as an aligned text table,
/// mirroring `perf report` / ftrace's `trace_stat` output.
pub fn top_sites(tracer: &Tracer, n: usize) -> String {
    let mut rows: Vec<(SiteMeta, SiteProfile)> = tracer.profile_snapshot();
    rows.sort_by(|a, b| {
        b.1.hits
            .cmp(&a.1.hits)
            .then(b.1.total_ns.cmp(&a.1.total_ns))
            .then(a.0.id.cmp(&b.0.id))
    });
    rows.truncate(n);

    let mut s = String::new();
    let total: u64 = tracer.total_checks();
    let _ = writeln!(s, "# top guard sites ({} checks total)", total);
    let _ = writeln!(
        s,
        "{:<6} {:<28} {:<10} {:>10} {:>8} {:>8} {:>9}",
        "SITE", "LABEL", "MODULE", "HITS", "%", "DENIED", "MEAN_NS"
    );
    for (meta, prof) in &rows {
        let pct = if total == 0 {
            0.0
        } else {
            prof.hits as f64 * 100.0 / total as f64
        };
        let _ = writeln!(
            s,
            "{:<6} {:<28} {:<10} {:>10} {:>7.1}% {:>8} {:>9}",
            meta.id.0,
            truncate(&meta.label, 28),
            truncate(&meta.module, 10),
            prof.hits,
            pct,
            prof.denied,
            prof.mean_ns()
        );
    }
    if rows.is_empty() {
        let _ = writeln!(s, "(no guard checks profiled)");
    }
    s
}

/// Render every retained ring record, one per line, oldest first —
/// the `cat trace` view of the tracefs-style chardev.
pub fn dump(tracer: &Tracer) -> String {
    let snap = tracer.snapshot();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "# tracer: entries={} capacity={} clock={}",
        snap.records.len(),
        tracer.capacity(),
        snap.clock
    );
    for (p, d) in &snap.drops {
        if *d > 0 {
            let _ = writeln!(s, "# drops[{p}]={d}");
        }
    }
    for rec in &snap.records {
        let _ = writeln!(s, "{rec}");
    }
    s
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let head: String = s.chars().take(n.saturating_sub(1)).collect();
        format!("{head}…")
    }
}
