//! Typed trace events and the producers that emit them.
//!
//! Every event in the ring buffer is a [`TraceRecord`]: a [`TraceEvent`]
//! stamped with a virtual-clock timestamp, the emitting [`Producer`], and
//! that producer's sequence number. The event set mirrors the layers of
//! the simulated kernel: guard checks (hot path — no allocation), module
//! lifecycle, driver datapath, and fault injection.

use core::fmt;

use crate::sites::SiteId;

/// Who emitted an event. One fixed track per subsystem, so sequence
/// numbers and drop counters are attributable (like ftrace's per-CPU
/// buffers, but per-layer since the sim is single-threaded per kernel).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Producer {
    /// Core kernel: boot, panic, quarantine machinery.
    Kernel,
    /// Module loader (`insmod`/`rmmod`).
    Loader,
    /// The KIR interpreter executing module code.
    Interp,
    /// The policy module (violation decisions).
    Policy,
    /// The e1000e driver datapath.
    Driver,
    /// The simulated NIC device model.
    Device,
    /// The fault-injection layer.
    Faultline,
    /// Benchmark / harness code.
    Bench,
}

impl Producer {
    /// All producers, in track order.
    pub const ALL: [Producer; 8] = [
        Producer::Kernel,
        Producer::Loader,
        Producer::Interp,
        Producer::Policy,
        Producer::Driver,
        Producer::Device,
        Producer::Faultline,
        Producer::Bench,
    ];

    /// Number of producer tracks.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index for per-producer arrays.
    pub fn index(self) -> usize {
        match self {
            Producer::Kernel => 0,
            Producer::Loader => 1,
            Producer::Interp => 2,
            Producer::Policy => 3,
            Producer::Driver => 4,
            Producer::Device => 5,
            Producer::Faultline => 6,
            Producer::Bench => 7,
        }
    }

    /// Stable display name (used as the perfetto thread name).
    pub fn name(self) -> &'static str {
        match self {
            Producer::Kernel => "kernel",
            Producer::Loader => "loader",
            Producer::Interp => "interp",
            Producer::Policy => "policy",
            Producer::Driver => "driver",
            Producer::Device => "device",
            Producer::Faultline => "faultline",
            Producer::Bench => "bench",
        }
    }
}

impl fmt::Display for Producer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of a guard check, as seen by the caller of the policy module.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GuardDecision {
    /// Access permitted.
    Allowed,
    /// Access denied (squash / log-and-deny).
    Denied,
    /// Access denied and the module was quarantined.
    Quarantined,
    /// Access denied and the policy demanded a kernel panic.
    Panicked,
}

impl GuardDecision {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            GuardDecision::Allowed => "allowed",
            GuardDecision::Denied => "denied",
            GuardDecision::Quarantined => "quarantined",
            GuardDecision::Panicked => "panicked",
        }
    }

    /// True for every outcome except [`GuardDecision::Allowed`].
    pub fn is_denied(self) -> bool {
        !matches!(self, GuardDecision::Allowed)
    }
}

/// A typed trace event. Hot-path variants (guard enter/exit) carry only
/// `Copy` data; cold-path lifecycle events may allocate.
#[derive(Clone, PartialEq, Debug)]
pub enum TraceEvent {
    /// A guard check is about to run at `site`.
    GuardEnter {
        /// Guard site being checked.
        site: SiteId,
    },
    /// The guard check at `site` finished.
    GuardExit {
        /// Guard site that was checked.
        site: SiteId,
        /// The policy's decision.
        decision: GuardDecision,
        /// Host-measured check latency in nanoseconds.
        ns: u64,
    },
    /// A policy violation was observed (denied access).
    Violation {
        /// Offending module.
        module: String,
        /// Faulting virtual address.
        addr: u64,
    },
    /// A module was linked into the kernel.
    ModuleLoad {
        /// Module name.
        module: String,
        /// Number of guard sites registered for it.
        guard_sites: u64,
    },
    /// A module was unloaded.
    ModuleUnload {
        /// Module name.
        module: String,
    },
    /// A module was forcibly quarantined after exhausting its violation
    /// budget.
    ModuleQuarantine {
        /// Module name.
        module: String,
        /// Violations accumulated at quarantine time.
        violations: u64,
    },
    /// A quarantined (or health-failed) module was re-inserted from its
    /// cached image by the supervision layer.
    ModuleRestart {
        /// Module name.
        module: String,
        /// Which restart this is for the module (1-based).
        attempt: u64,
    },
    /// A live upgrade atomically swapped dispatch from one module
    /// instance to its successor.
    UpgradeSwap {
        /// The stable dispatch name being upgraded.
        module: String,
        /// The instance now receiving dispatch.
        instance: String,
        /// Policy snapshot generation after the revocation epoch bump.
        generation: u64,
    },
    /// The driver queued a frame for transmit.
    Xmit {
        /// On-wire frame length in bytes.
        bytes: u64,
    },
    /// The driver harvested a complete received frame from the RX ring.
    RxFrame {
        /// On-wire frame length in bytes.
        bytes: u64,
    },
    /// The driver entered its interrupt handler with a non-zero cause.
    Irq {
        /// ICR cause bits as read (and cleared) at ISR entry.
        cause: u64,
    },
    /// One NAPI-style poll pass over the RX ring completed.
    PollPass {
        /// Descriptors harvested this pass (bounded by the budget).
        harvested: u64,
        /// Whether the ring was drained (interrupts re-enabled).
        drained: bool,
    },
    /// The TX watchdog ran.
    Watchdog {
        /// Whether this pass fired (declared the queue hung).
        fired: bool,
    },
    /// The driver performed a full reset.
    Reset,
    /// The fault layer injected a fault.
    FaultInjected {
        /// Which fault point fired.
        what: &'static str,
    },
}

impl TraceEvent {
    /// Short stable name (used as the perfetto event name for events that
    /// don't reference a guard site).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::GuardEnter { .. } => "guard_enter",
            TraceEvent::GuardExit { .. } => "guard_exit",
            TraceEvent::Violation { .. } => "violation",
            TraceEvent::ModuleLoad { .. } => "module_load",
            TraceEvent::ModuleUnload { .. } => "module_unload",
            TraceEvent::ModuleQuarantine { .. } => "module_quarantine",
            TraceEvent::ModuleRestart { .. } => "module_restart",
            TraceEvent::UpgradeSwap { .. } => "upgrade_swap",
            TraceEvent::Xmit { .. } => "xmit",
            TraceEvent::RxFrame { .. } => "rx_frame",
            TraceEvent::Irq { .. } => "irq",
            TraceEvent::PollPass { .. } => "poll_pass",
            TraceEvent::Watchdog { .. } => "watchdog",
            TraceEvent::Reset => "reset",
            TraceEvent::FaultInjected { .. } => "fault_injected",
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::GuardEnter { site } => write!(f, "guard_enter site={}", site.0),
            TraceEvent::GuardExit { site, decision, ns } => {
                write!(
                    f,
                    "guard_exit site={} decision={} ns={}",
                    site.0,
                    decision.name(),
                    ns
                )
            }
            TraceEvent::Violation { module, addr } => {
                write!(f, "violation module={module} addr={addr:#x}")
            }
            TraceEvent::ModuleLoad {
                module,
                guard_sites,
            } => {
                write!(f, "module_load module={module} guard_sites={guard_sites}")
            }
            TraceEvent::ModuleUnload { module } => write!(f, "module_unload module={module}"),
            TraceEvent::ModuleQuarantine { module, violations } => {
                write!(
                    f,
                    "module_quarantine module={module} violations={violations}"
                )
            }
            TraceEvent::ModuleRestart { module, attempt } => {
                write!(f, "module_restart module={module} attempt={attempt}")
            }
            TraceEvent::UpgradeSwap {
                module,
                instance,
                generation,
            } => {
                write!(
                    f,
                    "upgrade_swap module={module} instance={instance} generation={generation}"
                )
            }
            TraceEvent::Xmit { bytes } => write!(f, "xmit bytes={bytes}"),
            TraceEvent::RxFrame { bytes } => write!(f, "rx_frame bytes={bytes}"),
            TraceEvent::Irq { cause } => write!(f, "irq cause={cause:#x}"),
            TraceEvent::PollPass { harvested, drained } => {
                write!(f, "poll_pass harvested={harvested} drained={drained}")
            }
            TraceEvent::Watchdog { fired } => write!(f, "watchdog fired={fired}"),
            TraceEvent::Reset => f.write_str("reset"),
            TraceEvent::FaultInjected { what } => write!(f, "fault_injected what={what}"),
        }
    }
}

/// One ring-buffer entry: an event plus its timestamp and provenance.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceRecord {
    /// Virtual-clock timestamp: unique and strictly increasing across the
    /// whole trace (deterministic — no host time involved).
    pub ts: u64,
    /// This producer's sequence number (0-based, gap-free unless drops
    /// are reported for the producer).
    pub seq: u64,
    /// Which track emitted the event.
    pub producer: Producer,
    /// The event payload.
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>6}] {:<9} #{:<5} {}",
            self.ts, self.producer, self.seq, self.event
        )
    }
}
