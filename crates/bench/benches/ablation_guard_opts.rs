//! ABL-OPT: end-to-end interpreter cost of the workload module compiled
//! with the paper's unoptimized guards vs the CARAT CAKE-style optimized
//! pipeline, plus the cost of the transformation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use kop_bench::corpus;
use kop_compiler::{compile_module, CompileOptions, CompilerKey};
use kop_interp::Interp;
use kop_kernel::{Kernel, KernelConfig};
use kop_policy::{DefaultAction, PolicyModule};

fn key() -> CompilerKey {
    CompilerKey::from_passphrase("operator-key", "carat-kop-dev")
}

fn booted(opts: &CompileOptions) -> Kernel {
    let module = corpus::parse(corpus::OPT_WORKLOAD_IR);
    let out = compile_module(module, opts, &key()).expect("compiles");
    let policy = Arc::new(PolicyModule::new());
    policy.set_default_action(DefaultAction::Allow);
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    kernel.insmod(&out.signed).expect("loads");
    kernel
}

fn bench_guard_opts(c: &mut Criterion) {
    let mut group = c.benchmark_group("guard_opts");
    group.sample_size(20);

    group.bench_function("interp_unoptimized_guards", |b| {
        let mut kernel = booted(&CompileOptions::carat_kop());
        let buf = kernel.kmalloc(4096).unwrap();
        let mut interp = Interp::new(&mut kernel).unwrap();
        interp.set_fuel(u64::MAX);
        b.iter(|| {
            black_box(
                interp
                    .call("opt-workload", "run", &[buf.raw(), 128])
                    .unwrap(),
            )
        });
    });

    group.bench_function("interp_optimized_guards", |b| {
        let mut kernel = booted(&CompileOptions::optimized());
        let buf = kernel.kmalloc(4096).unwrap();
        let mut interp = Interp::new(&mut kernel).unwrap();
        interp.set_fuel(u64::MAX);
        b.iter(|| {
            black_box(
                interp
                    .call("opt-workload", "run", &[buf.raw(), 128])
                    .unwrap(),
            )
        });
    });

    group.bench_function("interp_baseline_no_guards", |b| {
        let mut kernel = booted(&CompileOptions::baseline());
        let buf = kernel.kmalloc(4096).unwrap();
        let mut interp = Interp::new(&mut kernel).unwrap();
        interp.set_fuel(u64::MAX);
        b.iter(|| {
            black_box(
                interp
                    .call("opt-workload", "run", &[buf.raw(), 128])
                    .unwrap(),
            )
        });
    });

    // Compilation cost: the paper stresses the pass is ~200 lines and
    // cheap; measure transform+attest+sign end to end.
    group.bench_function("compile_mini_e1000e_carat", |b| {
        let module = corpus::parse(corpus::MINI_E1000E_IR);
        b.iter(|| {
            black_box(compile_module(module.clone(), &CompileOptions::carat_kop(), &key()).unwrap())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_guard_opts);
criterion_main!(benches);
