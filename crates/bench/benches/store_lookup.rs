//! FLEET-DS: snapshot-side lookup latency — the flat linear scan the
//! original `PolicySnapshot` used versus the frozen sorted / interval
//! indexes (DESIGN §3.19), at region counts from a single driver to a
//! fleet-scale consolidated node. This is the microbench behind the
//! `reproduce fleet` sub-linear p99 claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kop_core::{AccessFlags, Protection, Region, Size, VAddr};
use kop_policy::{FrozenKind, FrozenStore};

const STRIDE: u64 = 0x10_000;

/// Disjoint rule set: freezes to the one-probe sorted index.
fn disjoint_regions(n: usize) -> Vec<Region> {
    (0..n as u64)
        .map(|i| {
            Region::new(
                VAddr(0x10_0000 + i * STRIDE),
                Size(0x1000),
                Protection::READ_WRITE,
            )
            .expect("region")
        })
        .collect()
}

/// The same set plus one wide overlapping grant: forces the layered
/// interval index (the shape a consolidated fleet's shared windows take).
fn overlapping_regions(n: usize) -> Vec<Region> {
    let mut v = disjoint_regions(n.saturating_sub(1).max(1));
    v.push(
        Region::new(
            VAddr(0x10_0000),
            Size((n as u64) * STRIDE),
            Protection::READ_ONLY,
        )
        .expect("region"),
    );
    v
}

fn bench_store_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_lookup");
    group.sample_size(30);

    for n in [10usize, 100, 1_000, 10_000] {
        // Worst-case hit: the rule at the end of the scan order.
        let hot = VAddr(0x10_0000 + (n as u64 - 1) * STRIDE + 8);

        let flat = FrozenStore::flat(disjoint_regions(n));
        group.bench_with_input(BenchmarkId::new("flat_scan_hit", n), &n, |b, _| {
            b.iter(|| black_box(flat.lookup_frozen(black_box(hot), Size(8), AccessFlags::RW)))
        });

        let sorted = FrozenStore::build(disjoint_regions(n));
        assert_eq!(sorted.kind(), FrozenKind::Sorted);
        group.bench_with_input(BenchmarkId::new("frozen_sorted_hit", n), &n, |b, _| {
            b.iter(|| black_box(sorted.lookup_frozen(black_box(hot), Size(8), AccessFlags::RW)))
        });

        let interval = FrozenStore::build(overlapping_regions(n));
        assert_eq!(interval.kind(), FrozenKind::Interval);
        group.bench_with_input(BenchmarkId::new("frozen_interval_hit", n), &n, |b, _| {
            b.iter(|| black_box(interval.lookup_frozen(black_box(hot), Size(8), AccessFlags::RW)))
        });

        // Default-deny miss: below every rule.
        let miss = VAddr(0xdead);
        group.bench_with_input(BenchmarkId::new("flat_scan_miss", n), &n, |b, _| {
            b.iter(|| black_box(flat.lookup_frozen(black_box(miss), Size(8), AccessFlags::RW)))
        });
        group.bench_with_input(BenchmarkId::new("frozen_sorted_miss", n), &n, |b, _| {
            b.iter(|| black_box(sorted.lookup_frozen(black_box(miss), Size(8), AccessFlags::RW)))
        });
        group.bench_with_input(BenchmarkId::new("frozen_interval_miss", n), &n, |b, _| {
            b.iter(|| black_box(interval.lookup_frozen(black_box(miss), Size(8), AccessFlags::RW)))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_store_lookup);
criterion_main!(benches);
