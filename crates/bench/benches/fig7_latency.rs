//! Figure 7 (host wall-clock counterpart): the bare driver `xmit` path
//! (descriptor queue + doorbell, without the synchronous DMA tick) —
//! the closest native analogue of the paper's per-`sendmsg` latency.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kop_bench::setup;
use kop_e1000e::{MemSpace, VecSink};
use kop_sim::MachineProfile;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_latency");
    group.sample_size(40);

    let dst = [0xffu8; 6];

    group.bench_function("baseline_queue_only", |b| {
        let mut s = setup::baseline_sender(MachineProfile::r350());
        let payload = [0u8; 114];
        let mut sink = VecSink::default();
        b.iter(|| {
            s.driver().xmit(dst, 0x88b5, black_box(&payload)).unwrap();
            // Drain the ring outside the measured region is impossible in
            // criterion's iter; tick inline (dominated by queueing cost).
            s.driver().mem().tx_tick(&mut sink);
            sink.frames.clear();
        });
    });

    group.bench_function("carat_queue_only_2regions", |b| {
        let mut s = setup::carat_sender(MachineProfile::r350(), setup::two_region_policy(), 0);
        let payload = [0u8; 114];
        let mut sink = VecSink::default();
        b.iter(|| {
            s.driver().xmit(dst, 0x88b5, black_box(&payload)).unwrap();
            s.driver().mem().tx_tick(&mut sink);
            sink.frames.clear();
        });
    });

    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
