//! Microbenchmark of the guard check itself: `carat_guard` against the
//! paper's 64-entry table under the two-region policy — the single
//! operation CARAT KOP adds in front of every load/store.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use kop_core::{AccessFlags, Size, VAddr};
use kop_policy::{PolicyCheck, PolicyModule};

fn bench_guard(c: &mut Criterion) {
    let mut group = c.benchmark_group("guard_check");
    group.sample_size(50);

    let pm = PolicyModule::two_region_paper_policy();
    let kernel_addr = VAddr(kop_core::layout::DIRECT_MAP_BASE + 0x1000);

    group.bench_function("two_region_hit", |b| {
        b.iter(|| {
            black_box(pm.carat_guard(
                black_box(kernel_addr),
                black_box(Size(8)),
                black_box(AccessFlags::RW),
            ))
        })
    });

    // Deny path (user half, explicit NONE rule) — the cost of a violation
    // classification, excluding the logging arm: use check directly and
    // discard.
    let user_addr = VAddr(0x40_0000);
    group.bench_function("two_region_deny", |b| {
        b.iter_batched(
            || (),
            |()| black_box(pm.carat_guard(user_addr, Size(8), AccessFlags::RW)).is_err(),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_guard);
criterion_main!(benches);
