//! Figure 5 (host wall-clock counterpart): transmit cost as the number of
//! policy regions grows (2, 16, 64) with the matching rules scanned last —
//! the worst case for the paper's linear table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kop_bench::setup;
use kop_net::{EtherType, MacAddr};
use kop_sim::MachineProfile;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_regions");
    group.sample_size(30);

    for n in [2usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("carat_xmit_128B", n), &n, |b, &n| {
            let mut s = setup::carat_sender(
                MachineProfile::r350(),
                setup::n_region_policy(n),
                setup::hit_pos_for(n),
            );
            let payload = [0u8; 114];
            b.iter(|| {
                black_box(
                    s.sendmsg(
                        MacAddr::BROADCAST,
                        EtherType::Experimental,
                        black_box(&payload),
                    )
                    .unwrap(),
                )
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
