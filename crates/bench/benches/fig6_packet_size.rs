//! Figure 6 (host wall-clock counterpart): transmit cost across packet
//! sizes, baseline vs carat. The paper's point: guard cost is constant
//! per packet, so its *relative* weight shrinks as packets grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use kop_bench::setup;
use kop_net::{EtherType, MacAddr};

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_packet_size");
    group.sample_size(25);

    for size in [64usize, 128, 256, 512, 1024, 1500] {
        let payload = vec![0u8; size.saturating_sub(14)];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("baseline", size), &size, |b, _| {
            let mut s = setup::baseline_sender(setup::r350_burst());
            b.iter(|| {
                black_box(
                    s.sendmsg(
                        MacAddr::BROADCAST,
                        EtherType::Experimental,
                        black_box(&payload),
                    )
                    .unwrap(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("carat", size), &size, |b, _| {
            let mut s = setup::carat_sender(setup::r350_burst(), setup::n_region_policy(2), 0);
            b.iter(|| {
                black_box(
                    s.sendmsg(
                        MacAddr::BROADCAST,
                        EtherType::Experimental,
                        black_box(&payload),
                    )
                    .unwrap(),
                )
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
