//! Benchmark of the recovery machinery under an injected fault storm:
//! how much wall-clock the watchdog/reset/retry stack adds to a TX
//! workload, fault-free vs storming, baseline vs guarded.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use kop_e1000e::device::CountSink;
use kop_e1000e::{DirectMem, E1000Device, E1000Driver, GuardedMem, MemSpace};
use kop_faultline::{FaultPlan, FaultyMem, Trigger};
use kop_policy::PolicyModule;

const FRAMES: u64 = 512;
const DST: [u8; 6] = [0x52, 0x54, 0x00, 0xfa, 0x11, 0x7e];

fn storm_plan(rate: f64) -> FaultPlan {
    FaultPlan::new(0xfa17)
        .with_tx_hang(Trigger::Probability(rate))
        .with_dma_drop(Trigger::Probability(rate))
}

fn drive<M: MemSpace>(drv: &mut E1000Driver<M>) -> u64 {
    let mut sink = CountSink::default();
    for i in 0..FRAMES {
        let _ = drv.xmit_with_retry(DST, 0x0800, &[0xab; 114], &mut sink, 8);
        if i % 8 == 0 {
            let _ = drv.watchdog();
        }
    }
    for _ in 0..1024 {
        if drv.tx_pending() == 0 {
            break;
        }
        drv.mem().tx_tick(&mut sink);
        let _ = drv.clean_tx();
        let _ = drv.watchdog();
    }
    sink.frames
}

fn bench_resilience(c: &mut Criterion) {
    let mut group = c.benchmark_group("resilience");
    group.sample_size(20);
    group.throughput(Throughput::Elements(FRAMES));

    group.bench_function("baseline_fault_free", |b| {
        b.iter(|| {
            let mem = FaultyMem::new(
                DirectMem::with_defaults(E1000Device::default()),
                FaultPlan::quiet(),
            );
            let mut drv = E1000Driver::probe(mem).expect("probe");
            drv.up().expect("up");
            black_box(drive(&mut drv))
        })
    });

    group.bench_function("baseline_storm_5pct", |b| {
        b.iter(|| {
            let mem = FaultyMem::new(
                DirectMem::with_defaults(E1000Device::default()),
                storm_plan(0.05),
            );
            let mut drv = E1000Driver::probe(mem).expect("probe");
            drv.up().expect("up");
            black_box(drive(&mut drv))
        })
    });

    group.bench_function("carat_storm_5pct", |b| {
        b.iter(|| {
            let policy = std::sync::Arc::new(PolicyModule::two_region_paper_policy());
            let mem = FaultyMem::new(
                GuardedMem::new(DirectMem::with_defaults(E1000Device::default()), policy),
                storm_plan(0.05),
            );
            let mut drv = E1000Driver::probe(mem).expect("probe");
            drv.up().expect("up");
            black_box(drive(&mut drv))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_resilience);
criterion_main!(benches);
