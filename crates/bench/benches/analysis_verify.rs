//! Wall-clock of the static guard-coverage verifier — the analysis the
//! loader's `Verification::Static` mode runs once per insmod. Measured
//! over the corpus (guarded paper builds and optimized builds) and over
//! the synthetic scale module, plus the provenance classifier alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use kop_bench::corpus;
use kop_compiler::{compile_module, CompileOptions, CompilerKey};
use kop_ir::Module;

fn guarded(module: Module, opts: &CompileOptions) -> Module {
    let key = CompilerKey::from_passphrase("operator-key", "carat-kop-dev");
    let out = compile_module(module, opts, &key).expect("compiles");
    out.signed.verify(&[key]).expect("verifies")
}

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_verify");
    group.sample_size(30);

    for (name, module) in corpus::all() {
        let ir = guarded(module, &CompileOptions::carat_kop());
        group.throughput(Throughput::Elements(ir.memory_access_count() as u64));
        group.bench_with_input(BenchmarkId::new("coverage", name), &ir, |b, ir| {
            b.iter(|| black_box(kop_analysis::verify_guard_coverage(black_box(ir))))
        });
    }

    // Optimized (hoisted + deduplicated) guards exercise the dominance
    // reasoning instead of the same-block fast path.
    let opt = guarded(
        corpus::parse(corpus::OPT_WORKLOAD_IR),
        &CompileOptions::optimized(),
    );
    group.bench_function("coverage/opt-workload-optimized", |b| {
        b.iter(|| black_box(kop_analysis::verify_guard_coverage(black_box(&opt))))
    });

    // Scale: the ~19 kLoC-equivalent synthetic module.
    let big = guarded(corpus::synthetic_large(200), &CompileOptions::carat_kop());
    group.throughput(Throughput::Elements(big.memory_access_count() as u64));
    group.bench_function("coverage/synthetic-200", |b| {
        b.iter(|| black_box(kop_analysis::verify_guard_coverage(black_box(&big))))
    });

    // Provenance classification alone (the KA003/KA005 layer).
    let rootkit = corpus::parse(corpus::ROOTKIT_IR);
    group.bench_function("provenance/credscan", |b| {
        b.iter(|| {
            black_box(kop_analysis::provenance::analyze_provenance(
                black_box(&rootkit),
                &[],
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_verify);
criterion_main!(benches);
