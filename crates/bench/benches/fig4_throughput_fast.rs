//! Figure 4 (host wall-clock counterpart): as fig3 but with the R350
//! profile driving the cycle model. The wall-clock driver cost is the
//! same code path; what differs in the simulation is the machine model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kop_bench::setup;
use kop_net::{EtherType, MacAddr};
use kop_sim::MachineProfile;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_throughput_fast");
    group.sample_size(30);

    group.bench_function("baseline_xmit_128B", |b| {
        let mut s = setup::baseline_sender(MachineProfile::r350());
        let payload = [0u8; 114];
        b.iter(|| {
            black_box(
                s.sendmsg(
                    MacAddr::BROADCAST,
                    EtherType::Experimental,
                    black_box(&payload),
                )
                .unwrap(),
            )
        });
    });

    group.bench_function("carat_xmit_128B_2regions", |b| {
        let mut s = setup::carat_sender(MachineProfile::r350(), setup::two_region_policy(), 0);
        let payload = [0u8; 114];
        b.iter(|| {
            black_box(
                s.sendmsg(
                    MacAddr::BROADCAST,
                    EtherType::Experimental,
                    black_box(&payload),
                )
                .unwrap(),
            )
        });
    });

    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
