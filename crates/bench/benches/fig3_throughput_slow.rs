//! Figure 3 (host wall-clock counterpart): the real driver-model transmit
//! path, baseline vs CARAT KOP, two regions, 128-byte packets. The paper's
//! claim to verify on real hardware: the carat path costs at most a
//! fraction of a percent more than the baseline. (The simulated R415
//! series comes from `reproduce fig3`.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kop_bench::setup;
use kop_net::{EtherType, MacAddr};
use kop_sim::MachineProfile;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_throughput_slow");
    group.sample_size(30);

    group.bench_function("baseline_xmit_128B", |b| {
        let mut s = setup::baseline_sender(MachineProfile::r415());
        let payload = [0u8; 114];
        b.iter(|| {
            black_box(
                s.sendmsg(
                    MacAddr::BROADCAST,
                    EtherType::Experimental,
                    black_box(&payload),
                )
                .unwrap(),
            )
        });
    });

    group.bench_function("carat_xmit_128B_2regions", |b| {
        let mut s = setup::carat_sender(MachineProfile::r415(), setup::two_region_policy(), 0);
        let payload = [0u8; 114];
        b.iter(|| {
            black_box(
                s.sendmsg(
                    MacAddr::BROADCAST,
                    EtherType::Experimental,
                    black_box(&payload),
                )
                .unwrap(),
            )
        });
    });

    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
