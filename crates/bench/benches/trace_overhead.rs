//! Microbenchmark of what kop-trace adds to a guard check:
//!
//! * `guard_untraced` — the raw `GuardedMem` guard path, no tracer;
//! * `guard_tracing_off` — tracer wired in but disabled (shipping
//!   config: one relaxed atomic load);
//! * `guard_tracing_on` — full ring events + per-site histograms;
//! * `record_disabled` / `record_enabled` — the raw `Tracer::record`
//!   call in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use kop_e1000e::{DirectMem, E1000Device, GuardedMem, MemSpace};
use kop_trace::{Producer, TraceEvent, Tracer};

fn guarded(tracer: Option<Arc<Tracer>>) -> GuardedMem<Arc<kop_policy::PolicyModule>> {
    let pm = Arc::new(kop_policy::PolicyModule::two_region_paper_policy());
    let inner = DirectMem::with_defaults(E1000Device::default());
    match tracer {
        Some(t) => GuardedMem::with_tracer(inner, pm, t),
        None => GuardedMem::new(inner, pm),
    }
}

fn bench_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(30);

    let mut untraced = guarded(None);
    let base = untraced.arena_base();
    group.bench_function("guard_untraced", |b| {
        b.iter(|| black_box(untraced.write(black_box(base + 0x100), 8, 1)))
    });

    let off = Tracer::new(); // disabled by default
    let mut traced_off = guarded(Some(Arc::clone(&off)));
    group.bench_function("guard_tracing_off", |b| {
        b.iter(|| black_box(traced_off.write(black_box(base + 0x100), 8, 1)))
    });

    let on = Tracer::new();
    on.set_enabled(true);
    let mut traced_on = guarded(Some(Arc::clone(&on)));
    group.bench_function("guard_tracing_on", |b| {
        b.iter(|| black_box(traced_on.write(black_box(base + 0x100), 8, 1)))
    });

    let t = Tracer::new();
    group.bench_function("record_disabled", |b| {
        b.iter(|| t.record(Producer::Bench, TraceEvent::Reset))
    });
    t.set_enabled(true);
    group.bench_function("record_enabled", |b| {
        b.iter(|| t.record(Producer::Bench, TraceEvent::Reset))
    });

    group.finish();
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
