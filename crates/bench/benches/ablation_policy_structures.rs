//! ABL-DS: guard-check latency across every policy data structure and
//! region count — the quantitative version of the paper's §3.1/§4.2
//! discussion of AMQ filters, sorted tables, splay trees, and caches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kop_core::{AccessFlags, Protection, Region, Size, VAddr};
use kop_policy::store::{make_store, RegionStore, StoreKind};

fn filled(kind: StoreKind, n: usize) -> Box<dyn RegionStore + Send> {
    let mut store = make_store(kind);
    for i in 0..n as u64 {
        store
            .insert(
                Region::new(
                    VAddr(0x10_0000 + i * 0x10_000),
                    Size(0x1000),
                    Protection::READ_WRITE,
                )
                .expect("region"),
            )
            .expect("insert");
    }
    store
}

fn bench_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_structures");
    group.sample_size(30);

    for kind in StoreKind::ALL {
        for n in [2usize, 16, 64, 512] {
            // Array-backed structures cap at 64 regions.
            if n > 64
                && matches!(
                    kind,
                    StoreKind::Table
                        | StoreKind::BloomFront
                        | StoreKind::CuckooFront
                        | StoreKind::Cached
                )
            {
                continue;
            }
            // Worst-case-hit workload: the region at the end of the scan.
            let hot = 0x10_0000 + (n as u64 - 1) * 0x10_000;
            group.bench_with_input(
                BenchmarkId::new(format!("{}_hot_hit", kind.name()), n),
                &n,
                |b, _| {
                    let mut store = filled(kind, n);
                    b.iter(|| {
                        black_box(store.lookup(black_box(VAddr(hot + 8)), Size(8), AccessFlags::RW))
                    });
                },
            );
        }
    }

    // Miss workload at n=64 (default-deny fast path; where the Bloom
    // front should shine).
    for kind in StoreKind::ALL {
        group.bench_with_input(
            BenchmarkId::new(format!("{}_miss", kind.name()), 64),
            &64,
            |b, _| {
                let mut store = filled(kind, 64);
                b.iter(|| {
                    black_box(store.lookup(black_box(VAddr(0xdead_0000)), Size(8), AccessFlags::RW))
                });
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_structures);
criterion_main!(benches);
