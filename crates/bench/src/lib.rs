//! # kop-bench — the benchmark harness
//!
//! One generator per figure in the paper's evaluation (§4.2), plus the
//! ablations DESIGN.md calls out. Each generator returns a
//! [`figures::FigureData`] whose series can be rendered as text (the
//! `reproduce` binary) and asserted on (the regression tests in
//! `tests/`). Criterion benches under `benches/` measure the *real*
//! wall-clock cost of the same code paths on the host.

#![warn(missing_docs)]

pub mod corpus;
pub mod figures;
pub mod setup;

pub use figures::{FigureData, Series};
