//! `reproduce` — regenerate the paper's figures from the simulation.
//!
//! ```text
//! reproduce [fig3|fig4|fig5|fig6|fig7|claims|analysis|ablation-ds|ablation-opt|opt|resilience|trace|exec|jit|smp|soak|forward|fleet|all]
//!           [--csv]        # raw series to stdout instead of the report
//!           [--out DIR]    # additionally write one CSV per figure into DIR
//!           [--quick]      # tiny trial counts (CI smoke); not paper-scale
//! ```
//!
//! The `smp`, `exec`, `jit`, `opt`, `soak`, `forward`, and `fleet`
//! figures additionally write machine-readable `BENCH_smp.json` /
//! `BENCH_exec.json` / `BENCH_jit.json` / `BENCH_opt.json` /
//! `BENCH_soak.json` / `BENCH_forward.json` / `BENCH_fleet.json`
//! (into `--out DIR` when given, else the current directory).

use kop_bench::figures;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    if args.iter().any(|a| a == "--quick") {
        figures::set_quick(true);
    }
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let what = {
        let mut skip_next = false;
        let mut found = None;
        for a in &args {
            if skip_next {
                skip_next = false;
                continue;
            }
            if a == "--out" {
                skip_next = true;
                continue;
            }
            if !a.starts_with("--") {
                found = Some(a.as_str());
                break;
            }
        }
        found.unwrap_or("all")
    };

    let figs = match what {
        "fig3" => vec![figures::fig3()],
        "fig4" => vec![figures::fig4()],
        "fig5" => vec![figures::fig5()],
        "fig6" => vec![figures::fig6()],
        "fig7" => vec![figures::fig7()],
        "claims" => vec![figures::claims()],
        "analysis" => vec![figures::analysis()],
        "ablation-ds" => vec![figures::ablation_ds()],
        "ablation-opt" => vec![figures::ablation_opt()],
        "opt" => vec![figures::opt()],
        "resilience" => figures::resilience(),
        "trace" => vec![figures::trace()],
        "exec" => vec![figures::exec()],
        "jit" => vec![figures::jit()],
        "smp" => vec![figures::smp()],
        "soak" => vec![figures::soak()],
        "forward" => vec![figures::forward()],
        "fleet" => vec![figures::fleet()],
        "all" => figures::all_figures(),
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!(
                "usage: reproduce [fig3|fig4|fig5|fig6|fig7|claims|analysis|ablation-ds|ablation-opt|opt|resilience|trace|exec|jit|smp|soak|forward|fleet|all] [--csv] [--quick]"
            );
            std::process::exit(2);
        }
    };

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create --out directory");
    }
    for fig in figs {
        if csv {
            print!("{}", fig.render_csv());
        } else {
            println!("{}", fig.render_text());
        }
        if let Some(dir) = &out_dir {
            let path = std::path::Path::new(dir).join(format!("{}.csv", fig.id));
            std::fs::write(&path, fig.render_csv()).expect("write figure CSV");
            eprintln!("wrote {}", path.display());
        }
        if fig.id == "smp"
            || fig.id == "exec"
            || fig.id == "jit"
            || fig.id == "opt"
            || fig.id == "soak"
            || fig.id == "forward"
            || fig.id == "fleet"
        {
            // Machine-readable results for CI consumers and dashboards.
            let dir = out_dir.as_deref().unwrap_or(".");
            let path = std::path::Path::new(dir).join(format!("BENCH_{}.json", fig.id));
            std::fs::write(&path, fig.render_json()).expect("write BENCH json");
            eprintln!("wrote {}", path.display());
        }
    }
}
