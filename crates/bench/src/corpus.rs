//! KIR module corpus: the IR-level driver model and workloads used by the
//! engineering-effort claim (CLAIM-T), the guard-optimization ablation
//! (ABL-OPT), and the examples.

use kop_ir::{parse_module, Module};

/// A miniature e1000e transmit path expressed in KIR — the module the
/// "transform a production module with zero source changes" claim is
/// exercised on. Layout matches the native driver model: a descriptor
/// ring of `{ i64 buffer, i32 len_cmd, i32 status }`, a stats block, and
/// an MMIO doorbell.
pub const MINI_E1000E_IR: &str = r#"
module "mini-e1000e"

global @stats : { i64, i64, i64 } = zero

define void @write_header(ptr %buf, i64 %dst_src, i64 %src_rest, i64 %ethertype) {
entry:
  store i64 %dst_src, ptr %buf
  %p1 = gep i8, ptr %buf, i64 8
  %src32 = trunc i64 %src_rest to i32
  store i32 %src32, ptr %p1
  %p2 = gep i8, ptr %buf, i64 12
  %et16 = trunc i64 %ethertype to i16
  store i16 %et16, ptr %p2
  ret void
}

define i64 @clean_tx(ptr %ring, i64 %head, i64 %tail) {
entry:
  br %loop
loop:
  %i = phi i64 [ %head, %entry ], [ %i.next, %advance ]
  %cleaned = phi i64 [ 0, %entry ], [ %cleaned.next, %advance ]
  %more = icmp ne i64 %i, %tail
  condbr i1 %more, %check, %done
check:
  %slot = gep { i64, i32, i32 }, ptr %ring, i64 %i
  %sts.p = gep { i64, i32, i32 }, ptr %ring, i64 %i, i32 2
  %sts = load i32, ptr %sts.p
  %dd = and i32 %sts, 1
  %isdone = icmp ne i32 %dd, 0
  condbr i1 %isdone, %reclaim, %done
reclaim:
  store i32 0, ptr %sts.p
  br %advance
advance:
  %i.next.raw = add i64 %i, 1
  %i.next = and i64 %i.next.raw, 255
  %cleaned.next = add i64 %cleaned, 1
  br %loop
done:
  %result = phi i64 [ %cleaned, %loop ], [ %cleaned, %check ]
  ret i64 %result
}

define void @queue_desc(ptr %ring, i64 %slot, i64 %buf, i64 %len_cmd) {
entry:
  %addr.p = gep { i64, i32, i32 }, ptr %ring, i64 %slot
  store i64 %buf, ptr %addr.p
  %len.p = gep { i64, i32, i32 }, ptr %ring, i64 %slot, i32 1
  %len32 = trunc i64 %len_cmd to i32
  store i32 %len32, ptr %len.p
  ret void
}

define void @bump_stats(i64 %bytes) {
entry:
  %pk.p = gep { i64, i64, i64 }, ptr @stats, i64 0, i32 0
  %pk = load i64, ptr %pk.p
  %pk2 = add i64 %pk, 1
  store i64 %pk2, ptr %pk.p
  %by.p = gep { i64, i64, i64 }, ptr @stats, i64 0, i32 1
  %by = load i64, ptr %by.p
  %by2 = add i64 %by, %bytes
  store i64 %by2, ptr %by.p
  ret void
}

define void @xmit(ptr %ring, ptr %buf, ptr %mmio, i64 %slot, i64 %len, i64 %head) {
entry:
  %cleaned = call i64 @clean_tx(ptr %ring, i64 %head, i64 %slot)
  call void @write_header(ptr %buf, i64 0x02ffffffffffff, i64 0x4b4f5001, i64 0xb588)
  %cmd = or i64 %len, 0x0b000000
  call void @queue_desc(ptr %ring, i64 %slot, i64 0, i64 %cmd)
  call void @bump_stats(i64 %len)
  %tdt.p = gep i8, ptr %mmio, i64 0x3818
  %slot.next.raw = add i64 %slot, 1
  %slot.next = and i64 %slot.next.raw, 255
  %tdt32 = trunc i64 %slot.next to i32
  store i32 %tdt32, ptr %tdt.p
  ret void
}
"#;

/// The forwarding rewrite expressed in KIR — the RX-side companion to
/// [`MINI_E1000E_IR`]. `@fwd_rewrite` copies a received frame into a TX
/// buffer byte-by-byte (guarded loads from the DMA-filled RX buffer,
/// guarded stores into the TX buffer), then patches the Ethernet header
/// for the echo path: destination becomes the original source,
/// source becomes the forwarder's own MAC (passed as a 48-bit
/// little-endian integer). Matches [`kop_net::rewrite`] exactly, so the
/// interpreter-driven and native forwarding paths are byte-comparable.
pub const FORWARD_IR: &str = r#"
module "fwd-rewrite"

global @fwd_stats : { i64, i64 } = zero

define i64 @fwd_rewrite(ptr %rx, ptr %tx, i64 %own48, i64 %len) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %copy ]
  %more = icmp ult i64 %i, %len
  condbr i1 %more, %copy, %patch
copy:
  %sp = gep i8, ptr %rx, i64 %i
  %b = load i8, ptr %sp
  %dp = gep i8, ptr %tx, i64 %i
  store i8 %b, ptr %dp
  %i.next = add i64 %i, 1
  br %head
patch:
  br %swap
swap:
  %j = phi i64 [ 0, %patch ], [ %j.next, %swapbody ]
  %c = icmp ult i64 %j, 6
  condbr i1 %c, %swapbody, %ownmac
swapbody:
  %soff = add i64 %j, 6
  %srcb.p = gep i8, ptr %rx, i64 %soff
  %srcb = load i8, ptr %srcb.p
  %dstb.p = gep i8, ptr %tx, i64 %j
  store i8 %srcb, ptr %dstb.p
  %j.next = add i64 %j, 1
  br %swap
ownmac:
  %own32 = trunc i64 %own48 to i32
  %sp6 = gep i8, ptr %tx, i64 6
  store i32 %own32, ptr %sp6
  %hi = lshr i64 %own48, 32
  %own16 = trunc i64 %hi to i16
  %sp10 = gep i8, ptr %tx, i64 10
  store i16 %own16, ptr %sp10
  %pk.p = gep { i64, i64 }, ptr @fwd_stats, i64 0, i32 0
  %pk = load i64, ptr %pk.p
  %pk2 = add i64 %pk, 1
  store i64 %pk2, ptr %pk.p
  %by.p = gep { i64, i64 }, ptr @fwd_stats, i64 0, i32 1
  %by = load i64, ptr %by.p
  %by2 = add i64 %by, %len
  store i64 %by2, ptr %by.p
  ret i64 %len
}
"#;

/// A guard-optimization workload: a hot loop with loop-invariant global
/// accesses (hoistable) and repeated same-pointer accesses (deduplicable).
pub const OPT_WORKLOAD_IR: &str = r#"
module "opt-workload"

global @config : i64 = 7
global @acc : i64 = 0

define i64 @run(ptr %buf, i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %cfg = load i64, ptr @config
  %cfg2 = load i64, ptr @config
  %p = gep i64, ptr %buf, i64 %i
  %v = load i64, ptr %p
  %v2 = mul i64 %v, %cfg
  %v3 = add i64 %v2, %cfg2
  %old = load i64, ptr @acc
  %new = add i64 %old, %v3
  store i64 %new, ptr @acc
  %i.next = add i64 %i, 1
  br %head
exit:
  %r = load i64, ptr @acc
  ret i64 %r
}
"#;

/// A rootkit-style module: scans low (user-half) memory looking for
/// credentials — the class of attack the paper's firewall stops.
pub const ROOTKIT_IR: &str = r#"
module "credscan"

global @found : i64 = 0

define i64 @scan(i64 %start, i64 %len) {
entry:
  br %head
head:
  %off = phi i64 [ 0, %entry ], [ %off.next, %next ]
  %c = icmp ult i64 %off, %len
  condbr i1 %c, %body, %done
body:
  %addr = add i64 %start, %off
  %p = inttoptr i64 %addr to ptr
  %word = load i64, ptr %p
  %hit = icmp eq i64 %word, 0x6472777373617020
  condbr i1 %hit, %record, %next
record:
  store i64 %addr, ptr @found
  br %next
next:
  %off.next = add i64 %off, 8
  br %head
done:
  %r = load i64, ptr @found
  ret i64 %r
}
"#;

/// Parse one of the corpus modules (panics on corpus bugs — these are
/// compiled into the binary and covered by tests).
pub fn parse(src: &str) -> Module {
    parse_module(src).expect("corpus module parses")
}

/// Generate a large synthetic module with `n_funcs` functions, each a
/// loop over guarded loads/stores — the scale stand-in for the paper's
/// 19 kLoC e1000e. At `n_funcs = 800` the printed IR is ~19,000 lines of
/// KIR, so CLAIM-T can exercise "transform a ~19 kLoC module" literally.
pub fn synthetic_large(n_funcs: usize) -> Module {
    use kop_ir::{GlobalInit, IcmpPred, IrBuilder, Type, Value};
    let mut b = IrBuilder::new("synthetic-large");
    b.global("total", Type::I64, GlobalInit::Int(0));
    for fi in 0..n_funcs {
        let mut f = b.function(format!("work{fi}"), vec![Type::Ptr, Type::I64], Type::I64);
        f.name_params(&["buf", "n"]);
        let entry = f.block("entry");
        let head = f.block("head");
        let body = f.block("body");
        let exit = f.block("exit");
        f.switch_to(entry);
        f.br(head);
        f.switch_to(head);
        let i = f.phi(Type::I64, vec![(entry, Value::i64(0))]);
        let acc = f.phi(Type::I64, vec![(entry, Value::i64(fi as u64))]);
        let c = f.icmp(IcmpPred::Ult, Type::I64, i.clone(), Value::Arg(1));
        f.condbr(c, body, exit);
        f.switch_to(body);
        // A spread of accesses so the module isn't one repeated pattern:
        // stride and field offsets vary per function.
        let stride = (fi % 7 + 1) as u64;
        let idx = f.mul(Type::I64, i.clone(), Value::i64(stride));
        let p = f.gep(Type::I64, Value::Arg(0), vec![idx]);
        let v = f.load(Type::I64, p.clone());
        let v2 = f.add(Type::I64, v, Value::i64(fi as u64 + 1));
        f.store(Type::I64, v2.clone(), p);
        let g = Value::Global("total".into());
        let t = f.load(Type::I64, g.clone());
        let t2 = f.add(Type::I64, t, v2.clone());
        f.store(Type::I64, t2, g);
        let acc2 = f.add(Type::I64, acc.clone(), v2);
        let i2 = f.add(Type::I64, i.clone(), Value::i64(1));
        f.br(head);
        // Patch loop phis.
        let func = f.raw();
        for (phi, val) in [(&i, i2), (&acc, acc2)] {
            if let Value::Inst(id) = phi {
                if let kop_ir::Inst::Phi { incomings, .. } = func.inst_mut(*id) {
                    incomings.push((body, val));
                }
            }
        }
        f.switch_to(exit);
        f.ret(Some(acc));
        f.finish();
    }
    b.finish()
}

/// All corpus modules with labels (for sweeps).
pub fn all() -> Vec<(&'static str, Module)> {
    vec![
        ("mini-e1000e", parse(MINI_E1000E_IR)),
        ("fwd-rewrite", parse(FORWARD_IR)),
        ("opt-workload", parse(OPT_WORKLOAD_IR)),
        ("credscan", parse(ROOTKIT_IR)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_ir::verify_module;

    #[test]
    fn corpus_parses_and_verifies() {
        for (name, module) in all() {
            verify_module(&module).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(module.memory_access_count() > 0, "{name} touches memory");
        }
    }

    #[test]
    fn forward_rewrite_has_expected_shape() {
        let m = parse(FORWARD_IR);
        assert_eq!(m.functions.len(), 1);
        assert!(m.function("fwd_rewrite").is_some());
        // Copy loop (1 load + 1 store) + MAC swap loop (1 load + 1 store)
        // + own-MAC patch (2 stores) + stats (2 loads, 2 stores).
        assert!(m.memory_access_count() >= 10);
    }

    #[test]
    fn mini_driver_has_expected_shape() {
        let m = parse(MINI_E1000E_IR);
        assert_eq!(m.functions.len(), 5);
        assert!(m.function("xmit").is_some());
        // Header (3 stores) + clean (1 load, 1 store) + desc (2 stores) +
        // stats (2 loads, 2 stores) + doorbell (1 store).
        assert!(m.memory_access_count() >= 12);
    }
}
