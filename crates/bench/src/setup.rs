//! Shared experiment setup: senders, policies, machine variants.

use std::sync::Arc;

use kop_core::{Protection, Region, Size, VAddr};
use kop_e1000e::{DirectMem, E1000Device, E1000Driver, GuardedMem};
use kop_net::RawSender;
use kop_policy::{DefaultAction, PolicyModule, StoreKind, ViolationAction};
use kop_sim::MachineProfile;

/// The arena region every working policy must permit (the driver's rings,
/// buffers, and stats block live here).
pub fn arena_region() -> Region {
    Region::new(
        VAddr(kop_core::layout::DIRECT_MAP_BASE),
        Size(64 << 20),
        Protection::READ_WRITE,
    )
    .expect("arena region")
}

/// The NIC BAR region.
pub fn mmio_region() -> Region {
    Region::new(
        VAddr(kop_core::layout::MMIO_WINDOW_BASE),
        Size(kop_e1000e::regs::BAR_SIZE),
        Protection::READ_WRITE,
    )
    .expect("mmio region")
}

/// The paper's two-region policy, §4.2 footnote 5: kernel addresses (the
/// "high half") allowed, user addresses (the "low half") disallowed.
pub fn two_region_policy() -> Arc<PolicyModule> {
    let pm = Arc::new(PolicyModule::two_region_paper_policy());
    pm.set_violation_action(ViolationAction::Panic);
    pm
}

/// A policy with `n` regions where the regions the driver actually uses
/// sit at the *end* of the table — the worst case for the linear scan,
/// which is what the Figure 5 sweep stresses. The first `n - 2` entries
/// are decoy rules over the user half.
pub fn n_region_policy(n: usize) -> Arc<PolicyModule> {
    assert!(
        (2..=64).contains(&n),
        "table policy supports 2..=64 regions"
    );
    let pm = Arc::new(PolicyModule::with_kind(StoreKind::Table));
    pm.set_default_action(DefaultAction::Deny);
    for i in 0..(n - 2) as u64 {
        pm.add_region(
            Region::new(
                VAddr(0x1000_0000 + i * 0x10_0000),
                Size(0x1000),
                Protection::READ_ONLY,
            )
            .expect("decoy region"),
        )
        .expect("insert decoy");
    }
    pm.add_region(arena_region()).expect("insert arena");
    pm.add_region(mmio_region()).expect("insert mmio");
    pm
}

/// The scan position the guard-cost model should use for an `n`-region
/// worst-case policy (the matching rules are last).
pub fn hit_pos_for(n: usize) -> u64 {
    (n as u64).saturating_sub(1)
}

/// A ready baseline (unguarded) sender.
pub fn baseline_sender(machine: MachineProfile) -> RawSender<DirectMem> {
    let mem = DirectMem::with_defaults(E1000Device::default());
    let mut drv = E1000Driver::probe(mem).expect("probe baseline");
    drv.up().expect("up baseline");
    RawSender::new(drv, machine)
}

/// A ready CARAT KOP (guarded) sender over `policy`.
pub fn carat_sender(
    machine: MachineProfile,
    policy: Arc<PolicyModule>,
    hit_pos: u64,
) -> RawSender<GuardedMem<Arc<PolicyModule>>> {
    let mem = GuardedMem::new(DirectMem::with_defaults(E1000Device::default()), policy);
    let mut drv = E1000Driver::probe(mem).expect("probe carat");
    drv.up().expect("up carat");
    let mut sender = RawSender::new(drv, machine);
    sender.policy_hit_pos = hit_pos;
    sender
}

/// The R350 in the configuration the Figure 6 sweep uses: the tool's
/// burst path (syscall and tool-loop costs amortized across the burst)
/// with cold-predictor guard costs. See EXPERIMENTS.md for why Figure 6's
/// absolute numbers sit apart from Figure 4's (the tension is present in
/// the paper itself; footnote 4 notes 128 B "amplifies the difference").
pub fn r350_burst() -> MachineProfile {
    let mut m = MachineProfile::r350();
    m.name = "R350 (burst tool path)";
    m.syscall_cycles = 0.0;
    m.fixed_packet_cycles = 2_000.0;
    m.predictor_discount = 1.0;
    m
}

/// `PolicyCheck` needs to be implemented for `Arc<PolicyModule>` at a
/// usable cost — provided here as a compile check that it is (the impl
/// lives in kop-policy via `&PolicyModule`; Arc derefs).
#[cfg(test)]
mod tests {
    use super::*;
    use kop_net::{EtherType, MacAddr};

    #[test]
    fn two_region_policy_lets_driver_run() {
        let mut s = carat_sender(MachineProfile::r350(), two_region_policy(), 0);
        s.sendmsg(MacAddr::BROADCAST, EtherType::Experimental, &[0u8; 114])
            .expect("kernel-half traffic permitted");
        assert_eq!(s.sink.frames, 1);
    }

    #[test]
    fn n_region_policy_lets_driver_run_at_64() {
        for n in [2usize, 16, 64] {
            let mut s = carat_sender(MachineProfile::r350(), n_region_policy(n), hit_pos_for(n));
            s.send_burst(MacAddr::BROADCAST, EtherType::Experimental, 128, 10)
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert_eq!(s.sink.frames, 10);
        }
    }

    #[test]
    #[should_panic(expected = "table policy supports")]
    fn n_region_policy_rejects_oversize() {
        let _ = n_region_policy(65);
    }

    #[test]
    fn burst_profile_differs() {
        let b = r350_burst();
        assert_eq!(b.syscall_cycles, 0.0);
        assert!(b.fixed_packet_cycles < MachineProfile::r350().fixed_packet_cycles);
    }
}
