//! Figure and claim generators — one per table/figure in the paper.
//!
//! Each generator runs the full pipeline (real driver model → counted
//! work → calibrated machine model → jittered trials) and returns a
//! [`FigureData`] with the same series the paper plots. The shapes — who
//! wins, by roughly what factor, where the crossovers sit — are the
//! reproduction target; absolute numbers are calibrated, as documented in
//! DESIGN.md and EXPERIMENTS.md.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use kop_compiler::{compile_module, CompileOptions, CompilerKey};
use kop_core::{AccessFlags, Protection, Region, Size, VAddr};
use kop_e1000e::device::CountSink;
use kop_e1000e::{DriverError, E1000Driver, MemSpace};
use kop_faultline::{FaultPlan, Trigger};
use kop_kernel::{Kernel, KernelConfig};
use kop_net::{tool, EtherType, MacAddr, ToolConfig};
use kop_policy::store::{make_store, StoreKind};
use kop_policy::{DefaultAction, PolicyModule};
use kop_sim::{cdf_points, histogram, median, MachineProfile, Summary, TrialRunner};

use crate::corpus;
use crate::setup;

/// Quick mode: shrink trial counts for CI smoke runs (`reproduce --quick`).
/// Off by default so tests and full reproductions keep the paper-scale
/// configuration; only the `reproduce` binary flips it.
static QUICK: AtomicBool = AtomicBool::new(false);

/// Enable or disable quick mode (see [`QUICK`]).
pub fn set_quick(on: bool) {
    QUICK.store(on, Ordering::Relaxed);
}

fn quick() -> bool {
    QUICK.load(Ordering::Relaxed)
}

/// One plotted series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label (e.g. `"carat"`, `"baseline"`, `"carat64"`).
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// A regenerated figure: series plus headline numbers.
#[derive(Clone, Debug)]
pub struct FigureData {
    /// Identifier, e.g. `"fig3"`.
    pub id: &'static str,
    /// Title matching the paper's caption.
    pub title: String,
    /// Axis labels `(x, y)`.
    pub axes: (&'static str, &'static str),
    /// The plotted series.
    pub series: Vec<Series>,
    /// Headline `name = value` results (medians, deltas, ...).
    pub headlines: Vec<(String, f64)>,
    /// Free-form notes (paper expectations, substitutions).
    pub notes: Vec<String>,
}

impl FigureData {
    /// Look up a headline value.
    pub fn headline(&self, name: &str) -> Option<f64> {
        self.headlines
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Find a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render as a text report (what `reproduce` prints).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "==== {} — {}", self.id.to_uppercase(), self.title);
        let _ = writeln!(out, "     x: {}   y: {}", self.axes.0, self.axes.1);
        for s in &self.series {
            let ys: Vec<f64> = s.points.iter().map(|p| p.1).collect();
            let xs: Vec<f64> = s.points.iter().map(|p| p.0).collect();
            if self.id == "fig6" || self.id.starts_with("ablation") {
                // Small table: x → y.
                let _ = writeln!(out, "  series {:<14}", s.label);
                for (x, y) in &s.points {
                    let _ = writeln!(out, "    x={:<8.0} y={:.4}", x, y);
                }
            } else if self.id == "fig7" {
                let _ = writeln!(
                    out,
                    "  series {:<10} {} buckets, total count {}",
                    s.label,
                    s.points.len(),
                    ys.iter().sum::<f64>() as u64
                );
            } else {
                // CDF series: print quartiles of the x values.
                let _ = writeln!(
                    out,
                    "  series {:<10} p5 {:>12.1}  p25 {:>12.1}  median {:>12.1}  p75 {:>12.1}  p95 {:>12.1}",
                    s.label,
                    kop_sim::percentile(&xs, 5.0),
                    kop_sim::percentile(&xs, 25.0),
                    kop_sim::percentile(&xs, 50.0),
                    kop_sim::percentile(&xs, 75.0),
                    kop_sim::percentile(&xs, 95.0),
                );
            }
        }
        if let Some(plot) = self.ascii_plot() {
            out.push_str(&plot);
        }
        for (name, value) in &self.headlines {
            let _ = writeln!(out, "  => {name} = {value:.6}");
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }

    /// A terminal rendering of the figure (CDF overlays and histograms),
    /// so `reproduce` output looks like the paper's plots.
    pub fn ascii_plot(&self) -> Option<String> {
        const W: usize = 64;
        const H: usize = 12;
        if self.series.is_empty() || self.series.iter().any(|s| s.points.len() < 2) {
            return None;
        }
        let glyphs = ['*', 'o', '+', 'x', '#', '@'];
        let xmin = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .fold(f64::INFINITY, f64::min);
        let xmax = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .fold(f64::NEG_INFINITY, f64::max);
        let ymin = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.1))
            .fold(f64::INFINITY, f64::min);
        let ymax = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.1))
            .fold(f64::NEG_INFINITY, f64::max);
        if xmax <= xmin || ymax <= ymin {
            return None;
        }
        let mut grid = vec![[' '; W]; H];
        for (si, s) in self.series.iter().enumerate() {
            let g = glyphs[si % glyphs.len()];
            for &(x, y) in &s.points {
                let cx = ((x - xmin) / (xmax - xmin) * (W - 1) as f64).round() as usize;
                let cy = ((y - ymin) / (ymax - ymin) * (H - 1) as f64).round() as usize;
                let row = H - 1 - cy.min(H - 1);
                let col = cx.min(W - 1);
                // First series wins contested cells; overlap reads as
                // "curves coincide", which is the story anyway.
                if grid[row][col] == ' ' {
                    grid[row][col] = g;
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "  {ymax:>11.4} +");
        for row in &grid {
            let line: String = row.iter().collect();
            let _ = writeln!(out, "              |{line}");
        }
        let _ = writeln!(out, "  {:>11.4} +{}", ymin, "-".repeat(W));
        let _ = writeln!(
            out,
            "              {:<32}{:>32}",
            format!("{xmin:.1}"),
            format!("{xmax:.1}")
        );
        let legend: Vec<String> = self
            .series
            .iter()
            .enumerate()
            .map(|(si, s)| format!("{} {}", glyphs[si % glyphs.len()], s.label))
            .collect();
        let _ = writeln!(out, "              legend: {}", legend.join("   "));
        Some(out)
    }

    /// Render as CSV (`series,x,y` rows).
    pub fn render_csv(&self) -> String {
        let mut out = String::from("series,x,y\n");
        for s in &self.series {
            for (x, y) in &s.points {
                let _ = writeln!(out, "{},{},{}", s.label, x, y);
            }
        }
        out
    }

    /// Render as machine-readable JSON (what `reproduce` writes to
    /// `BENCH_<id>.json`). Hand-rolled — no serde in the tree — with
    /// non-finite values mapped to `null`.
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    '\n' => "\\n".chars().collect(),
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".into()
            }
        }
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"id\": \"{}\",", esc(self.id));
        let _ = writeln!(out, "  \"title\": \"{}\",", esc(&self.title));
        let _ = writeln!(
            out,
            "  \"axes\": [\"{}\", \"{}\"],",
            esc(self.axes.0),
            esc(self.axes.1)
        );
        let series: Vec<String> = self
            .series
            .iter()
            .map(|s| {
                let pts: Vec<String> = s
                    .points
                    .iter()
                    .map(|(x, y)| format!("[{}, {}]", num(*x), num(*y)))
                    .collect();
                format!(
                    "    {{\"label\": \"{}\", \"points\": [{}]}}",
                    esc(&s.label),
                    pts.join(", ")
                )
            })
            .collect();
        let _ = writeln!(out, "  \"series\": [\n{}\n  ],", series.join(",\n"));
        let heads: Vec<String> = self
            .headlines
            .iter()
            .map(|(n, v)| format!("    \"{}\": {}", esc(n), num(*v)))
            .collect();
        let _ = writeln!(out, "  \"headlines\": {{\n{}\n  }},", heads.join(",\n"));
        let notes: Vec<String> = self
            .notes
            .iter()
            .map(|n| format!("    \"{}\"", esc(n)))
            .collect();
        let _ = writeln!(out, "  \"notes\": [\n{}\n  ]", notes.join(",\n"));
        out.push_str("}\n");
        out
    }
}

/// Standard trial configuration (paper: ~100k packets/trial, many trials).
fn cfg(seed: u64) -> ToolConfig {
    if quick() {
        return ToolConfig {
            packets_per_trial: 2_000,
            trials: 7,
            frame_size: 128,
            seed,
        };
    }
    ToolConfig {
        packets_per_trial: 100_000,
        trials: 41,
        frame_size: 128,
        seed,
    }
}

fn throughput_series(
    machine: MachineProfile,
    label: &str,
    guarded: Option<(usize, u64)>, // (n regions, hit position)
    seed: u64,
) -> (Series, Summary) {
    let report = match guarded {
        None => {
            let mut s = setup::baseline_sender(machine);
            tool::run_throughput(&mut s, &cfg(seed)).expect("baseline trial")
        }
        Some((n, hit)) => {
            let mut s = setup::carat_sender(machine, setup::n_region_policy(n), hit);
            tool::run_throughput(&mut s, &cfg(seed)).expect("carat trial")
        }
    };
    let summary = report.summary;
    (
        Series {
            label: label.to_string(),
            points: cdf_points(&report.samples),
        },
        summary,
    )
}

/// Figure 3: CARAT KOP effect on packet launch throughput, slow R415,
/// two regions, 128-byte packets. Expected: minimal effect, median delta
/// <0.8% (~1,000 pps).
pub fn fig3() -> FigureData {
    let (base_s, base) = throughput_series(MachineProfile::r415(), "baseline", None, 3001);
    let (carat_s, carat) = throughput_series(MachineProfile::r415(), "carat", Some((2, 0)), 3001);
    let delta = base.median - carat.median;
    let rel = base.median_rel_change(&carat);
    FigureData {
        id: "fig3",
        title: "throughput CDF, carat vs baseline (R415, 128 B, 2 regions)".into(),
        axes: ("packets per second", "CDF"),
        series: vec![carat_s, base_s],
        headlines: vec![
            ("baseline_median_pps".into(), base.median),
            ("carat_median_pps".into(), carat.median),
            ("median_delta_pps".into(), delta),
            ("median_rel_change".into(), rel),
        ],
        notes: vec!["paper: median changes by ~1,000 pps, a relative change of <0.8%".into()],
    }
}

/// Figure 4: same experiment on the faster R350. Expected: "even smaller,
/// and, indeed, almost unmeasurable" — <0.1%.
pub fn fig4() -> FigureData {
    let (base_s, base) = throughput_series(MachineProfile::r350(), "baseline", None, 3002);
    let (carat_s, carat) = throughput_series(MachineProfile::r350(), "carat", Some((2, 0)), 3002);
    FigureData {
        id: "fig4",
        title: "throughput CDF, carat vs baseline (R350, 128 B, 2 regions)".into(),
        axes: ("packets per second", "CDF"),
        series: vec![carat_s, base_s],
        headlines: vec![
            ("baseline_median_pps".into(), base.median),
            ("carat_median_pps".into(), carat.median),
            ("median_rel_change".into(), base.median_rel_change(&carat)),
        ],
        notes: vec!["paper: relative change in the median is <0.1%".into()],
    }
}

/// Figure 5: throughput vs number of policy regions (R350, 128 B):
/// baseline, carat (2), carat16, carat64. Expected: effect exists but is
/// small; worst case (<1% median change).
pub fn fig5() -> FigureData {
    let machine = MachineProfile::r350;
    let (base_s, base) = throughput_series(machine(), "baseline", None, 3003);
    let mut series = Vec::new();
    let mut headlines = vec![("baseline_median_pps".into(), base.median)];
    for (label, n) in [("carat", 2usize), ("carat16", 16), ("carat64", 64)] {
        let (s, sum) = throughput_series(machine(), label, Some((n, setup::hit_pos_for(n))), 3003);
        headlines.push((format!("{label}_median_pps"), sum.median));
        headlines.push((
            format!("{label}_median_rel_change"),
            base.median_rel_change(&sum),
        ));
        series.push(s);
    }
    series.push(base_s);
    FigureData {
        id: "fig5",
        title: "throughput vs number of policy regions (R350, 128 B)".into(),
        axes: ("packets per second", "CDF"),
        series,
        headlines,
        notes: vec![
            "paper: n has a small but significant effect; even n=64 changes the median <1%".into(),
            "paper: for large n an O(log n) structure would ameliorate this (see ablation-ds)"
                .into(),
        ],
    }
}

/// Figure 6: mean slowdown vs packet size (64..1500 B, 2 regions, burst
/// tool path). Expected: slowdown concentrated on small packets, max
/// ~2.5%, approaching 1.0 at 1500 B.
pub fn fig6() -> FigureData {
    let sizes = [64u64, 128, 256, 512, 1024, 1500];
    let mut points = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        let seed = 3100 + i as u64;
        let c = ToolConfig {
            frame_size: size as usize,
            ..cfg(seed)
        };
        let mut base = setup::baseline_sender(setup::r350_burst());
        let rb = tool::run_throughput(&mut base, &c).expect("baseline");
        let mut carat = setup::carat_sender(setup::r350_burst(), setup::n_region_policy(2), 0);
        let rc = tool::run_throughput(&mut carat, &c).expect("carat");
        points.push((size as f64, kop_sim::slowdown(&rb.samples, &rc.samples)));
    }
    let max_slowdown = points.iter().map(|p| p.1).fold(f64::MIN, f64::max);
    let last = points.last().expect("nonempty").1;
    FigureData {
        id: "fig6",
        title: "mean throughput slowdown vs packet size (R350 burst, 2 regions)".into(),
        axes: ("packet size (bytes)", "slowdown (baseline/carat)"),
        series: vec![Series {
            label: "carat".into(),
            points,
        }],
        headlines: vec![
            ("max_slowdown".into(), max_slowdown),
            ("slowdown_at_1500".into(), last),
        ],
        notes: vec![
            "paper: impact largely independent of size; to the extent it varies (max ~2.5%) it is concentrated on small packets".into(),
            "uses the burst tool path (see EXPERIMENTS.md on the Fig.4/Fig.6 tension in the paper)".into(),
        ],
    }
}

/// Figure 7: `sendmsg` latency histograms (cycles), carat vs baseline
/// (R350, 128 B, 2 regions), outliers excluded as in the paper. Expected:
/// closely matched histograms; medians 686 (base) vs 694 (carat) with
/// outliers included — within cycle-counter noise.
pub fn fig7() -> FigureData {
    let machine = MachineProfile::r350();
    // Counted per-packet work (the paper measures the live system; we
    // probe the real driver model).
    let mut probe = setup::baseline_sender(machine.clone());
    let work = probe
        .probe_work(MacAddr::BROADCAST, EtherType::Experimental, 128)
        .expect("probe");

    let base_lat = machine.sendmsg_latency_cycles(&work);
    let carat_lat = base_lat + machine.packet_cycles_guard_overhead(&work, 1);

    let n = 40_000;
    let outlier_p = 0.0004; // ring-full descheduling
    let mut base_runner = TrialRunner::new(machine.clone(), 1, 777);
    let base_samples = base_runner.latency_samples(base_lat, n, outlier_p);
    let mut carat_runner = TrialRunner::new(machine.clone(), 1, 778);
    let carat_samples = carat_runner.latency_samples(carat_lat, n, outlier_p);

    // Medians including outliers (the paper quotes 694 vs 686 this way).
    let base_median = median(&base_samples);
    let carat_median = median(&carat_samples);

    // Histograms excluding outliers, like the figure.
    let keep = |v: &Vec<f64>| -> Vec<f64> { v.iter().copied().filter(|&c| c < 5_000.0).collect() };
    let base_clean = keep(&base_samples);
    let carat_clean = keep(&carat_samples);
    let to_series = |label: &str, samples: &[f64]| Series {
        label: label.into(),
        points: histogram(samples, 500.0, 1200.0, 28)
            .into_iter()
            .map(|(edge, count)| (edge, count as f64))
            .collect(),
    };
    FigureData {
        id: "fig7",
        title: "sendmsg latency histogram (R350, 128 B, 2 regions), outliers excluded".into(),
        axes: ("latency (cycles)", "count"),
        series: vec![to_series("base", &base_clean), to_series("carat", &carat_clean)],
        headlines: vec![
            ("base_median_cycles".into(), base_median),
            ("carat_median_cycles".into(), carat_median),
            ("median_delta_cycles".into(), carat_median - base_median),
            (
                "outliers_excluded".into(),
                (base_samples.len() - base_clean.len() + carat_samples.len() - carat_clean.len())
                    as f64,
            ),
        ],
        notes: vec![
            "paper: medians 694 (carat) vs 686 (baseline) cycles — within measurement noise".into(),
            "outliers (>10M cycles when the ring fills and the app is descheduled) excluded, as in the paper".into(),
        ],
    }
}

/// CLAIM-T (§4.1): applying CARAT KOP to an existing module is a
/// recompilation — no source changes — and every load/store gets exactly
/// one guard.
pub fn claims() -> FigureData {
    let key = CompilerKey::from_passphrase("operator-key", "carat-kop-dev");
    let mut headlines = Vec::new();
    let mut notes = Vec::new();
    for (name, module) in corpus::all() {
        let accesses = module.memory_access_count() as f64;
        let lines = module.text_lines() as f64;
        // Baseline and carat builds from the *same* input module.
        let base = compile_module(module.clone(), &CompileOptions::baseline(), &key)
            .expect("baseline build");
        let carat =
            compile_module(module, &CompileOptions::carat_kop(), &key).expect("carat build");
        headlines.push((format!("{name}_ir_lines"), lines));
        headlines.push((format!("{name}_mem_accesses"), accesses));
        headlines.push((
            format!("{name}_guards_injected"),
            carat.stats.get("guards_injected") as f64,
        ));
        assert_eq!(
            carat.stats.get("guards_injected") as f64,
            accesses,
            "one guard per access"
        );
        assert_eq!(base.stats.get("guards_injected"), 0);
        // Both validate and load under the same kernel.
        let mut kernel = Kernel::boot(
            std::sync::Arc::new(PolicyModule::new()),
            vec![key.clone()],
            KernelConfig::default(),
        );
        kernel.insmod(&carat.signed).expect("carat module loads");
        notes.push(format!(
            "{name}: same input IR for both builds (zero source changes); carat build signed {} and loaded",
            &carat.signed.content_hash()[..12]
        ));
    }
    // The scale claim, literally: a ~19 kLoC module transformed by
    // recompilation, timed.
    let big = corpus::synthetic_large(800);
    let big_lines = big.text_lines() as f64;
    let big_accesses = big.memory_access_count() as f64;
    let t0 = Instant::now();
    let big_out =
        compile_module(big, &CompileOptions::carat_kop(), &key).expect("large module compiles");
    let compile_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        big_out.stats.get("guards_injected") as f64,
        big_accesses,
        "one guard per access at scale"
    );
    headlines.push(("synthetic_19k_ir_lines".into(), big_lines));
    headlines.push(("synthetic_19k_mem_accesses".into(), big_accesses));
    headlines.push((
        "synthetic_19k_guards_injected".into(),
        big_out.stats.get("guards_injected") as f64,
    ));
    headlines.push(("synthetic_19k_compile_ms".into(), compile_ms));
    notes.push(format!(
        "scale: a {big_lines:.0}-line synthetic module (paper's e1000e: ~19,000 lines of C) transformed, attested, and signed in {compile_ms:.0} ms"
    ));
    notes.push(
        "paper: the 19 kLoC e1000e transformed with no source changes; ours: every corpus module"
            .into(),
    );
    FigureData {
        id: "claims",
        title: "engineering-effort claims (§4.1): zero-source-change transformation".into(),
        axes: ("", ""),
        series: vec![],
        headlines,
        notes,
    }
}

/// ANALYSIS: precision and wall-clock of the `kop-analysis` static
/// guard-coverage verifier over the KIR corpus — the "prove, don't
/// trust" cost the static-verification loader mode pays per insmod.
pub fn analysis() -> FigureData {
    let key = CompilerKey::from_passphrase("operator-key", "carat-kop-dev");
    let mut headlines = Vec::new();
    let mut notes = Vec::new();
    let mut points = Vec::new();

    let mut corpus_modules = corpus::all();
    corpus_modules.push(("synthetic-200", corpus::synthetic_large(200)));

    for (name, module) in corpus_modules {
        // The raw module must be *rejected* (that is the precision floor:
        // no unguarded access sneaks through) ...
        let raw_report = kop_analysis::verify_guard_coverage(&module);
        assert!(
            !raw_report.is_clean(),
            "{name}: unguarded module must be rejected"
        );
        // ... and both the paper build and the optimized build must be
        // *proven* (no false rejection of legitimate guard placements).
        for (cfg_name, opts) in [
            ("carat", CompileOptions::carat_kop()),
            ("opt", CompileOptions::optimized()),
        ] {
            let out = compile_module(module.clone(), &opts, &key).expect("compiles");
            let ir = out
                .signed
                .verify(std::slice::from_ref(&key))
                .expect("verifies");
            // Optimized builds carry an obligation ledger; proving them
            // means replaying it, exactly as the loader does at insmod.
            let ledger = kop_analysis::ObligationLedger::parse(&out.signed.attestation.obligations)
                .expect("attested ledger parses");
            let t0 = Instant::now();
            let report = kop_analysis::validate_module(&ir, &ledger);
            let us = t0.elapsed().as_secs_f64() * 1e6;
            assert!(report.is_clean(), "{name}/{cfg_name}: must prove clean");
            let checked = report.stat("accesses_checked") as f64;
            let proven = report.stat("accesses_proven") as f64;
            headlines.push((format!("{name}_{cfg_name}_accesses"), checked));
            headlines.push((
                format!("{name}_{cfg_name}_precision"),
                if checked > 0.0 { proven / checked } else { 1.0 },
            ));
            headlines.push((format!("{name}_{cfg_name}_verify_us"), us));
            points.push((checked, us));
        }
        // Provenance classification on the raw module: the rootkit corpus
        // member launders pointers through inttoptr and must be flagged.
        let prov = kop_analysis::provenance::analyze_provenance(&module, &[]);
        if name == "credscan" {
            let laundered = prov.stat("ptr_laundered") as f64;
            assert!(laundered > 0.0, "credscan must trip KA003");
            headlines.push(("credscan_laundered_accesses".into(), laundered));
            notes.push(
                "credscan reaches kernel memory via inttoptr: flagged KA003 before it ever runs"
                    .into(),
            );
        }
    }

    points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    FigureData {
        id: "analysis",
        title: "static guard-coverage verification: precision and cost over the KIR corpus".into(),
        axes: ("memory accesses in module", "verify wall-clock (us)"),
        series: vec![Series {
            label: "verify_us".into(),
            points,
        }],
        headlines,
        notes: {
            notes.push(
                "precision 1.0 = every access proven guarded; raw (unguarded) builds are rejected"
                    .into(),
            );
            notes.push(
                "this is the per-insmod cost of Verification::Static — proving instead of trusting the signature".into(),
            );
            notes
        },
    }
}

/// ABL-DS: guard-check latency across policy data structures × region
/// count — quantifying §3.1/§4.2's sketched alternatives. Wall-clock
/// measured on the host (relative ordering is the result).
pub fn ablation_ds() -> FigureData {
    let counts = [2usize, 8, 16, 64, 256, 1024];
    let lookups = 200_000u64;
    let mut series = Vec::new();
    let mut headlines = Vec::new();
    for kind in StoreKind::ALL {
        let mut points = Vec::new();
        for &n in &counts {
            let table_backed = matches!(
                kind,
                StoreKind::Table
                    | StoreKind::BloomFront
                    | StoreKind::CuckooFront
                    | StoreKind::Cached
            );
            if table_backed && n > 64 {
                continue; // fixed 64-entry backing table
            }
            let mut store = make_store(kind);
            for i in 0..n as u64 {
                store
                    .insert(
                        Region::new(
                            VAddr(0x10_0000 + i * 0x10_000),
                            Size(0x1000),
                            Protection::READ_WRITE,
                        )
                        .expect("region"),
                    )
                    .expect("insert");
            }
            // Skewed access pattern: 90% hit the last-inserted (worst-case
            // for the scan) region, 10% sweep the others.
            let hot = 0x10_0000 + (n as u64 - 1) * 0x10_000;
            let start = Instant::now();
            let mut acc = 0u64;
            for i in 0..lookups {
                let addr = if i % 10 != 0 {
                    hot + (i % 0x800)
                } else {
                    0x10_0000 + (i % n as u64) * 0x10_000 + (i % 0x800)
                };
                let r = store.lookup(VAddr(addr), Size(8), AccessFlags::RW);
                acc = acc.wrapping_add(matches!(r, kop_policy::store::Lookup::Permitted(_)) as u64);
            }
            let ns = start.elapsed().as_nanos() as f64 / lookups as f64;
            assert!(acc > 0, "lookups must hit");
            points.push((n as f64, ns));
        }
        if let Some(&(_, ns64)) = points.iter().find(|(n, _)| *n == 64.0) {
            headlines.push((format!("{}_ns_at_64", kind.name()), ns64));
        }
        series.push(Series {
            label: kind.name().to_string(),
            points,
        });
    }
    FigureData {
        id: "ablation-ds",
        title: "policy-structure ablation: ns/guard-check vs region count (host wall-clock)".into(),
        axes: ("regions", "ns per lookup"),
        series,
        headlines,
        notes: vec![
            "paper §4.2: linear scan is fine to ~64 regions; beyond that a logarithmic or popularity structure should win".into(),
            "expected ordering at large n: cached/splay (hot hits) < sorted/interval (log n) < table (linear)".into(),
        ],
    }
}

/// ABL-OPT: what the CARAT CAKE-style guard optimizations the paper
/// deliberately omits would buy — static and dynamic guard counts for the
/// unoptimized vs optimized pipelines.
pub fn ablation_opt() -> FigureData {
    use kop_interp::Interp;
    let key = CompilerKey::from_passphrase("operator-key", "carat-kop-dev");
    let module = corpus::parse(corpus::OPT_WORKLOAD_IR);

    let run = |opts: &CompileOptions| -> (f64, f64, u64) {
        let out = compile_module(module.clone(), opts, &key).expect("compiles");
        let static_guards = out.signed.attestation.guard_count as f64;
        let policy = std::sync::Arc::new(PolicyModule::new());
        policy.set_default_action(DefaultAction::Allow);
        let mut kernel = Kernel::boot(policy, vec![key.clone()], KernelConfig::default());
        kernel.insmod(&out.signed).expect("loads");
        let buf = kernel.kmalloc(4096).expect("buf");
        let mut interp = Interp::new(&mut kernel).expect("interp");
        let r = interp
            .call("opt-workload", "run", &[buf.raw(), 256])
            .expect("runs")
            .expect("returns");
        (static_guards, interp.stats().guards as f64, r)
    };

    let (static_plain, dyn_plain, r_plain) = run(&CompileOptions::carat_kop());
    let (static_opt, dyn_opt, r_opt) = run(&CompileOptions::optimized());
    assert_eq!(r_plain, r_opt, "optimizations must preserve semantics");

    FigureData {
        id: "ablation-opt",
        title: "guard-optimization ablation: CARAT KOP (unoptimized) vs CARAT CAKE-style passes"
            .into(),
        axes: ("", ""),
        series: vec![
            Series {
                label: "static_guards".into(),
                points: vec![(0.0, static_plain), (1.0, static_opt)],
            },
            Series {
                label: "dynamic_guards".into(),
                points: vec![(0.0, dyn_plain), (1.0, dyn_opt)],
            },
        ],
        headlines: vec![
            ("static_guards_unopt".into(), static_plain),
            ("static_guards_opt".into(), static_opt),
            ("dynamic_guards_unopt".into(), dyn_plain),
            ("dynamic_guards_opt".into(), dyn_opt),
            ("dynamic_reduction".into(), 1.0 - dyn_opt / dyn_plain),
        ],
        notes: vec![
            "x=0: paper configuration (every access guarded); x=1: cross-block redundant-elim + range coalescing".into(),
            "the paper argues the unoptimized overhead is already <1%, so these passes are optional — this quantifies what they would save anyway".into(),
        ],
    }
}

/// Outcome of one fault-storm run: what got through and how long the
/// stalls were. All units are DMA tick-rounds — fully deterministic.
struct ResilienceRun {
    delivered: u64,
    submitted: u64,
    ticks: u64,
    stall_lengths: Vec<f64>,
    watchdog_fires: u64,
    resets: u64,
}

/// Drive `frames` transmissions through a (possibly faulty) driver with
/// the full recovery stack engaged: bounded submit retries on `RingFull`,
/// a periodic watchdog (every 8 frames, like the real driver's timer),
/// and adapter reset on persistent errors. Recovery latency is measured
/// as the length of each stall — a maximal run of tick-rounds where
/// descriptors were pending but nothing reached the wire.
fn resilience_run<M: MemSpace>(drv: &mut E1000Driver<M>, frames: u64) -> ResilienceRun {
    const DST: [u8; 6] = [0x52, 0x54, 0x00, 0xfa, 0x11, 0x7e];
    let payload = [0xabu8; 114]; // 128 B frames, as in the throughput figures
    let mut sink = CountSink::default();
    let mut ticks = 0u64;
    let mut submitted = 0u64;
    let mut stall = 0u64;
    let mut stalls = Vec::new();

    let account = |got: u64, pending: u64, stall: &mut u64, stalls: &mut Vec<f64>| {
        if got == 0 && pending > 0 {
            *stall += 1;
        } else if *stall > 0 {
            stalls.push(*stall as f64);
            *stall = 0;
        }
    };

    for i in 0..frames {
        // Submit with bounded retry; the watchdog breaks TX hangs.
        for _attempt in 0..8 {
            match drv.xmit(DST, 0x0800, &payload) {
                Ok(()) => {
                    submitted += 1;
                    break;
                }
                Err(DriverError::RingFull) => {
                    ticks += 1;
                    let got = drv.mem().tx_tick(&mut sink);
                    account(got, drv.tx_pending(), &mut stall, &mut stalls);
                    let _ = drv.clean_tx();
                    let _ = drv.watchdog();
                }
                Err(_) => {
                    // Device-level failure (e.g. link reported down): full
                    // adapter reset, then retry the frame.
                    let _ = drv.reset();
                }
            }
        }
        ticks += 1;
        let got = drv.mem().tx_tick(&mut sink);
        account(got, drv.tx_pending(), &mut stall, &mut stalls);
        if i % 8 == 0 {
            let _ = drv.watchdog();
        }
    }
    // Drain what is still queued (bounded: a hung device stops mattering
    // once the budget is spent).
    for _ in 0..1024 {
        if drv.tx_pending() == 0 {
            break;
        }
        ticks += 1;
        let got = drv.mem().tx_tick(&mut sink);
        account(got, drv.tx_pending(), &mut stall, &mut stalls);
        let _ = drv.clean_tx();
        let _ = drv.watchdog();
    }
    if stall > 0 {
        stalls.push(stall as f64);
    }
    ResilienceRun {
        delivered: sink.frames,
        submitted,
        ticks,
        stall_lengths: stalls,
        watchdog_fires: drv.stats().watchdog_fires,
        resets: drv.stats().resets,
    }
}

/// RESILIENCE: survive-the-violation. Injects TX hangs and wire-side
/// frame drops at increasing rates (seeded, deterministic) into the
/// e1000e device seam and measures what the recovery stack (watchdog,
/// adapter reset, bounded retry) still delivers — baseline vs carat
/// (two-region policy, R350 vehicle). Returns two figures: delivered
/// fraction vs fault rate, and the recovery-latency CDF at the highest
/// injected rate.
pub fn resilience() -> Vec<FigureData> {
    let (rates, frames): (&[f64], u64) = if quick() {
        (&[0.0, 0.02, 0.1], 400)
    } else {
        (&[0.0, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1], 4_000)
    };
    let cdf_rate = *rates.last().expect("nonempty rates");

    // Two fault shapes per rate: wire-side drops as a Bernoulli per tick
    // (transient loss), and one sustained TX hang whose length scales
    // with the rate (640 ticks × rate) — the shape the watchdog exists
    // for: single-tick hiccups self-heal, a stuck TDH needs a reset.
    let plan_for = |rate: f64, seed: u64| {
        let plan = FaultPlan::new(seed);
        if rate == 0.0 {
            return plan;
        }
        plan.with_dma_drop(Trigger::Probability(rate))
            .with_tx_hang(Trigger::Window {
                start: 64,
                len: (rate * 640.0).round() as u64,
            })
    };

    let mut base_points = Vec::new();
    let mut carat_points = Vec::new();
    let mut headlines = Vec::new();
    let mut cdf_series = Vec::new();

    for (i, &rate) in rates.iter().enumerate() {
        let seed = 4001 + i as u64;

        // Baseline: faults injected under the unguarded driver.
        let mem = kop_faultline::FaultyMem::new(
            kop_e1000e::DirectMem::with_defaults(kop_e1000e::E1000Device::default()),
            plan_for(rate, seed),
        );
        let mut drv = E1000Driver::probe(mem).expect("probe baseline");
        drv.up().expect("up baseline");
        let base = resilience_run(&mut drv, frames);

        // Carat: the identical fault schedule (same seed) injected above
        // the guard layer; guards check every driver access throughout.
        let mem = kop_faultline::FaultyMem::new(
            kop_e1000e::GuardedMem::new(
                kop_e1000e::DirectMem::with_defaults(kop_e1000e::E1000Device::default()),
                setup::two_region_policy(),
            ),
            plan_for(rate, seed),
        );
        let mut drv = E1000Driver::probe(mem).expect("probe carat");
        drv.up().expect("up carat");
        let carat = resilience_run(&mut drv, frames);

        let frac = |r: &ResilienceRun| r.delivered as f64 / frames as f64;
        base_points.push((rate, frac(&base)));
        carat_points.push((rate, frac(&carat)));
        let pct = (rate * 1000.0).round() as u64; // per-mille label, stable
        headlines.push((format!("base_delivered_frac_r{pct}"), frac(&base)));
        headlines.push((format!("carat_delivered_frac_r{pct}"), frac(&carat)));
        headlines.push((
            format!("carat_watchdog_fires_r{pct}"),
            carat.watchdog_fires as f64,
        ));
        headlines.push((format!("carat_resets_r{pct}"), carat.resets as f64));
        if rate == cdf_rate {
            headlines.push(("base_submitted_at_max_rate".into(), base.submitted as f64));
            headlines.push(("carat_ticks_at_max_rate".into(), carat.ticks as f64));
            headlines.push((
                "carat_recovery_p95_ticks".into(),
                kop_sim::percentile(&carat.stall_lengths, 95.0),
            ));
            headlines.push((
                "carat_recovery_max_ticks".into(),
                kop_sim::percentile(&carat.stall_lengths, 100.0),
            ));
            for (label, run) in [("base", &base), ("carat", &carat)] {
                cdf_series.push(Series {
                    label: label.to_string(),
                    points: cdf_points(&run.stall_lengths),
                });
            }
        }
    }

    let throughput = FigureData {
        id: "resilience",
        title: "delivered fraction vs injected device-fault rate (R350, 128 B, 2 regions)".into(),
        axes: ("fault rate (per DMA tick)", "delivered fraction"),
        series: vec![
            Series {
                label: "carat".into(),
                points: carat_points,
            },
            Series {
                label: "baseline".into(),
                points: base_points,
            },
        ],
        headlines,
        notes: vec![
            "faults: TX hang (TDH stuck) + wire-side frame drop, each Bernoulli per tick at the x-axis rate".into(),
            "recovery stack: stuck-TDH watchdog, full adapter reset with ring re-init, bounded retry".into(),
            "expected: guarded and baseline degrade identically — guards do not impede recovery".into(),
        ],
    };
    let latency = FigureData {
        id: "resilience-latency",
        title: format!(
            "recovery-latency CDF at fault rate {cdf_rate} (stall length in DMA tick-rounds)"
        ),
        axes: ("stall length (ticks)", "CDF"),
        series: cdf_series,
        headlines: vec![],
        notes: vec![
            "a stall is a maximal run of ticks with descriptors pending and nothing delivered"
                .into(),
            "the watchdog bounds stalls: it fires after two stuck observations and resets the adapter".into(),
        ],
    };
    vec![throughput, latency]
}

/// TRACE: what the kop-trace subsystem costs on the guarded TX path —
/// host wall-clock ns/packet for three configurations of the same
/// guarded driver (two-region policy, 128 B frames):
///
/// * `untraced`  — `GuardedMem::new`, no tracer attached at all;
/// * `tracing_off` — a tracer is wired in but disabled (the shipping
///   configuration: one relaxed atomic load per guard);
/// * `tracing_on` — full ring events + per-site profiling.
///
/// Plus the per-site breakdown the enabled run collects (which arena
/// region the TX path's guards actually hit), reconciled against the
/// driver's own guard-call counter.
pub fn trace() -> FigureData {
    use kop_trace::Tracer;

    let (frames, repeats) = if quick() { (400u64, 5) } else { (4_000u64, 9) };
    let dst = [0xffu8; 6];
    let payload = [0u8; 114]; // 128 B on the wire with the header

    // One timed pass over a fresh driver; returns (ns/packet, tracer).
    let run_once = |tracer: Option<(std::sync::Arc<Tracer>, bool)>| -> (f64, u64) {
        let policy = setup::two_region_policy();
        let mem = match &tracer {
            Some((t, _)) => kop_e1000e::GuardedMem::with_tracer(
                kop_e1000e::DirectMem::with_defaults(kop_e1000e::E1000Device::default()),
                policy,
                std::sync::Arc::clone(t),
            ),
            None => kop_e1000e::GuardedMem::new(
                kop_e1000e::DirectMem::with_defaults(kop_e1000e::E1000Device::default()),
                policy,
            ),
        };
        let mut drv = E1000Driver::probe(mem).expect("probe");
        drv.up().expect("up");
        // Enable only now: the profiled window is exactly the measured
        // loop, so per-site hits reconcile with the guard-call delta.
        if let Some((t, enabled)) = &tracer {
            t.set_enabled(*enabled);
        }
        let mut sink = CountSink::default();
        let before = drv.counts();
        let start = Instant::now();
        for _ in 0..frames {
            drv.xmit_and_flush(dst, 0x88b5, &payload, &mut sink)
                .expect("xmit");
        }
        let ns = start.elapsed().as_nanos() as f64 / frames as f64;
        (ns, drv.counts().since(&before).guard_calls)
    };

    // Interleave the three configurations within each repeat round and
    // keep the minimum — the standard host-wall-clock discipline the
    // ablation figures use (minima are robust to scheduler noise).
    let mut untraced_ns = f64::MAX;
    let mut off_ns = f64::MAX;
    let mut on_ns = f64::MAX;
    let mut guard_calls = 0u64;
    let mut on_tracer = Tracer::new();
    for _ in 0..repeats {
        untraced_ns = untraced_ns.min(run_once(None).0);
        off_ns = off_ns.min(run_once(Some((Tracer::new(), false))).0);
        // A fresh tracer per repeat: the kept profile belongs to exactly
        // one measured pass, so hits reconcile with that pass's guards.
        let t = Tracer::with_capacity(kop_trace::DEFAULT_CAPACITY);
        let (ns, calls) = run_once(Some((std::sync::Arc::clone(&t), true)));
        if ns < on_ns {
            on_ns = ns;
            on_tracer = t;
            guard_calls = calls;
        }
    }

    let total_checks = on_tracer.total_checks();
    assert_eq!(
        total_checks, guard_calls,
        "per-site profile totals must reconcile with the driver's guard counter"
    );

    // Per-site breakdown from the kept enabled run.
    let mut site_points = Vec::new();
    let mut site_notes = Vec::new();
    for (i, (meta, prof)) in on_tracer.profile_snapshot().into_iter().enumerate() {
        site_points.push((i as f64, prof.hits as f64));
        site_notes.push(format!(
            "site {} = {}/{}: hits {} ({:.1}%), mean {:.0} ns",
            i,
            meta.module,
            meta.label,
            prof.hits,
            100.0 * prof.hits as f64 / total_checks.max(1) as f64,
            prof.mean_ns()
        ));
    }

    let off_overhead = off_ns / untraced_ns - 1.0;
    let on_overhead = on_ns / untraced_ns - 1.0;
    assert!(
        off_overhead < 0.02,
        "disabled tracing must cost <2% on the guarded TX path (measured {:.2}%)",
        off_overhead * 100.0
    );
    let mut notes = vec![
        "tracing_off is the shipping configuration: the only added work per guard is one relaxed atomic load".into(),
        "expected: tracing_off within noise of untraced (<2%); tracing_on pays for ring events + histograms".into(),
    ];
    notes.extend(site_notes);

    FigureData {
        id: "trace",
        title: "kop-trace overhead on the guarded TX path (host wall-clock) + per-site breakdown"
            .into(),
        axes: ("site index", "guard hits"),
        series: vec![
            Series {
                label: "site_hits".into(),
                points: site_points,
            },
            Series {
                label: "ns_per_packet".into(),
                points: vec![(0.0, untraced_ns), (1.0, off_ns), (2.0, on_ns)],
            },
        ],
        headlines: vec![
            ("untraced_ns_pkt".into(), untraced_ns),
            ("tracing_off_ns_pkt".into(), off_ns),
            ("tracing_on_ns_pkt".into(), on_ns),
            ("tracing_off_overhead_frac".into(), off_overhead),
            ("tracing_on_overhead_frac".into(), on_overhead),
            ("profiled_checks".into(), total_checks as f64),
            ("driver_guard_calls".into(), guard_calls as f64),
        ],
        notes,
    }
}

/// EXEC: execution-engine ablation (`reproduce exec`). The e1000e TX
/// path is driven *through the module interpreter* — `@xmit` from the
/// mini-e1000e KIR corpus module — under both engines: the tree walker
/// and the flat bytecode the loader compiles once at insmod (`kop-vm`),
/// for the guarded (carat_kop) and unguarded (baseline) builds.
///
/// Timed passes use the min-of-repeats wall-clock discipline the other
/// host figures use. A separate traced pass proves the engines
/// equivalent, asserted on every run: identical `ExecStats` (fuel
/// accounting included), identical dynamic guard counts, *exact*
/// per-site trace attribution, and byte-identical memory effects — TX
/// ring, frame buffer, `@stats` counters, and the TDT doorbell cell.
/// The ≥3x bytecode speedup claim is asserted in quick mode (release
/// CI smoke); full runs report it as a headline.
pub fn exec() -> FigureData {
    use kop_interp::{Engine, ExecStats, Interp};

    let key = CompilerKey::from_passphrase("operator-key", "carat-kop-dev");
    let (packets, repeats) = if quick() {
        (2_000u64, 3)
    } else {
        (20_000u64, 7)
    };

    const RING_BYTES: u64 = 256 * 16; // 256 descriptors x {i64,i32,i32}
    const FRAME_BYTES: u64 = 64;
    const MMIO_BYTES: u64 = 0x4000; // covers the TDT doorbell at +0x3818
    const TDT_OFF: u64 = 0x3818;
    const STATS_BYTES: usize = 24;
    const LEN: u64 = 114; // 128 B on the wire with the header

    /// Everything one pass can observably produce.
    struct RunOut {
        ns_pkt: f64,
        stats: ExecStats,
        fused: u64,
        ring: Vec<u8>,
        frame: Vec<u8>,
        stats_glob: Vec<u8>,
        tdt: u64,
        profiled: Vec<(String, String, u64)>,
        profiled_checks: u64,
    }

    let run = |opts: &CompileOptions, engine: Engine, packets: u64, traced: bool| -> RunOut {
        let module = corpus::parse(corpus::MINI_E1000E_IR);
        let out = compile_module(module, opts, &key).expect("compiles");
        let policy = setup::two_region_policy();
        let mut kernel = Kernel::boot(policy, vec![key.clone()], KernelConfig::default());
        kernel.insmod(&out.signed).expect("loads");
        let image = std::sync::Arc::clone(kernel.module("mini-e1000e").expect("loaded").image());
        let fused = image
            .compiled
            .as_ref()
            .map(|c| c.fused_guard_count() as u64)
            .unwrap_or(0);
        let stats_addr = image
            .globals
            .get("stats")
            .copied()
            .expect("@stats laid out");
        let ring = kernel.kmalloc(RING_BYTES).expect("ring");
        let frame = kernel.kmalloc(FRAME_BYTES).expect("frame");
        // A heap block stands in for the BAR: the doorbell store lands at
        // +0x3818 and reads back for the byte-identity check.
        let mmio = kernel.kmalloc(MMIO_BYTES).expect("mmio window");
        if traced {
            kernel.tracer().set_enabled(true);
        }
        let (ns_pkt, stats) = {
            let mut interp = Interp::new(&mut kernel).expect("interp");
            interp.set_engine(engine);
            let start = Instant::now();
            for p in 0..packets {
                // head == slot: clean_tx finds nothing to reclaim, the
                // hot path is header + descriptor + stats + doorbell.
                let slot = p & 255;
                interp
                    .call(
                        "mini-e1000e",
                        "xmit",
                        &[ring.raw(), frame.raw(), mmio.raw(), slot, LEN, slot],
                    )
                    .expect("xmit");
            }
            (
                start.elapsed().as_nanos() as f64 / packets as f64,
                interp.stats(),
            )
        };
        let mut ring_bytes = vec![0u8; RING_BYTES as usize];
        kernel.mem.read_bytes(ring, &mut ring_bytes).expect("ring");
        let mut frame_bytes = vec![0u8; FRAME_BYTES as usize];
        kernel
            .mem
            .read_bytes(frame, &mut frame_bytes)
            .expect("frame");
        let mut stats_glob = vec![0u8; STATS_BYTES];
        kernel
            .mem
            .read_bytes(stats_addr, &mut stats_glob)
            .expect("@stats");
        let tdt = kernel
            .mem
            .read_uint(kop_core::VAddr(mmio.raw() + TDT_OFF), Size(4))
            .expect("tdt");
        let (profiled, profiled_checks) = if traced {
            let t = kernel.tracer();
            (
                t.profile_snapshot()
                    .into_iter()
                    .map(|(meta, prof)| (meta.module.clone(), meta.label.clone(), prof.hits))
                    .collect(),
                t.total_checks(),
            )
        } else {
            (Vec::new(), 0)
        };
        RunOut {
            ns_pkt,
            stats,
            fused,
            ring: ring_bytes,
            frame: frame_bytes,
            stats_glob,
            tdt,
            profiled,
            profiled_checks,
        }
    };

    let carat = CompileOptions::carat_kop();
    let baseline = CompileOptions::baseline();

    // Timed passes: interleave all four configurations within each repeat
    // round and keep the fastest (minima are robust to scheduler noise).
    let mut best: [Option<RunOut>; 4] = [None, None, None, None];
    for _ in 0..repeats {
        for (i, (opts, engine)) in [
            (&carat, Engine::Tree),
            (&carat, Engine::Bytecode),
            (&baseline, Engine::Tree),
            (&baseline, Engine::Bytecode),
        ]
        .into_iter()
        .enumerate()
        {
            let r = run(opts, engine, packets, false);
            if best[i].as_ref().is_none_or(|b| r.ns_pkt < b.ns_pkt) {
                best[i] = Some(r);
            }
        }
    }
    let [gt, gb, bt, bb] = best.map(|o| o.expect("all configurations ran"));

    // Engine equivalence on the timed runs: the deterministic outputs of
    // the fastest passes must be identical per build flavour.
    assert_eq!(gt.stats, gb.stats, "guarded ExecStats must match");
    assert_eq!(bt.stats, bb.stats, "baseline ExecStats must match");
    for (a, b, what) in [(&gt, &gb, "guarded"), (&bt, &bb, "baseline")] {
        assert_eq!(a.ring, b.ring, "{what}: TX ring bytes");
        assert_eq!(a.frame, b.frame, "{what}: frame buffer bytes");
        assert_eq!(a.stats_glob, b.stats_glob, "{what}: @stats bytes");
        assert_eq!(a.tdt, b.tdt, "{what}: TDT doorbell cell");
    }
    assert_eq!(bt.stats.guards, 0, "baseline build executes no guards");
    assert!(gt.stats.guards > 0 && gt.stats.guards % packets == 0);
    let guards_per_packet = gt.stats.guards / packets;
    assert!(
        gb.fused > 0,
        "the guarded bytecode must contain fused guard-access superinstructions"
    );

    // Traced correctness pass (untimed, smaller): per-site attribution
    // must reconcile exactly across engines and with the guard counter.
    let tp = if quick() { 512 } else { 2_048 };
    let t_tree = run(&carat, Engine::Tree, tp, true);
    let t_vm = run(&carat, Engine::Bytecode, tp, true);
    assert_eq!(t_tree.stats, t_vm.stats, "traced ExecStats must match");
    assert_eq!(
        t_tree.profiled, t_vm.profiled,
        "per-site hit attribution must match exactly across engines"
    );
    assert!(!t_tree.profiled.is_empty(), "guard sites were profiled");
    for t in [&t_tree, &t_vm] {
        assert_eq!(
            t.profiled_checks, t.stats.guards,
            "per-site profile totals must reconcile with the interp guard counter"
        );
    }

    let speedup_guarded = gt.ns_pkt / gb.ns_pkt;
    let speedup_baseline = bt.ns_pkt / bb.ns_pkt;
    if quick() {
        assert!(
            speedup_guarded >= 3.0,
            "bytecode must be >=3x faster than the tree on the guarded TX path \
             (measured {speedup_guarded:.2}x)"
        );
    }

    let mut notes = vec![
        "x=0 tree/guarded, x=1 bytecode/guarded, x=2 tree/baseline, x=3 bytecode/baseline".into(),
        "engines asserted equivalent: ExecStats, guard counts, per-site attribution, and ring/frame/@stats/TDT bytes all identical".into(),
        format!(
            "bytecode lowered at insmod: {} fused guard-access superinstructions on the guarded build",
            gb.fused
        ),
    ];
    for (module, label, hits) in &t_tree.profiled {
        notes.push(format!("site {module}/{label}: hits {hits} (both engines)"));
    }

    FigureData {
        id: "exec",
        title: "execution-engine ablation: tree interpreter vs insmod-compiled bytecode on the interpreter-driven e1000e TX path".into(),
        axes: ("configuration", "ns per packet"),
        series: vec![Series {
            label: "ns_per_packet".into(),
            points: vec![
                (0.0, gt.ns_pkt),
                (1.0, gb.ns_pkt),
                (2.0, bt.ns_pkt),
                (3.0, bb.ns_pkt),
            ],
        }],
        headlines: vec![
            ("tree_guarded_ns_pkt".into(), gt.ns_pkt),
            ("bytecode_guarded_ns_pkt".into(), gb.ns_pkt),
            ("tree_baseline_ns_pkt".into(), bt.ns_pkt),
            ("bytecode_baseline_ns_pkt".into(), bb.ns_pkt),
            ("bytecode_speedup_guarded".into(), speedup_guarded),
            ("bytecode_speedup_baseline".into(), speedup_baseline),
            ("guards_per_packet".into(), guards_per_packet as f64),
            ("dynamic_guards".into(), gt.stats.guards as f64),
            ("fused_superinstructions".into(), gb.fused as f64),
            ("profiled_checks".into(), t_tree.profiled_checks as f64),
            ("profiled_sites".into(), t_tree.profiled.len() as f64),
        ],
        notes,
    }
}

/// JIT: the profile-directed superblock trace tier (`reproduce jit`).
/// Closes the loop between kop-trace and kop-vm: per-site hit/latency
/// profiles select hot guard sites, the kernel re-lowers their
/// containing functions with the granting region's `[lo, hi)` bound
/// inlined as immediate compares (each baked bound re-derived by the
/// independent translation validator before install), and the promoted
/// dispatch runs the specialized copies until a policy publish drops the
/// tier. The same tier runs on the native forwarding datapath as a
/// per-thread [`kop_policy::HotPolicy`].
///
/// Asserted, not just measured: (a) the promoted tier at least halves
/// the guard *overhead* (guarded minus baseline ns/packet) over the
/// general path on both the interpreter TX loop and the native
/// forwarding datapath; (b) general and promoted runs are observably
/// identical — ExecStats and ring/frame/@stats/TDT bytes on the TX
/// loop, ForwardReports on the datapath; (c) steady state answers every
/// interpreter guard inline with zero deopts, and fast admits still
/// reconcile (`policy.checks` == guard count); (d) enabling the tracer
/// forces the general path and per-site attribution reconciles exactly;
/// (e) a policy publish drops the tier atomically — zero stale admits —
/// and lazy re-promotion restores it at the new generation; (f) the
/// promotion-warmed guard TLB preseeds without phantom checks.
pub fn jit() -> FigureData {
    use kop_e1000e::{DirectMem, E1000Device, GuardedMem};
    use kop_interp::{Engine, ExecStats, Interp};
    use kop_policy::HotSite;
    use std::sync::Arc;

    let key = CompilerKey::from_passphrase("operator-key", "carat-kop-dev");
    let (packets, repeats) = if quick() {
        (2_000u64, 3)
    } else {
        (20_000u64, 7)
    };
    let profile_pkts = 256u64;
    // Timing asserts only in the standalone quick smoke run: under
    // `cargo test` sibling tests pollute the scheduler (and debug builds
    // distort the engine ratios); correctness is asserted everywhere.
    let assert_timing = quick();

    const RING_BYTES: u64 = 256 * 16;
    const FRAME_BYTES: u64 = 64;
    const MMIO_BYTES: u64 = 0x4000;
    const TDT_OFF: u64 = 0x3818;
    const STATS_BYTES: usize = 24;
    const LEN: u64 = 114;

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Mode {
        Baseline,
        General,
        Promoted,
    }

    struct RunOut {
        ns_pkt: f64,
        stats: ExecStats,
        promoted_ops: u64,
        inline_admits: u64,
        inline_deopts: u64,
        ring: Vec<u8>,
        frame: Vec<u8>,
        stats_glob: Vec<u8>,
        tdt: u64,
    }

    let run = |mode: Mode, packets: u64| -> RunOut {
        let opts = match mode {
            Mode::Baseline => CompileOptions::baseline(),
            _ => CompileOptions::carat_kop(),
        };
        let out =
            compile_module(corpus::parse(corpus::MINI_E1000E_IR), &opts, &key).expect("compiles");
        let mut kernel = Kernel::boot(
            setup::two_region_policy(),
            vec![key.clone()],
            KernelConfig::default(),
        );
        kernel.insmod(&out.signed).expect("loads");
        let image = Arc::clone(kernel.module("mini-e1000e").expect("loaded").image());
        let stats_addr = image
            .globals
            .get("stats")
            .copied()
            .expect("@stats laid out");
        let ring = kernel.kmalloc(RING_BYTES).expect("ring");
        let frame = kernel.kmalloc(FRAME_BYTES).expect("frame");
        let mmio = kernel.kmalloc(MMIO_BYTES).expect("mmio window");

        // Profile window — identical in every mode so the deterministic
        // outputs stay comparable. The tracer builds the per-site
        // envelopes promotion feeds on (a no-op for the baseline build,
        // which has no guard sites).
        kernel.tracer().set_enabled(true);
        {
            let mut interp = Interp::new(&mut kernel).expect("interp");
            interp.set_engine(Engine::Bytecode);
            for p in 0..profile_pkts {
                let slot = p & 255;
                interp
                    .call(
                        "mini-e1000e",
                        "xmit",
                        &[ring.raw(), frame.raw(), mmio.raw(), slot, LEN, slot],
                    )
                    .expect("profile xmit");
            }
        }
        kernel.tracer().set_enabled(false);

        let mut promoted_ops = 0u64;
        if mode == Mode::Promoted {
            promoted_ops = kernel
                .promote_hot("mini-e1000e", 1)
                .expect("promotion passes its own validation") as u64;
            assert!(promoted_ops > 0, "hot guard sites were promoted");
            let compiled = image.compiled.as_ref().expect("bytecode image");
            assert_ne!(compiled.promoted_generation(), 0, "tier installed");
        }

        let engine = if mode == Mode::Promoted {
            Engine::Promoted
        } else {
            Engine::Bytecode
        };
        let (ns_pkt, stats, inline_admits, inline_deopts) = {
            let mut interp = Interp::new(&mut kernel).expect("interp");
            interp.set_engine(engine);
            let start = Instant::now();
            for p in 0..packets {
                let slot = p & 255;
                interp
                    .call(
                        "mini-e1000e",
                        "xmit",
                        &[ring.raw(), frame.raw(), mmio.raw(), slot, LEN, slot],
                    )
                    .expect("xmit");
            }
            (
                start.elapsed().as_nanos() as f64 / packets as f64,
                interp.stats(),
                interp.inline_admits(),
                interp.inline_deopts(),
            )
        };
        let mut ring_bytes = vec![0u8; RING_BYTES as usize];
        kernel.mem.read_bytes(ring, &mut ring_bytes).expect("ring");
        let mut frame_bytes = vec![0u8; FRAME_BYTES as usize];
        kernel
            .mem
            .read_bytes(frame, &mut frame_bytes)
            .expect("frame");
        let mut stats_glob = vec![0u8; STATS_BYTES];
        kernel
            .mem
            .read_bytes(stats_addr, &mut stats_glob)
            .expect("@stats");
        let tdt = kernel
            .mem
            .read_uint(kop_core::VAddr(mmio.raw() + TDT_OFF), Size(4))
            .expect("tdt");
        RunOut {
            ns_pkt,
            stats,
            promoted_ops,
            inline_admits,
            inline_deopts,
            ring: ring_bytes,
            frame: frame_bytes,
            stats_glob,
            tdt,
        }
    };

    // Timed passes: interleave the three configurations within each
    // repeat round and keep the fastest (minima are robust to noise).
    let mut best: [Option<RunOut>; 3] = [None, None, None];
    for _ in 0..repeats {
        for (i, mode) in [Mode::Baseline, Mode::General, Mode::Promoted]
            .into_iter()
            .enumerate()
        {
            let r = run(mode, packets);
            if best[i].as_ref().is_none_or(|b| r.ns_pkt < b.ns_pkt) {
                best[i] = Some(r);
            }
        }
    }
    let [base, general, promoted] = best.map(|o| o.expect("all configurations ran"));

    // Observable identity: the tier changed guard *mechanics*, never the
    // module's behaviour.
    assert_eq!(
        general.stats, promoted.stats,
        "general and promoted ExecStats must match"
    );
    assert_eq!(general.ring, promoted.ring, "TX ring bytes");
    assert_eq!(general.frame, promoted.frame, "frame buffer bytes");
    assert_eq!(general.stats_glob, promoted.stats_glob, "@stats bytes");
    assert_eq!(general.tdt, promoted.tdt, "TDT doorbell cell");
    assert_eq!(base.stats.guards, 0, "baseline build executes no guards");
    assert!(general.stats.guards > 0 && general.stats.guards % packets == 0);

    // Steady state: every guard answered inline, zero deopts.
    assert_eq!(
        promoted.inline_admits, promoted.stats.guards,
        "every steady-state guard is answered by the inline tier"
    );
    assert_eq!(promoted.inline_deopts, 0, "zero steady-state deopts");
    assert_eq!(general.inline_admits, 0);

    // The headline claim: the tier at least halves the guard overhead.
    let general_over = (general.ns_pkt - base.ns_pkt).max(0.0);
    let promoted_over = (promoted.ns_pkt - base.ns_pkt).max(0.0);
    if assert_timing {
        assert!(
            promoted_over <= general_over / 2.0,
            "promoted tier must at least halve the TX guard overhead \
             (baseline {:.1} ns/pkt, general {:.1}, promoted {:.1}: overhead {:.1} -> {:.1})",
            base.ns_pkt,
            general.ns_pkt,
            promoted.ns_pkt,
            general_over,
            promoted_over
        );
    }
    // Floor the residual at 1 ns so a promoted run inside noise of the
    // baseline reports a large-but-finite reduction.
    let vm_reduction = general_over / promoted_over.max(1.0);

    // Traced correctness pass: with the tracer enabled the promoted
    // dispatch must fall back to the general bytecode, so per-site
    // attribution reconciles exactly.
    let (traced_checks, traced_guards) = {
        let tp = if quick() { 512 } else { 2_048 };
        let out = compile_module(
            corpus::parse(corpus::MINI_E1000E_IR),
            &CompileOptions::carat_kop(),
            &key,
        )
        .expect("compiles");
        let mut kernel = Kernel::boot(
            setup::two_region_policy(),
            vec![key.clone()],
            KernelConfig::default(),
        );
        kernel.insmod(&out.signed).expect("loads");
        let ring = kernel.kmalloc(RING_BYTES).expect("ring");
        let frame = kernel.kmalloc(FRAME_BYTES).expect("frame");
        let mmio = kernel.kmalloc(MMIO_BYTES).expect("mmio window");
        kernel.tracer().set_enabled(true);
        {
            let mut interp = Interp::new(&mut kernel).expect("interp");
            interp.set_engine(Engine::Bytecode);
            for p in 0..profile_pkts {
                let slot = p & 255;
                interp
                    .call(
                        "mini-e1000e",
                        "xmit",
                        &[ring.raw(), frame.raw(), mmio.raw(), slot, LEN, slot],
                    )
                    .expect("profile xmit");
            }
        }
        kernel.tracer().set_enabled(false);
        assert!(kernel.promote_hot("mini-e1000e", 1).expect("promote") > 0);
        kernel.tracer().set_enabled(true);
        let before = kernel.tracer().total_checks();
        let (stats, admits) = {
            let mut interp = Interp::new(&mut kernel).expect("interp");
            interp.set_engine(Engine::Promoted);
            for p in 0..tp {
                let slot = p & 255;
                interp
                    .call(
                        "mini-e1000e",
                        "xmit",
                        &[ring.raw(), frame.raw(), mmio.raw(), slot, LEN, slot],
                    )
                    .expect("traced xmit");
            }
            (interp.stats(), interp.inline_admits())
        };
        assert_eq!(
            admits, 0,
            "a traced run takes the general path so attribution stays exact"
        );
        let delta = kernel.tracer().total_checks() - before;
        assert_eq!(
            delta, stats.guards,
            "per-site profile totals must reconcile with the guard counter"
        );
        (delta, stats.guards)
    };

    // Invalidation and lazy re-promotion: a policy publish drops the
    // tier wholesale (zero stale admits by construction — the promoted
    // dispatch deopts to the general bytecode), and the next promotion
    // re-bakes at the new generation.
    let bump_generation_delta = {
        let out = compile_module(
            corpus::parse(corpus::MINI_E1000E_IR),
            &CompileOptions::carat_kop(),
            &key,
        )
        .expect("compiles");
        let policy = setup::two_region_policy();
        let mut kernel = Kernel::boot(
            Arc::clone(&policy),
            vec![key.clone()],
            KernelConfig {
                // The sweep threshold `tick()` uses — one hit qualifies,
                // so the standing profile re-promotes after the bump.
                hot_threshold: 1,
                ..KernelConfig::default()
            },
        );
        kernel.insmod(&out.signed).expect("loads");
        let image = Arc::clone(kernel.module("mini-e1000e").expect("loaded").image());
        let compiled = image.compiled.as_ref().expect("bytecode image");
        let ring = kernel.kmalloc(RING_BYTES).expect("ring");
        let frame = kernel.kmalloc(FRAME_BYTES).expect("frame");
        let mmio = kernel.kmalloc(MMIO_BYTES).expect("mmio window");
        let xmit_n = |kernel: &mut Kernel, n: u64, engine: Engine| -> (ExecStats, u64, u64) {
            let mut interp = Interp::new(kernel).expect("interp");
            interp.set_engine(engine);
            for p in 0..n {
                let slot = p & 255;
                interp
                    .call(
                        "mini-e1000e",
                        "xmit",
                        &[ring.raw(), frame.raw(), mmio.raw(), slot, LEN, slot],
                    )
                    .expect("xmit");
            }
            (
                interp.stats(),
                interp.inline_admits(),
                interp.inline_deopts(),
            )
        };
        kernel.tracer().set_enabled(true);
        xmit_n(&mut kernel, profile_pkts, Engine::Bytecode);
        kernel.tracer().set_enabled(false);
        assert!(kernel.promote_hot("mini-e1000e", 1).expect("promote") > 0);
        let gen1 = compiled.promoted_generation();
        assert_eq!(gen1, policy.store_generation(), "tier is current");
        let (s1, a1, d1) = xmit_n(&mut kernel, 64, Engine::Promoted);
        assert_eq!(a1, s1.guards);
        assert_eq!(d1, 0);

        // The publish: the generation subscription drops the tier on the
        // publishing thread, before bump_epoch returns.
        policy.bump_epoch();
        assert_eq!(
            compiled.promoted_generation(),
            0,
            "a policy publish drops the promoted tier wholesale"
        );
        let (s2, a2, d2) = xmit_n(&mut kernel, 64, Engine::Promoted);
        assert_eq!(a2, 0, "zero stale admits after the epoch bump");
        assert_eq!(d2, 0, "tier dropped before any op could even deopt");
        assert_eq!(s2.guards, s1.guards, "general path answered everything");

        // Lazy re-promotion: the accumulated profile still qualifies, so
        // the next sweep re-bakes against the *new* snapshot.
        assert!(kernel.tick() > 0, "re-promotion from the standing profile");
        let gen2 = compiled.promoted_generation();
        assert_eq!(gen2, policy.store_generation());
        assert!(gen2 > gen1);
        let (s3, a3, d3) = xmit_n(&mut kernel, 64, Engine::Promoted);
        assert_eq!(a3, s3.guards, "inline admits resume at the new generation");
        assert_eq!(d3, 0);
        gen2 - gen1
    };

    // ---- The native forwarding datapath: the same tier as a ----
    // per-thread HotPolicy in front of the shared policy module.
    let (fwd_offered, fwd_repeats, fwd_flows, fwd_budget) = if quick() {
        (600u64, 2usize, 256usize, 64u64)
    } else {
        (4_000, 4, 512, 64)
    };
    let fwd_seed = 7_300u64;

    // Profile pass: one traced window builds the per-site envelopes.
    // The forwarding comparison runs a 32-region table policy — the
    // per-allocation shape a CARAT-tracked kernel actually carries, with
    // the driver's grants at the worst-case scan position (as in the
    // Figure 5 sweep). General and hot runs share the same policy; the
    // hot tier's inlined bounds are what make its cost independent of
    // table size.
    let pm = setup::n_region_policy(32);
    let tracer = kop_trace::Tracer::with_capacity(kop_trace::DEFAULT_CAPACITY);
    let mem = GuardedMem::with_tracer(
        DirectMem::with_defaults(E1000Device::default()),
        Arc::clone(&pm),
        Arc::clone(&tracer),
    );
    tracer.set_enabled(true);
    let (_, prof_rep, prof_guards) =
        forward_once(mem, fwd_seed, fwd_flows, fwd_offered, fwd_budget);
    tracer.set_enabled(false);
    assert!(prof_rep.forwarded > 0 && prof_guards > 0);

    // Envelope → site map: the driver's synthetic sites, classified by
    // the same ranges the native build guards with.
    let probe = DirectMem::with_defaults(E1000Device::default());
    let site_map = kop_e1000e::driver_site_map(probe.arena_base(), probe.mmio_base());
    let mut hot_sites = Vec::new();
    let mut tlb_seeds = Vec::new();
    for (_meta, prof) in tracer.hot_sites(1) {
        let Some((lo, hi)) = prof.envelope() else {
            continue;
        };
        let site = site_map.classify(lo);
        hot_sites.push(HotSite {
            site,
            lo,
            hi,
            flags: AccessFlags::RW,
        });
        tlb_seeds.push((site, lo, (hi - lo).max(1), AccessFlags::RW));
    }
    assert!(
        !hot_sites.is_empty(),
        "forwarding guard sites were profiled"
    );

    let reg = kop_trace::CounterRegistry::new();
    let mut fwd_base_best = f64::MAX;
    let mut fwd_general_best = f64::MAX;
    let mut fwd_hot_best = f64::MAX;
    let mut fwd_admits = 0u64;
    let mut fwd_deopts = 0u64;
    let mut tlb_preseeded = 0u64;
    for r in 0..fwd_repeats {
        let (rate_b, rep_b, _) = forward_once(
            DirectMem::with_defaults(E1000Device::default()),
            fwd_seed,
            fwd_flows,
            fwd_offered,
            fwd_budget,
        );
        let (rate_g, rep_g, guard_calls) = forward_once(
            GuardedMem::new(
                DirectMem::with_defaults(E1000Device::default()),
                Arc::clone(&pm),
            ),
            fwd_seed,
            fwd_flows,
            fwd_offered,
            fwd_budget,
        );
        let hot_mem = GuardedMem::with_hot_prefixed(
            DirectMem::with_defaults(E1000Device::default()),
            Arc::clone(&pm),
            hot_sites.clone(),
            &format!("jit.r{r}"),
        );
        assert!(hot_mem.policy().promoted_count() > 0, "sites promoted");
        hot_mem.policy().register_into(&reg);
        let (rate_h, rep_h, hot_guard_calls) =
            forward_once(hot_mem, fwd_seed, fwd_flows, fwd_offered, fwd_budget);
        // The promotion-warmed TLB: preseeds land without phantom checks
        // and the warmed run is behaviourally identical too.
        let warm_mem = GuardedMem::with_tlb_warmed(
            DirectMem::with_defaults(E1000Device::default()),
            Arc::clone(&pm),
            &format!("jit.tlb.r{r}"),
            &tlb_seeds,
        );
        let pres = warm_mem.policy().tlb().preseeded();
        assert!(pres > 0, "promotion warmed the guard TLB");
        warm_mem.policy().tlb().register_into(&reg);
        let checks_before_warm = pm.stats().checks;
        let (_, rep_w, warm_guards) =
            forward_once(warm_mem, fwd_seed, fwd_flows, fwd_offered, fwd_budget);
        tlb_preseeded = pres;

        assert_eq!(
            rep_b, rep_g,
            "general forwarding is behaviourally identical"
        );
        assert_eq!(
            rep_b, rep_h,
            "promoted forwarding is behaviourally identical"
        );
        assert_eq!(
            rep_b, rep_w,
            "warmed-TLB forwarding is behaviourally identical"
        );
        assert_eq!(guard_calls, hot_guard_calls, "same guard count either way");
        // Preseeding never fabricates a policy check: the warmed run's
        // policy checks are its TLB misses only.
        let warm_misses = reg
            .get(&format!("jit.tlb.r{r}.misses"))
            .expect("warm miss counter")
            .get();
        assert_eq!(
            pm.stats().checks - checks_before_warm,
            warm_misses,
            "preseeded entries are hits, not phantom checks"
        );
        assert!(warm_guards > 0);
        let admits = reg
            .get(&format!("jit.r{r}.inline_admits"))
            .expect("admit counter")
            .get();
        let deopts = reg
            .get(&format!("jit.r{r}.deopts"))
            .expect("deopt counter")
            .get();
        assert!(admits > 0, "the hot tier answered guards inline");
        assert_eq!(deopts, 0, "zero steady-state deopts on the datapath");
        fwd_admits += admits;
        fwd_deopts += deopts;
        // Keep the *fastest* pass per configuration, as ns per frame.
        fwd_base_best = fwd_base_best.min(1e9 / rate_b.max(1e-9));
        fwd_general_best = fwd_general_best.min(1e9 / rate_g.max(1e-9));
        fwd_hot_best = fwd_hot_best.min(1e9 / rate_h.max(1e-9));
    }
    let fwd_general_over = (fwd_general_best - fwd_base_best).max(0.0);
    let fwd_hot_over = (fwd_hot_best - fwd_base_best).max(0.0);
    if assert_timing {
        assert!(
            fwd_hot_over <= fwd_general_over / 2.0,
            "promoted tier must at least halve the forwarding guard overhead \
             (baseline {fwd_base_best:.1} ns/frame, general {fwd_general_best:.1}, \
              hot {fwd_hot_best:.1}: overhead {fwd_general_over:.1} -> {fwd_hot_over:.1})"
        );
    }
    let fwd_reduction = fwd_general_over / fwd_hot_over.max(1.0);

    let guards_per_packet = general.stats.guards / packets;
    let notes = vec![
        "x=0 baseline build, x=1 guarded general bytecode, x=2 guarded promoted tier (TX ns/packet)".into(),
        "promotion: tracer envelopes -> covering region of the current snapshot -> inlined [lo,hi)+perm+generation, self-validated by the translation validator before install".into(),
        format!(
            "steady state: {} inline admits, {} deopts; traced pass reconciled {} profiled checks == {} guards",
            promoted.inline_admits, promoted.inline_deopts, traced_checks, traced_guards
        ),
        format!(
            "epoch bump dropped the tier atomically (generation +{bump_generation_delta}), zero stale admits, tick() re-promoted"
        ),
        format!(
            "native datapath: HotPolicy admits {fwd_admits} inline / {fwd_deopts} deopts; warmed TLB preseeded {tlb_preseeded} entries with zero phantom checks"
        ),
        if assert_timing {
            ">=2x guard-overhead reduction asserted on both the TX and forwarding paths".into()
        } else {
            format!(
                "timing asserts skipped (quick={}): shapes reported, correctness still asserted",
                quick()
            )
        },
    ];

    FigureData {
        id: "jit",
        title: "profile-directed promotion: hot guard sites re-lowered with inlined bounds vs the general guarded path".into(),
        axes: ("configuration", "ns per packet | ns per frame"),
        series: vec![
            Series {
                label: "tx_ns_per_packet".into(),
                points: vec![
                    (0.0, base.ns_pkt),
                    (1.0, general.ns_pkt),
                    (2.0, promoted.ns_pkt),
                ],
            },
            Series {
                label: "fwd_ns_per_frame".into(),
                points: vec![
                    (0.0, fwd_base_best),
                    (1.0, fwd_general_best),
                    (2.0, fwd_hot_best),
                ],
            },
        ],
        headlines: vec![
            ("vm_baseline_ns_pkt".into(), base.ns_pkt),
            ("vm_general_ns_pkt".into(), general.ns_pkt),
            ("vm_promoted_ns_pkt".into(), promoted.ns_pkt),
            ("vm_overhead_reduction".into(), vm_reduction),
            ("vm_promoted_ops".into(), promoted.promoted_ops as f64),
            ("vm_inline_admits".into(), promoted.inline_admits as f64),
            ("vm_inline_deopts".into(), promoted.inline_deopts as f64),
            ("vm_guards_per_packet".into(), guards_per_packet as f64),
            ("vm_traced_checks".into(), traced_checks as f64),
            ("bump_generation_delta".into(), bump_generation_delta as f64),
            ("fwd_baseline_ns_frame".into(), fwd_base_best),
            ("fwd_general_ns_frame".into(), fwd_general_best),
            ("fwd_hot_ns_frame".into(), fwd_hot_best),
            ("fwd_overhead_reduction".into(), fwd_reduction),
            ("fwd_inline_admits".into(), fwd_admits as f64),
            ("fwd_inline_deopts".into(), fwd_deopts as f64),
            ("tlb_preseeded".into(), tlb_preseeded as f64),
        ],
        notes,
    }
}

/// The OPT figure (`reproduce opt`): the guard-optimizing analysis tier
/// end to end on the interpreter-driven e1000e TX path. Compares the
/// paper build (every access guarded) against the optimized build
/// (cross-block redundant-guard elimination + counted-loop range
/// coalescing, obligations validated at signing *and* insmod) on both
/// execution engines.
///
/// Asserted, not just measured: (a) guards executed per packet strictly
/// drop under optimization; (b) ring/frame/@stats/TDT bytes are
/// identical across all four configurations — the optimizer changed the
/// guard schedule, never the driver's observable behaviour; (c) per-site
/// guard attribution reconciles exactly across engines within each
/// build; (d) the optimized container round-trips the loader's
/// ledger-replaying static verification.
pub fn opt() -> FigureData {
    use kop_interp::{Engine, ExecStats, Interp};

    let key = CompilerKey::from_passphrase("operator-key", "carat-kop-dev");
    let (packets, repeats) = if quick() {
        (2_000u64, 3)
    } else {
        (20_000u64, 7)
    };

    const RING_BYTES: u64 = 256 * 16;
    const FRAME_BYTES: u64 = 64;
    const MMIO_BYTES: u64 = 0x4000;
    const TDT_OFF: u64 = 0x3818;
    const STATS_BYTES: usize = 24;
    const LEN: u64 = 114;

    struct RunOut {
        ns_pkt: f64,
        stats: ExecStats,
        static_guards: u64,
        ring: Vec<u8>,
        frame: Vec<u8>,
        stats_glob: Vec<u8>,
        tdt: u64,
        profiled: Vec<(String, String, u64)>,
        profiled_checks: u64,
    }

    let run = |opts: &CompileOptions, engine: Engine, packets: u64, traced: bool| -> RunOut {
        let module = corpus::parse(corpus::MINI_E1000E_IR);
        let out = compile_module(module, opts, &key).expect("compiles");
        let static_guards = out.signed.attestation.guard_count;
        let policy = setup::two_region_policy();
        // Static verification mode: insmod replays the attested
        // obligation ledger through the independent validator, exactly
        // the audit the signer ran.
        let mut kernel = Kernel::boot(
            policy,
            vec![key.clone()],
            KernelConfig {
                verification: kop_kernel::Verification::SignatureAndStatic,
                ..KernelConfig::default()
            },
        );
        kernel.insmod(&out.signed).expect("loads");
        let image = std::sync::Arc::clone(kernel.module("mini-e1000e").expect("loaded").image());
        let stats_addr = image
            .globals
            .get("stats")
            .copied()
            .expect("@stats laid out");
        let ring = kernel.kmalloc(RING_BYTES).expect("ring");
        let frame = kernel.kmalloc(FRAME_BYTES).expect("frame");
        let mmio = kernel.kmalloc(MMIO_BYTES).expect("mmio window");
        if traced {
            kernel.tracer().set_enabled(true);
        }
        let (ns_pkt, stats) = {
            let mut interp = Interp::new(&mut kernel).expect("interp");
            interp.set_engine(engine);
            let start = Instant::now();
            for p in 0..packets {
                let slot = p & 255;
                interp
                    .call(
                        "mini-e1000e",
                        "xmit",
                        &[ring.raw(), frame.raw(), mmio.raw(), slot, LEN, slot],
                    )
                    .expect("xmit");
            }
            (
                start.elapsed().as_nanos() as f64 / packets as f64,
                interp.stats(),
            )
        };
        let mut ring_bytes = vec![0u8; RING_BYTES as usize];
        kernel.mem.read_bytes(ring, &mut ring_bytes).expect("ring");
        let mut frame_bytes = vec![0u8; FRAME_BYTES as usize];
        kernel
            .mem
            .read_bytes(frame, &mut frame_bytes)
            .expect("frame");
        let mut stats_glob = vec![0u8; STATS_BYTES];
        kernel
            .mem
            .read_bytes(stats_addr, &mut stats_glob)
            .expect("@stats");
        let tdt = kernel
            .mem
            .read_uint(kop_core::VAddr(mmio.raw() + TDT_OFF), Size(4))
            .expect("tdt");
        let (profiled, profiled_checks) = if traced {
            let t = kernel.tracer();
            (
                t.profile_snapshot()
                    .into_iter()
                    .map(|(meta, prof)| (meta.module.clone(), meta.label.clone(), prof.hits))
                    .collect(),
                t.total_checks(),
            )
        } else {
            (Vec::new(), 0)
        };
        RunOut {
            ns_pkt,
            stats,
            static_guards,
            ring: ring_bytes,
            frame: frame_bytes,
            stats_glob,
            tdt,
            profiled,
            profiled_checks,
        }
    };

    let unopt = CompileOptions::carat_kop();
    let opt = CompileOptions::optimized();

    // Timed passes, interleaved per repeat round; keep the fastest.
    let mut best: [Option<RunOut>; 4] = [None, None, None, None];
    for _ in 0..repeats {
        for (i, (opts, engine)) in [
            (&unopt, Engine::Tree),
            (&unopt, Engine::Bytecode),
            (&opt, Engine::Tree),
            (&opt, Engine::Bytecode),
        ]
        .into_iter()
        .enumerate()
        {
            let r = run(opts, engine, packets, false);
            if best[i].as_ref().is_none_or(|b| r.ns_pkt < b.ns_pkt) {
                best[i] = Some(r);
            }
        }
    }
    let [ut, ub, ot, ob] = best.map(|o| o.expect("all configurations ran"));

    // Engine equivalence within each build flavour.
    assert_eq!(ut.stats, ub.stats, "unoptimized ExecStats must match");
    assert_eq!(ot.stats, ob.stats, "optimized ExecStats must match");
    // Byte identity across ALL four configurations: optimization must not
    // change what the driver writes, only how often it checks.
    for (r, what) in [
        (&ub, "unopt/bytecode"),
        (&ot, "opt/tree"),
        (&ob, "opt/bytecode"),
    ] {
        assert_eq!(ut.ring, r.ring, "{what}: TX ring bytes");
        assert_eq!(ut.frame, r.frame, "{what}: frame buffer bytes");
        assert_eq!(ut.stats_glob, r.stats_glob, "{what}: @stats bytes");
        assert_eq!(ut.tdt, r.tdt, "{what}: TDT doorbell cell");
    }
    // The point of the tier: strictly fewer guards, statically and
    // dynamically, with per-packet granularity.
    assert!(
        ot.static_guards < ut.static_guards,
        "optimization must reduce static guard sites ({} vs {})",
        ot.static_guards,
        ut.static_guards
    );
    assert!(ut.stats.guards % packets == 0 && ot.stats.guards % packets == 0);
    let gpp_unopt = ut.stats.guards / packets;
    let gpp_opt = ot.stats.guards / packets;
    assert!(
        gpp_opt < gpp_unopt,
        "optimization must reduce guards executed per packet ({gpp_opt} vs {gpp_unopt})"
    );

    // Traced correctness pass (untimed, smaller): exact per-site
    // reconciliation for both builds, across both engines.
    let tp = if quick() { 512 } else { 2_048 };
    for opts in [&unopt, &opt] {
        let t_tree = run(opts, Engine::Tree, tp, true);
        let t_vm = run(opts, Engine::Bytecode, tp, true);
        assert_eq!(t_tree.stats, t_vm.stats, "traced ExecStats must match");
        assert_eq!(
            t_tree.profiled, t_vm.profiled,
            "per-site hit attribution must match exactly across engines"
        );
        assert!(!t_tree.profiled.is_empty(), "guard sites were profiled");
        for t in [&t_tree, &t_vm] {
            assert_eq!(
                t.profiled_checks, t.stats.guards,
                "per-site profile totals must reconcile with the interp guard counter"
            );
        }
    }

    // The counted-loop half of the tier, on the loop-heavy workload: the
    // per-iteration element guards collapse to one range guard per entry.
    let (wl_unopt, wl_opt, wl_r) = {
        let module = corpus::parse(corpus::OPT_WORKLOAD_IR);
        let mut dyn_guards = [0u64; 2];
        let mut results = [0u64; 2];
        for (i, opts) in [&unopt, &opt].into_iter().enumerate() {
            let out = compile_module(module.clone(), opts, &key).expect("compiles");
            let policy = std::sync::Arc::new(PolicyModule::new());
            policy.set_default_action(DefaultAction::Allow);
            let mut kernel = Kernel::boot(policy, vec![key.clone()], KernelConfig::default());
            kernel.insmod(&out.signed).expect("loads");
            let buf = kernel.kmalloc(4096).expect("buf");
            let mut interp = Interp::new(&mut kernel).expect("interp");
            results[i] = interp
                .call("opt-workload", "run", &[buf.raw(), 256])
                .expect("runs")
                .expect("returns");
            dyn_guards[i] = interp.stats().guards;
        }
        assert_eq!(results[0], results[1], "optimization preserves semantics");
        assert!(
            dyn_guards[1] < dyn_guards[0],
            "range coalescing must cut the loop workload's dynamic guards"
        );
        (dyn_guards[0], dyn_guards[1], results[0])
    };

    FigureData {
        id: "opt",
        title: "guard-optimizing analysis tier: unoptimized vs optimized guards on the e1000e TX path, both engines".into(),
        axes: ("configuration", "ns per packet"),
        series: vec![
            Series {
                label: "ns_per_packet".into(),
                points: vec![
                    (0.0, ut.ns_pkt),
                    (1.0, ub.ns_pkt),
                    (2.0, ot.ns_pkt),
                    (3.0, ob.ns_pkt),
                ],
            },
            Series {
                label: "guards_per_packet".into(),
                points: vec![(0.0, gpp_unopt as f64), (1.0, gpp_opt as f64)],
            },
        ],
        headlines: vec![
            ("guards_per_packet_unopt".into(), gpp_unopt as f64),
            ("guards_per_packet_opt".into(), gpp_opt as f64),
            (
                "guards_per_packet_reduction".into(),
                1.0 - gpp_opt as f64 / gpp_unopt as f64,
            ),
            ("static_guards_unopt".into(), ut.static_guards as f64),
            ("static_guards_opt".into(), ot.static_guards as f64),
            ("tree_unopt_ns_pkt".into(), ut.ns_pkt),
            ("bytecode_unopt_ns_pkt".into(), ub.ns_pkt),
            ("tree_opt_ns_pkt".into(), ot.ns_pkt),
            ("bytecode_opt_ns_pkt".into(), ob.ns_pkt),
            ("workload_dynamic_guards_unopt".into(), wl_unopt as f64),
            ("workload_dynamic_guards_opt".into(), wl_opt as f64),
            ("workload_result".into(), wl_r as f64),
        ],
        notes: vec![
            "x=0 tree/unopt, x=1 bytecode/unopt, x=2 tree/opt, x=3 bytecode/opt".into(),
            "modules loaded under Verification::Static: insmod replays the attested obligation ledger through the independent translation validator".into(),
            "asserted: ring/frame/@stats/TDT bytes identical across all four configurations; per-site attribution reconciles exactly per build".into(),
            format!(
                "e1000e TX path: {gpp_unopt} -> {gpp_opt} guards/packet (elimination + read/write widening); loop workload: {wl_unopt} -> {wl_opt} dynamic guards (range coalescing)"
            ),
        ],
    }
}

/// The SMP guard-path figure (`reproduce smp`): guarded check rate and
/// multi-queue TX throughput vs thread count, for the mutex-store
/// baseline, the lock-free snapshot path, and snapshot + per-thread
/// guard TLB — plus a writer-churn phase proving revoked grants are
/// never admitted (DESIGN §3.13).
///
/// Three claims, asserted in CI quick mode on a multi-core runner:
/// (a) snapshot+TLB check throughput scales ≥3x from 1 to 4 threads
/// while the mutex path stays ≤1.5x; (b) single-thread ns/check for
/// snapshot+TLB is no worse than the mutex path; (c) a revoke/grant
/// storm never admits a stale access (asserted at every scale, every
/// run). Guard-TLB hits + misses reconcile exactly with guard calls.
pub fn smp() -> FigureData {
    use kop_policy::{CheckPath, GuardTlb};
    use kop_trace::CounterRegistry;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AO};
    use std::sync::Barrier;

    let threads: &[usize] = if quick() { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let (iters, repeats, mq_frames) = if quick() {
        (60_000u64, 3usize, 200u64)
    } else {
        (250_000u64, 5usize, 1_500u64)
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Timing asserts only when this process is the standalone quick smoke
    // run on a multi-core host: under `cargo test` (paper scale) sibling
    // tests pollute the scheduler and scaling ratios are meaningless.
    let assert_timing = quick() && cores >= 4;

    #[derive(Clone, Copy, PartialEq)]
    enum Path {
        MutexStore,
        Snapshot,
        SnapshotTlb,
    }

    // One check-rate measurement: n threads hammer one shared policy
    // with permitted kernel-half accesses; returns aggregate checks/sec
    // (best of `repeats`, min-time discipline).
    let check_rate = |path: Path, n: usize| -> f64 {
        let mut best = 0.0f64;
        for _ in 0..repeats {
            let pm = setup::two_region_policy();
            pm.set_check_path(match path {
                Path::MutexStore => CheckPath::MutexStore,
                _ => CheckPath::Snapshot,
            });
            let barrier = Barrier::new(n);
            let base = kop_core::layout::DIRECT_MAP_BASE;
            let worst_ns = std::thread::scope(|s| {
                let handles: Vec<_> = (0..n)
                    .map(|t| {
                        let pm = std::sync::Arc::clone(&pm);
                        let barrier = &barrier;
                        s.spawn(move || {
                            let tlb = GuardTlb::with_prefix("smp.rate");
                            barrier.wait();
                            let t0 = Instant::now();
                            for i in 0..iters {
                                let addr = VAddr(base + ((i ^ t as u64) % 512) * 8);
                                let r = match path {
                                    Path::SnapshotTlb => tlb.check(
                                        &pm,
                                        (i % 8) as u32,
                                        addr,
                                        Size(8),
                                        AccessFlags::RW,
                                    ),
                                    _ => pm.check(addr, Size(8), AccessFlags::RW),
                                };
                                debug_assert!(r.is_ok());
                                std::hint::black_box(&r);
                            }
                            t0.elapsed().as_nanos() as u64
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("rate worker"))
                    .max()
                    .unwrap_or(1)
            });
            let rate = (iters as f64 * n as f64) / (worst_ns as f64 / 1e9);
            best = best.max(rate);
        }
        best
    };

    let mut series = Vec::new();
    let mut rate_1t = std::collections::HashMap::new();
    let mut rate_4t = std::collections::HashMap::new();
    for (label, path) in [
        ("checkrate_mutex", Path::MutexStore),
        ("checkrate_snapshot", Path::Snapshot),
        ("checkrate_snapshot_tlb", Path::SnapshotTlb),
    ] {
        let points: Vec<(f64, f64)> = threads
            .iter()
            .map(|&n| {
                let r = check_rate(path, n);
                if n == 1 {
                    rate_1t.insert(label, r);
                }
                if n == 4 {
                    rate_4t.insert(label, r);
                }
                (n as f64, r / 1e6) // Mchecks/s
            })
            .collect();
        series.push(Series {
            label: label.into(),
            points,
        });
    }

    // Single-thread ns/check from the measured rates.
    let ns_per_check = |label: &str| 1e9 / rate_1t.get(label).copied().unwrap_or(1.0);
    let mutex_ns = ns_per_check("checkrate_mutex");
    let snapshot_ns = ns_per_check("checkrate_snapshot");
    let tlb_ns = ns_per_check("checkrate_snapshot_tlb");

    // Multi-queue TX throughput: N queues, each its own driver + ring,
    // sharing one policy. The TLB config registers every queue's hit and
    // miss cells so they reconcile against the drivers' guard counters.
    let mut mq_guard_calls = 0u64;
    let mut tlb_hits = 0u64;
    let mut tlb_misses = 0u64;
    for (label, use_tlb) in [("mq_tx_mutex", false), ("mq_tx_snapshot_tlb", true)] {
        let mut points = Vec::new();
        for &n in threads {
            let mut best = 0.0f64;
            for _ in 0..repeats.min(3) {
                let pm = setup::two_region_policy();
                pm.set_check_path(if use_tlb {
                    CheckPath::Snapshot
                } else {
                    CheckPath::MutexStore
                });
                let registry = CounterRegistry::new();
                let report =
                    if use_tlb {
                        kop_e1000e::run_mq_tx_with(n, mq_frames, 64, |q| {
                            let mem = kop_e1000e::GuardedMem::with_tlb_prefixed(
                                kop_e1000e::DirectMem::with_defaults(
                                    kop_e1000e::E1000Device::default(),
                                ),
                                std::sync::Arc::clone(&pm),
                                &format!("policy.tlb.q{q}"),
                            );
                            mem.policy().tlb().register_into(&registry);
                            mem
                        })
                    } else {
                        kop_e1000e::run_mq_tx(n, mq_frames, 64, |_q| std::sync::Arc::clone(&pm))
                    }
                    .expect("mq tx run");
                assert_eq!(
                    report.delivered(),
                    mq_frames * n as u64,
                    "every queue must deliver every frame"
                );
                if use_tlb {
                    let (mut hits, mut misses) = (0u64, 0u64);
                    for (name, v) in registry.snapshot() {
                        if name.ends_with(".hits") {
                            hits += v;
                        } else if name.ends_with(".misses") {
                            misses += v;
                        }
                    }
                    assert_eq!(
                        hits + misses,
                        report.guard_calls(),
                        "TLB hits+misses must reconcile exactly with guard calls"
                    );
                    mq_guard_calls = report.guard_calls();
                    tlb_hits = hits;
                    tlb_misses = misses;
                }
                best = best.max(report.frames_per_sec());
            }
            points.push((n as f64, best));
        }
        series.push(Series {
            label: label.into(),
            points,
        });
    }

    // Writer-churn phase: revoke/grant storm with an odd/even settle
    // counter; an allowed check observed strictly inside a revoked
    // window is a stale admit. Asserted zero at every scale.
    let churns = if quick() { 1_000u64 } else { 5_000 };
    let stale_admits;
    let churn_publishes;
    {
        let pm = PolicyModule::new(); // default deny
        let before_publishes = pm.snapshot_publishes();
        let state = AtomicU64::new(1);
        let stop = AtomicBool::new(false);
        let grant =
            Region::new(VAddr(0x1000), Size(0x1000), Protection::READ_WRITE).expect("grant region");
        let readers = 3usize;
        stale_admits = std::thread::scope(|s| {
            let handles: Vec<_> = (0..readers)
                .map(|_| {
                    let pm = &pm;
                    let state = &state;
                    let stop = &stop;
                    s.spawn(move || {
                        let tlb = GuardTlb::with_prefix("smp.churn");
                        let mut stale = 0u64;
                        while !stop.load(AO::SeqCst) {
                            let s1 = state.load(AO::SeqCst);
                            let ok = tlb
                                .check(pm, 0, VAddr(0x1800), Size(8), AccessFlags::RW)
                                .is_ok();
                            let s2 = state.load(AO::SeqCst);
                            if ok && s1 == s2 && s1 % 2 == 1 {
                                stale += 1;
                            }
                        }
                        stale
                    })
                })
                .collect();
            for k in 0..churns {
                state.store(2 * k + 2, AO::SeqCst);
                pm.add_region(grant).expect("grant");
                pm.remove_region(grant.base).expect("revoke");
                state.store(2 * k + 3, AO::SeqCst);
            }
            stop.store(true, AO::SeqCst);
            handles
                .into_iter()
                .map(|h| h.join().expect("reader"))
                .sum::<u64>()
        });
        churn_publishes = pm.snapshot_publishes() - before_publishes;
        assert_eq!(
            stale_admits, 0,
            "a revoked grant must never be admitted after the revoke returns"
        );
        assert_eq!(churn_publishes, 2 * churns, "one publish per table write");
    }

    // Timing claims — only meaningful on a quiet multi-core host.
    let scaling = |label: &str| -> f64 {
        match (rate_1t.get(label), rate_4t.get(label)) {
            (Some(&r1), Some(&r4)) if r1 > 0.0 => r4 / r1,
            _ => f64::NAN,
        }
    };
    let tlb_scaling = scaling("checkrate_snapshot_tlb");
    let mutex_scaling = scaling("checkrate_mutex");
    if assert_timing {
        assert!(
            tlb_scaling >= 3.0,
            "snapshot+TLB must scale >=3x from 1 to 4 threads (got {tlb_scaling:.2}x)"
        );
        assert!(
            mutex_scaling <= 1.5,
            "mutex store must not scale past 1.5x (got {mutex_scaling:.2}x)"
        );
        assert!(
            tlb_ns <= mutex_ns * 1.10,
            "single-thread snapshot+TLB ns/check ({tlb_ns:.1}) must be no worse than mutex ({mutex_ns:.1})"
        );
    }

    let notes = vec![
        "checkrate_*: N threads hammer one shared PolicyModule with permitted accesses (Mchecks/s, best of repeats)".into(),
        "mutex path serializes every guard on the store lock; snapshot path is lock-free RCU-style; +TLB adds a per-thread per-site grant cache".into(),
        "mq_tx_*: N TX queues, each a full driver over its own ring, sharing only the policy (frames/s)".into(),
        format!(
            "writer churn: {churns} grant/revoke pairs against {} concurrent TLB readers -> 0 stale admits (asserted)",
            3
        ),
        format!(
            "TLB reconciliation: {tlb_hits} hits + {tlb_misses} misses == {mq_guard_calls} guard calls (asserted exact)"
        ),
        if assert_timing {
            format!("scaling asserted on this host ({cores} cores): snapshot+TLB >=3x @4t, mutex <=1.5x @4t, 1t parity")
        } else {
            format!("timing asserts skipped (quick={}, cores={cores}): shapes reported, correctness still asserted", quick())
        },
    ];

    FigureData {
        id: "smp",
        title: "SMP guard path: check rate & multi-queue TX vs threads (mutex vs snapshot vs snapshot+TLB)"
            .into(),
        axes: ("threads", "Mchecks/s | frames/s"),
        series,
        headlines: vec![
            ("mutex_ns_check_1t".into(), mutex_ns),
            ("snapshot_ns_check_1t".into(), snapshot_ns),
            ("snapshot_tlb_ns_check_1t".into(), tlb_ns),
            ("snapshot_tlb_scaling_1_to_4".into(), tlb_scaling),
            ("mutex_scaling_1_to_4".into(), mutex_scaling),
            ("stale_admits".into(), stale_admits as f64),
            ("churn_publishes".into(), churn_publishes as f64),
            ("tlb_hits".into(), tlb_hits as f64),
            ("tlb_misses".into(), tlb_misses as f64),
            ("mq_guard_calls".into(), mq_guard_calls as f64),
        ],
        notes,
    }
}

/// Outcome of one chaos-soak pass over a (supervised or bare) fleet of
/// scanner modules. All units are supervision rounds — deterministic.
struct SoakRun {
    delivered: u64,
    attempts: u64,
    restarts: u64,
    recovery: Vec<f64>,
}

/// Drive `fleet` instances of the credscan scanner for `rounds`
/// supervision rounds. Each round each instance either does one unit of
/// legal work (a scan over the permitted kernel half) or — when its
/// seeded `restart_storm` fault point fires — probes the forbidden user
/// half, burning violation budget toward quarantine. With
/// `supervised = false` a quarantined instance stays dead for the rest
/// of the run; with `supervised = true` a [`kop_super::Supervisor`]
/// ticks once per round and re-insmods it from the cached image.
///
/// Two invariants are asserted on every run: the tracer's per-site
/// totals reconcile *exactly* with the interpreter's dynamic guard
/// count (through every restart), and restarts register no new sites.
fn soak_fleet_run(
    signed: &kop_compiler::SignedModule,
    rate: f64,
    seed: u64,
    rounds: u64,
    fleet: usize,
    supervised: bool,
) -> SoakRun {
    use kop_interp::Interp;
    use kop_policy::ViolationAction;
    use kop_super::{SuperConfig, Supervisor};

    const WORK_ADDR: u64 = kop_core::layout::DIRECT_MAP_BASE + 0x10_0000;
    const PROBE_ADDR: u64 = 0x0060_0000; // user half: always a violation

    let key = CompilerKey::from_passphrase("operator-key", "carat-kop-dev");
    let policy = std::sync::Arc::new(PolicyModule::two_region_paper_policy());
    policy.set_violation_action(ViolationAction::Quarantine);
    let mut kernel = Kernel::boot(policy, vec![key], KernelConfig::default());
    kernel.tracer().set_enabled(true);

    let names: Vec<String> = (0..fleet).map(|t| format!("scanner{t}")).collect();
    for name in &names {
        kernel.insmod_named(signed, name).expect("fleet insmod");
    }
    let sites_at_start = kernel.tracer().site_count();

    let mut sup = if supervised {
        let mut s = Supervisor::new(SuperConfig {
            max_restarts: 10_000, // the soak measures recovery, not escalation
            base_backoff_ticks: 1,
            max_backoff_ticks: 8,
        });
        for name in &names {
            s.attach(&kernel, name, signed).expect("attach");
        }
        Some(s)
    } else {
        None
    };

    // One independent misbehaviour schedule per tenant; same seeds for
    // the supervised and baseline passes, so the storms are identical.
    let mut storms: Vec<_> = (0..fleet)
        .map(|t| {
            FaultPlan::new(seed + t as u64)
                .with_restart_storm(Trigger::Probability(rate))
                .restart_storm
        })
        .collect();

    let mut delivered = 0u64;
    let mut attempts = 0u64;
    let mut total_guards = 0u64;
    // The kernel heap is a bump allocator: allocate one module stack up
    // front and thread it through every per-round interpreter.
    let stack = Interp::new(&mut kernel).expect("interp").stack_base();
    for _round in 0..rounds {
        {
            let mut interp = Interp::with_stack(&mut kernel, stack);
            for (t, name) in names.iter().enumerate() {
                if storms[t].check() {
                    // Chaos: probe the forbidden half. Squashed while
                    // under budget; the budget-exhausting probe
                    // quarantines the instance mid-call.
                    let _ = interp.call(name, "scan", &[PROBE_ADDR, 8]);
                } else {
                    attempts += 1;
                    if matches!(interp.call(name, "scan", &[WORK_ADDR, 64]), Ok(Some(0))) {
                        delivered += 1;
                    }
                }
            }
            total_guards += interp.stats().guards;
        }
        if let Some(s) = sup.as_mut() {
            s.tick(&mut kernel);
        }
    }

    // Exact per-site reconciliation through every quarantine/restart
    // cycle: the cached image keeps its site table alive, so no check is
    // ever attributed to a dangling or duplicated site.
    assert_eq!(
        kernel.tracer().total_checks(),
        total_guards,
        "per-site totals must reconcile exactly with dynamic guard count"
    );
    assert_eq!(
        kernel.tracer().site_count(),
        sites_at_start,
        "restarts must not re-register guard sites"
    );

    let restarts = names.iter().map(|n| kernel.lifecycle().restarts(n)).sum();
    let recovery = sup
        .map(|s| s.recovery_latencies().iter().map(|&t| t as f64).collect())
        .unwrap_or_default();
    SoakRun {
        delivered,
        attempts,
        restarts,
        recovery,
    }
}

/// A sequence-numbered 128 B raw Ethernet frame: the LE `u64` sequence
/// sits at payload bytes 0..8 (`frame[14..22]`), where
/// [`kop_net::LedgerSink`] audits it.
fn seq_frame(seq: u64) -> Vec<u8> {
    let mut f = vec![0u8; 128];
    f[0..6].copy_from_slice(&[0x52, 0x54, 0x00, 0x5e, 0x00, 0x01]);
    f[6..12].copy_from_slice(&[0x02, 0x00, 0x00, 0x00, 0x00, 0x01]);
    f[12] = 0x88;
    f[13] = 0xb5;
    f[14..22].copy_from_slice(&seq.to_le_bytes());
    f
}

/// A [`kop_net::LedgerSink`] shared across queue threads and the drain
/// port behind one mutex.
#[derive(Clone)]
struct SharedLedger(std::sync::Arc<std::sync::Mutex<kop_net::LedgerSink>>);

impl kop_e1000e::FrameSink for SharedLedger {
    fn deliver(&mut self, frame: &[u8]) {
        self.0.lock().expect("ledger lock").deliver(frame);
    }
}

/// [`kop_super::DrainPort`] over a real driver: the upgrade protocol
/// drains v1's queues through this, then force-migrates what a wedged
/// device leaves behind.
struct DriverDrain<M: MemSpace> {
    drv: E1000Driver<M>,
    sink: SharedLedger,
}

impl<M: MemSpace> kop_super::DrainPort for DriverDrain<M> {
    fn drain(&mut self, max_ticks: u64) -> u64 {
        self.drv.drain(&mut self.sink, max_ticks).unwrap_or(0)
    }
    fn pending(&self) -> u64 {
        self.drv.tx_pending()
    }
    fn migrate(&mut self) -> Vec<Vec<u8>> {
        self.drv.take_pending_frames().unwrap_or_default()
    }
}

/// What the live-upgrade half of the soak observed.
struct UpgradeSoak {
    drained: u64,
    migrated: u64,
    duplicates: u64,
    missing: u64,
    stale_admits: u64,
    generation_delta: u64,
    delivered: u64,
    expected: u64,
}

/// Zero-downtime live upgrade under concurrent multi-queue guarded TX.
///
/// v1's NIC is wedged (permanent TX hang — the reason an operator would
/// upgrade) with a backlog of sequence-numbered frames queued. While N
/// queue threads hammer their own guarded drivers over the *shared*
/// policy, the main thread runs [`kop_super::upgrade_module`]: v2 loads
/// alongside, the bounded drain times out, the backlog is
/// force-migrated, dispatch swaps behind a policy epoch bump, and v1
/// unloads. The migrated frames are resubmitted through a successor
/// driver. The shared [`kop_net::LedgerSink`] then proves zero dropped
/// and zero duplicated frames, and every queue thread checks the
/// stale-grant discipline: once the swap epoch is published, no admit
/// may observe an older policy generation.
fn soak_upgrade(signed: &kop_compiler::SignedModule) -> UpgradeSoak {
    use kop_policy::ViolationAction;
    use kop_super::{upgrade_module, UpgradeOptions};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    const BACKLOG: u64 = 12;
    let (queues, per_queue): (usize, u64) = if quick() { (2, 60) } else { (3, 200) };

    let key = CompilerKey::from_passphrase("operator-key", "carat-kop-dev");
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    policy.set_violation_action(ViolationAction::Quarantine);
    let mut kernel = Kernel::boot(Arc::clone(&policy), vec![key], KernelConfig::default());
    kernel.tracer().set_enabled(true);
    kernel.insmod(signed).expect("insmod v1");

    let ledger = Arc::new(Mutex::new(kop_net::LedgerSink::new()));

    // v1's NIC: TX DMA permanently hung, backlog queued and undelivered.
    let hung = kop_faultline::FaultyMem::new(
        kop_e1000e::GuardedMem::new(
            kop_e1000e::DirectMem::with_defaults(kop_e1000e::E1000Device::default()),
            Arc::clone(&policy),
        ),
        FaultPlan::new(9_001).with_tx_hang(Trigger::Window {
            start: 1,
            len: u64::MAX / 2,
        }),
    );
    let mut v1_drv = E1000Driver::probe(hung).expect("probe v1");
    v1_drv.up().expect("up v1");
    for seq in 0..BACKLOG {
        v1_drv.xmit_raw(&seq_frame(seq)).expect("queue backlog");
    }
    assert_eq!(v1_drv.tx_pending(), BACKLOG);
    let mut port = DriverDrain {
        drv: v1_drv,
        sink: SharedLedger(Arc::clone(&ledger)),
    };

    let gen_before = policy.store_generation();
    let swap_gen = AtomicU64::new(u64::MAX);
    let stale = AtomicU64::new(0);

    let report = std::thread::scope(|s| {
        for q in 0..queues {
            let policy = Arc::clone(&policy);
            let mut ledger = SharedLedger(Arc::clone(&ledger));
            let swap_gen = &swap_gen;
            let stale = &stale;
            s.spawn(move || {
                let mem = kop_e1000e::GuardedMem::new(
                    kop_e1000e::DirectMem::with_defaults(kop_e1000e::E1000Device::default()),
                    Arc::clone(&policy),
                );
                let mut drv = E1000Driver::probe(mem).expect("probe queue");
                drv.up().expect("up queue");
                let base = 1_000 + q as u64 * per_queue;
                for i in 0..per_queue {
                    // Stale-grant discipline: after the swap epoch is
                    // visible, every admit must observe a generation at
                    // or beyond it.
                    let sg = swap_gen.load(Ordering::SeqCst);
                    let g = policy.store_generation();
                    if sg != u64::MAX && g < sg {
                        stale.fetch_add(1, Ordering::SeqCst);
                    }
                    let frame = seq_frame(base + i);
                    loop {
                        match drv.xmit_raw(&frame) {
                            Ok(()) => break,
                            Err(DriverError::RingFull) => {
                                let _ = drv.drain(&mut ledger, 4);
                            }
                            Err(e) => panic!("queue {q} xmit: {e}"),
                        }
                    }
                    let _ = drv.drain(&mut ledger, 2);
                }
                drv.drain(&mut ledger, 2_048).expect("final drain");
                assert_eq!(drv.tx_pending(), 0, "queue {q} must drain clean");
            });
        }

        // Main thread, concurrent with the TX storm: the live upgrade.
        let report = upgrade_module(
            &mut kernel,
            "credscan",
            signed,
            &mut port,
            UpgradeOptions { drain_ticks: 4 },
        )
        .expect("upgrade");
        swap_gen.store(report.generation, Ordering::SeqCst);
        report
    });

    assert_eq!(kernel.dispatch_target("credscan"), Some("credscan#v2"));
    assert_eq!(
        report.migrated.len() as u64,
        BACKLOG,
        "wedged v1 forces full migration of the backlog"
    );

    // Resubmit the migrated in-flight frames through the successor's
    // driver — in order, before any new traffic on that queue.
    let mem = kop_e1000e::GuardedMem::new(
        kop_e1000e::DirectMem::with_defaults(kop_e1000e::E1000Device::default()),
        Arc::clone(&policy),
    );
    let mut v2_drv = E1000Driver::probe(mem).expect("probe v2");
    v2_drv.up().expect("up v2");
    let mut sink = SharedLedger(Arc::clone(&ledger));
    for frame in &report.migrated {
        v2_drv.xmit_raw(frame).expect("resubmit migrated");
    }
    v2_drv.drain(&mut sink, 2_048).expect("drain migrated");
    assert_eq!(v2_drv.tx_pending(), 0);

    let expected = BACKLOG + queues as u64 * per_queue;
    let l = ledger.lock().expect("ledger");
    let mut missing = 0u64;
    for seq in 0..BACKLOG {
        if !l.has(seq) {
            missing += 1;
        }
    }
    for q in 0..queues as u64 {
        for i in 0..per_queue {
            if !l.has(1_000 + q * per_queue + i) {
                missing += 1;
            }
        }
    }
    let stale_admits = stale.load(Ordering::SeqCst);

    assert_eq!(missing, 0, "zero dropped frames across the live upgrade");
    assert_eq!(
        l.duplicates, 0,
        "zero duplicated frames across the live upgrade"
    );
    assert_eq!(l.distinct(), expected);
    assert_eq!(
        stale_admits, 0,
        "zero stale-grant admits across the epoch bump"
    );
    assert!(report.generation > gen_before, "epoch must advance");

    UpgradeSoak {
        drained: report.drained,
        migrated: report.migrated.len() as u64,
        duplicates: l.duplicates,
        missing,
        stale_admits,
        generation_delta: report.generation - gen_before,
        delivered: l.frames,
        expected,
    }
}

/// SOAK: fleet-scale chaos soak for the module lifecycle supervisor.
///
/// Part 1 sweeps misbehaviour-storm rates over a fleet of scanner
/// modules, comparing delivered work fraction with and without
/// supervision (identical seeded storms). The supervised fleet must
/// dominate at every rate — quarantine still fires instantly, but the
/// supervisor's backoff'd restarts reclaim the downtime. Part 2 runs the
/// zero-downtime live upgrade under concurrent multi-queue guarded TX
/// (see [`soak_upgrade`]). Every correctness claim is asserted on every
/// run; the figure reports the numbers.
pub fn soak() -> FigureData {
    let (rates, rounds, fleet): (&[f64], u64, usize) = if quick() {
        (&[0.0, 0.05], 120, 2)
    } else {
        (&[0.0, 0.02, 0.05], 400, 3)
    };
    let max_rate = *rates.last().expect("nonempty rates");

    let key = CompilerKey::from_passphrase("operator-key", "carat-kop-dev");
    let signed = compile_module(
        corpus::parse(corpus::ROOTKIT_IR),
        &CompileOptions::carat_kop(),
        &key,
    )
    .expect("compile scanner")
    .signed;

    let mut base_points = Vec::new();
    let mut super_points = Vec::new();
    let mut headlines = Vec::new();
    let mut cdf_series = Vec::new();

    for (i, &rate) in rates.iter().enumerate() {
        let seed = 7_001 + i as u64 * 101;
        let base = soak_fleet_run(&signed, rate, seed, rounds, fleet, false);
        let sup = soak_fleet_run(&signed, rate, seed, rounds, fleet, true);
        let frac = |r: &SoakRun| r.delivered as f64 / r.attempts.max(1) as f64;
        let (bf, sf) = (frac(&base), frac(&sup));
        assert!(
            sf + 1e-9 >= bf,
            "supervised delivered fraction must dominate at rate {rate}: {sf} < {bf}"
        );
        base_points.push((rate, bf));
        super_points.push((rate, sf));
        let pm = (rate * 1000.0).round() as u64;
        headlines.push((format!("base_delivered_frac_r{pm}"), bf));
        headlines.push((format!("super_delivered_frac_r{pm}"), sf));
        headlines.push((format!("super_restarts_r{pm}"), sup.restarts as f64));
        if rate == max_rate && rate > 0.0 {
            assert!(
                sup.restarts > 0,
                "the storm at the top rate must force restarts"
            );
            assert!(
                sf > bf,
                "supervision must strictly dominate at the top rate ({sf} vs {bf})"
            );
            headlines.push((
                "recovery_p50_ticks".into(),
                kop_sim::percentile(&sup.recovery, 50.0),
            ));
            headlines.push((
                "recovery_p95_ticks".into(),
                kop_sim::percentile(&sup.recovery, 95.0),
            ));
            cdf_series.push(Series {
                label: format!("recovery-cdf-r{pm}"),
                points: cdf_points(&sup.recovery),
            });
        }
    }

    let up = soak_upgrade(&signed);
    headlines.push(("upgrade_drained".into(), up.drained as f64));
    headlines.push(("upgrade_migrated".into(), up.migrated as f64));
    headlines.push(("upgrade_duplicates".into(), up.duplicates as f64));
    headlines.push(("upgrade_missing".into(), up.missing as f64));
    headlines.push(("upgrade_stale_admits".into(), up.stale_admits as f64));
    headlines.push((
        "upgrade_generation_delta".into(),
        up.generation_delta as f64,
    ));
    headlines.push(("upgrade_delivered".into(), up.delivered as f64));
    headlines.push(("upgrade_expected".into(), up.expected as f64));

    let mut series = vec![
        Series {
            label: "supervised".into(),
            points: super_points,
        },
        Series {
            label: "baseline".into(),
            points: base_points,
        },
    ];
    series.append(&mut cdf_series);

    FigureData {
        id: "soak",
        title: "chaos soak: supervised vs bare module fleet under misbehaviour storms; live upgrade under concurrent MQ TX".into(),
        axes: ("misbehaviour rate (per round per module)", "delivered work fraction"),
        series,
        headlines,
        notes: vec![
            "storms: seeded restart_storm fault points drive forbidden probes; quarantine at the kernel's violation budget".into(),
            "supervisor: exponential backoff on a virtual clock, restart from the cached image (no recompile, attestation re-verified)".into(),
            "asserted every run: supervised >= baseline at every rate; exact per-site trace reconciliation through restarts".into(),
            "asserted every run: upgrade drops zero frames, duplicates zero frames, admits zero stale grants across the epoch bump".into(),
            "recovery-cdf-r* series: restart latency CDF in supervision rounds at the top storm rate".into(),
        ],
    }
}

/// One timed forwarding pass over a fresh driver: offered frames from a
/// seeded [`kop_net::FlowGen`] are injected into the RX DMA engine,
/// NAPI-polled, rewritten, and transmitted back out into a ledger. Every
/// pass is fully audited — the forwarding rate is only reported if the
/// ledger proves zero loss (beyond counted wire drops), zero duplication,
/// and zero reordering.
fn forward_once<M: MemSpace>(
    mem: M,
    seed: u64,
    flows: usize,
    offered: u64,
    budget: u64,
) -> (f64, kop_net::ForwardReport, u64) {
    let mut drv = E1000Driver::probe(mem).expect("probe");
    drv.up().expect("up");
    let mut gen = kop_net::FlowGen::new(seed, flows);
    let mut ledger = kop_net::LedgerSink::new();
    let t0 = Instant::now();
    let rep = kop_net::run_forward(&mut drv, &mut gen, &mut ledger, offered, budget)
        .expect("forwarding run");
    let dt = t0.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(
        rep.forwarded, rep.accepted,
        "every accepted frame forwarded"
    );
    assert_eq!(rep.unparseable, 0);
    assert_eq!(ledger.frames, rep.forwarded);
    assert_eq!(ledger.duplicates, 0, "zero duplicated frames");
    assert_eq!(ledger.unsequenced, 0);
    assert_eq!(
        ledger.missing(rep.offered).len() as u64,
        rep.wire_dropped,
        "every missing sequence accounted for by a counted wire drop"
    );
    (rep.forwarded as f64 / dt, rep, drv.counts().guard_calls)
}

/// FWD: the receive/forwarding benchmark (`reproduce forward`) — the RX
/// mirror of the paper's TX-only evaluation. Flow-level offered load
/// (thousands of flows, heavy-tailed sizes, seeded bursts) is DMA'd into
/// policy-guarded buffers, serviced NAPI-style (ISR entry, budgeted
/// polls, batched RDT recycling, re-arm on drain), parsed with guarded
/// header reads, rewritten, and transmitted back out the guarded TX
/// path.
///
/// Asserted on every run, not just measured: (a) baseline and guarded
/// forwarding produce byte-identical wire output and identical
/// [`kop_net::ForwardReport`]s from the same seed; (b) every queue's
/// ledger audit is exact at every scale; (c) per-site trace attribution
/// across the combined RX+TX path reconciles exactly with the guard
/// counter; (d) a policy-churn storm with an epoch bump mid-load admits
/// zero stale grants; (e) the `@fwd_rewrite` KIR module loads under
/// static verification and both execution engines produce byte-identical
/// rewrites matching the native datapath.
pub fn forward() -> FigureData {
    use kop_e1000e::{DirectMem, E1000Device, GuardedMem};
    use kop_interp::{Engine, ExecStats, Interp};
    use std::sync::atomic::{AtomicU64, Ordering as AO};
    use std::sync::Arc;

    let (loads, repeats, flows, budget): (&[u64], usize, usize, u64) = if quick() {
        (&[300, 600], 2, 256, 64)
    } else {
        (&[1_000, 2_000, 4_000, 8_000], 4, 512, 64)
    };

    let mut headlines = Vec::new();
    let mut notes = Vec::new();

    // ---- Offered-load sweep: guarded vs baseline forwarding rate. ----
    // Same seed per load point, min-of-repeats wall clock; the reports
    // themselves must be identical (the guards change timing, never
    // behaviour).
    let mut base_pts = Vec::new();
    let mut guard_pts = Vec::new();
    for (i, &offered) in loads.iter().enumerate() {
        let seed = 4_100 + i as u64 * 17;
        let mut base_best = 0f64;
        let mut guard_best = 0f64;
        for _ in 0..repeats {
            let (rate_b, rep_b, _) = forward_once(
                DirectMem::with_defaults(E1000Device::default()),
                seed,
                flows,
                offered,
                budget,
            );
            let (rate_g, rep_g, guard_calls) = forward_once(
                GuardedMem::new(
                    DirectMem::with_defaults(E1000Device::default()),
                    setup::two_region_policy(),
                ),
                seed,
                flows,
                offered,
                budget,
            );
            assert_eq!(
                rep_b, rep_g,
                "baseline and guarded forwarding must be behaviourally identical"
            );
            assert!(guard_calls > 0);
            base_best = base_best.max(rate_b);
            guard_best = guard_best.max(rate_g);
        }
        base_pts.push((offered as f64, base_best));
        guard_pts.push((offered as f64, guard_best));
        headlines.push((format!("base_fwd_rate_o{offered}"), base_best));
        headlines.push((format!("guard_fwd_rate_o{offered}"), guard_best));
    }
    let top = *loads.last().expect("nonempty loads");
    let slowdown = base_pts.last().expect("base").1 / guard_pts.last().expect("guard").1;
    headlines.push((format!("guard_slowdown_o{top}"), slowdown));

    // ---- Byte identity: the guarded forwarder's wire output is the ----
    // baseline's, frame for frame.
    {
        let seed = 4_400;
        let offered = loads[0];
        fn run<M: MemSpace>(
            mut drv: E1000Driver<M>,
            sink: &mut kop_net::PacketSink,
            seed: u64,
            flows: usize,
            offered: u64,
            budget: u64,
        ) -> kop_net::ForwardReport {
            let mut gen = kop_net::FlowGen::new(seed, flows);
            kop_net::run_forward(&mut drv, &mut gen, sink, offered, budget).expect("forward")
        }
        let mut base_sink = kop_net::PacketSink::capturing(offered as usize);
        let mut drv =
            E1000Driver::probe(DirectMem::with_defaults(E1000Device::default())).expect("probe");
        drv.up().expect("up");
        run(drv, &mut base_sink, seed, flows, offered, budget);
        let mut guard_sink = kop_net::PacketSink::capturing(offered as usize);
        let mem = GuardedMem::new(
            DirectMem::with_defaults(E1000Device::default()),
            setup::two_region_policy(),
        );
        let mut drv = E1000Driver::probe(mem).expect("probe");
        drv.up().expect("up");
        run(drv, &mut guard_sink, seed, flows, offered, budget);
        assert_eq!(base_sink.frames, guard_sink.frames);
        assert_eq!(
            base_sink.captured_raw(),
            guard_sink.captured_raw(),
            "byte-identical forwarded frames"
        );
        headlines.push(("byte_identical_frames".into(), base_sink.frames as f64));
    }

    // ---- Per-queue RX scaling: N forwarding queues over one shared ----
    // policy, each queue's ledger audited, guard calls reconciled with
    // the shared policy's check counter per run.
    let queue_counts: &[usize] = if quick() { &[1, 2] } else { &[1, 2, 4] };
    let per_queue = if quick() { 300 } else { 1_500 };
    let mut mq_pts = Vec::new();
    for &q in queue_counts {
        let pm = Arc::new(PolicyModule::two_region_paper_policy());
        let mut best = 0f64;
        for r in 0..repeats {
            let before = pm.stats().checks;
            let report =
                kop_net::run_mq_forward(q, per_queue, flows, 8_800 + r as u64, budget, |_| {
                    GuardedMem::new(
                        DirectMem::with_defaults(E1000Device::default()),
                        Arc::clone(&pm),
                    )
                })
                .expect("mq forward");
            assert!(report.all_clean(), "every queue's ledger audit is exact");
            assert_eq!(
                pm.stats().checks - before,
                report.guard_calls(),
                "every guard on every RX queue reached the shared policy"
            );
            best = best.max(report.frames_per_sec());
        }
        mq_pts.push((q as f64, best));
        headlines.push((format!("mq_fwd_rate_q{q}"), best));
    }

    // Striping the policy counters removed the shared-cell ping-pong
    // that once made two queues *slower* than one; hold that line with a
    // monotone-with-slack scaling assertion over the per-queue rates.
    // Like the SMP figure's scaling asserts, this is only meaningful in
    // the standalone quick smoke run on a multi-core host — under
    // `cargo test` sibling tests pollute the scheduler and per-queue
    // rates are noise.
    const MQ_SLACK: f64 = 0.85;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if quick() && cores >= 4 {
        for w in mq_pts.windows(2) {
            let ((ql, lo), (qh, hi)) = (w[0], w[1]);
            assert!(
                hi >= lo * MQ_SLACK,
                "mq scaling anomaly: q{qh} rate {hi:.0} fps < {MQ_SLACK} x q{ql} rate {lo:.0} fps"
            );
        }
    }
    headlines.push(("mq_monotonic_slack".into(), MQ_SLACK));

    // ---- Per-site trace reconciliation across the combined RX+TX ----
    // path: profile exactly one forwarding window and require the
    // per-site totals to equal the driver's guard-call delta.
    {
        let tracer = kop_trace::Tracer::with_capacity(kop_trace::DEFAULT_CAPACITY);
        let mem = kop_e1000e::GuardedMem::with_tracer(
            DirectMem::with_defaults(E1000Device::default()),
            setup::two_region_policy(),
            Arc::clone(&tracer),
        );
        let mut drv = E1000Driver::probe(mem).expect("probe");
        drv.up().expect("up");
        tracer.set_enabled(true);
        let before = drv.counts();
        let mut gen = kop_net::FlowGen::new(4_500, flows);
        let mut ledger = kop_net::LedgerSink::new();
        let rep = kop_net::run_forward(&mut drv, &mut gen, &mut ledger, loads[0], budget)
            .expect("traced forward");
        let guard_calls = drv.counts().since(&before).guard_calls;
        assert_eq!(
            tracer.total_checks(),
            guard_calls,
            "per-site profile totals must reconcile with the RX+TX guard counter"
        );
        let sites = tracer.profile_snapshot();
        assert!(!sites.is_empty(), "guard sites were profiled");
        for (meta, prof) in &sites {
            notes.push(format!(
                "site {}/{}: hits {} ({:.1}%)",
                meta.module,
                meta.label,
                prof.hits,
                100.0 * prof.hits as f64 / guard_calls.max(1) as f64
            ));
        }
        headlines.push(("traced_guard_calls".into(), guard_calls as f64));
        headlines.push(("traced_sites".into(), sites.len() as f64));
        headlines.push(("traced_forwarded".into(), rep.forwarded as f64));
        headlines.push((
            "traced_polls_per_irq".into(),
            rep.polls as f64 / rep.irqs.max(1) as f64,
        ));
    }

    // ---- Policy-churn epoch bump mid-load: a ruleset-reload storm ----
    // runs concurrently with guarded forwarding, then the epoch bumps;
    // once the swap generation is published, no admit may observe an
    // older policy generation.
    let stale_admits;
    let generation_delta;
    let churn_forwarded;
    {
        let pm = Arc::new(PolicyModule::two_region_paper_policy());
        let ruleset = pm.regions();
        let gen_before = pm.store_generation();
        let swap_gen = AtomicU64::new(u64::MAX);
        let stale = AtomicU64::new(0);
        let chunks = if quick() { 6u64 } else { 16 };
        let per_chunk = if quick() { 60u64 } else { 150 };
        let churns = if quick() { 200u64 } else { 1_000 };

        churn_forwarded = std::thread::scope(|s| {
            let handle = {
                let pm = Arc::clone(&pm);
                let swap_gen = &swap_gen;
                let stale = &stale;
                s.spawn(move || {
                    let mem = GuardedMem::new(
                        DirectMem::with_defaults(E1000Device::default()),
                        Arc::clone(&pm),
                    );
                    let mut drv = E1000Driver::probe(mem).expect("probe churn");
                    drv.up().expect("up churn");
                    let mut gen = kop_net::FlowGen::new(9_090, flows);
                    let mut ledger = kop_net::LedgerSink::new();
                    let mut forwarded = 0u64;
                    let mut dropped = 0u64;
                    for _ in 0..chunks {
                        // Stale-grant discipline: after the swap epoch is
                        // published, every admit must observe a policy
                        // generation at or beyond it.
                        let sg = swap_gen.load(AO::SeqCst);
                        let g = pm.store_generation();
                        if sg != u64::MAX && g < sg {
                            stale.fetch_add(1, AO::SeqCst);
                        }
                        let rep = kop_net::run_forward(
                            &mut drv,
                            &mut gen,
                            &mut ledger,
                            per_chunk,
                            budget,
                        )
                        .expect("churn chunk");
                        forwarded += rep.forwarded;
                        dropped += rep.wire_dropped;
                    }
                    assert_eq!(ledger.duplicates, 0);
                    assert_eq!(ledger.frames, forwarded);
                    assert_eq!(
                        ledger.missing(chunks * per_chunk).len() as u64,
                        dropped,
                        "churn-phase loss accounting is exact"
                    );
                    forwarded
                })
            };
            // Main thread, concurrent with forwarding: reload the same
            // ruleset over and over (each reload is one atomic publish),
            // then bump the epoch and publish the swap generation.
            for _ in 0..churns {
                pm.replace_regions(ruleset.iter().copied())
                    .expect("ruleset reload");
            }
            let g = pm.bump_epoch();
            swap_gen.store(g, AO::SeqCst);
            handle.join().expect("churn worker")
        });
        stale_admits = stale.load(AO::SeqCst);
        generation_delta = pm.store_generation() - gen_before;
        assert_eq!(
            stale_admits, 0,
            "zero stale-grant admits across the mid-load epoch bump"
        );
        assert!(
            generation_delta > churns,
            "the churn storm really published"
        );
    }
    headlines.push(("churn_stale_admits".into(), stale_admits as f64));
    headlines.push(("churn_generation_delta".into(), generation_delta as f64));
    headlines.push(("churn_forwarded".into(), churn_forwarded as f64));

    // ---- The rewrite as a transformed module: `@fwd_rewrite` loads ----
    // under static verification and both engines produce byte-identical
    // rewrites matching the native datapath.
    {
        let key = CompilerKey::from_passphrase("operator-key", "carat-kop-dev");
        let out = compile_module(
            corpus::parse(corpus::FORWARD_IR),
            &CompileOptions::carat_kop(),
            &key,
        )
        .expect("compile fwd-rewrite");
        let own_mac: [u8; 6] = [0x02, 0x4b, 0x4f, 0x50, 0x00, 0x63];
        let own48 = u64::from_le_bytes([
            own_mac[0], own_mac[1], own_mac[2], own_mac[3], own_mac[4], own_mac[5], 0, 0,
        ]);
        let wire = kop_net::FlowGen::new(31, 4).next_frame();
        let calls = 64u64;

        let ir_run = |engine: Engine| -> (Vec<u8>, ExecStats) {
            let mut kernel = Kernel::boot(
                setup::two_region_policy(),
                vec![key.clone()],
                KernelConfig {
                    verification: kop_kernel::Verification::SignatureAndStatic,
                    ..KernelConfig::default()
                },
            );
            kernel
                .insmod(&out.signed)
                .expect("fwd-rewrite loads under static verification");
            let rx = kernel.kmalloc(2_048).expect("rx buffer");
            let tx = kernel.kmalloc(2_048).expect("tx buffer");
            kernel.mem.write_bytes(rx, &wire).expect("seed rx buffer");
            let stats = {
                let mut interp = Interp::new(&mut kernel).expect("interp");
                interp.set_engine(engine);
                for _ in 0..calls {
                    interp
                        .call(
                            "fwd-rewrite",
                            "fwd_rewrite",
                            &[rx.raw(), tx.raw(), own48, wire.len() as u64],
                        )
                        .expect("fwd_rewrite call");
                }
                interp.stats()
            };
            let mut tx_bytes = vec![0u8; wire.len()];
            kernel.mem.read_bytes(tx, &mut tx_bytes).expect("tx back");
            (tx_bytes, stats)
        };

        let (tree_tx, tree_stats) = ir_run(Engine::Tree);
        let (vm_tx, vm_stats) = ir_run(Engine::Bytecode);
        assert_eq!(tree_stats, vm_stats, "engine ExecStats must match");
        assert_eq!(tree_tx, vm_tx, "engines produce byte-identical rewrites");
        assert!(tree_stats.guards > 0, "the carat build executes guards");

        // The KIR rewrite equals the native one: destination is the
        // original source, source is the forwarder, everything else is
        // untouched.
        let mut expect = wire.clone();
        expect[0..6].copy_from_slice(&wire[6..12]);
        expect[6..12].copy_from_slice(&own_mac);
        assert_eq!(
            tree_tx, expect,
            "the transformed module's rewrite matches the native datapath"
        );
        headlines.push((
            "ir_guards_per_rewrite".into(),
            (tree_stats.guards / calls) as f64,
        ));
        headlines.push(("ir_dynamic_guards".into(), tree_stats.guards as f64));
    }

    notes.push(
        "offered-load sweep: same seed per point; baseline and guarded ForwardReports asserted identical, wire bytes asserted identical".into(),
    );
    notes.push(
        "mq_fwd_rate_q*: N RX queues forwarding concurrently over one shared policy; ledger audits and guard reconciliation asserted per run".into(),
    );
    notes.push(format!(
        "policy churn: ruleset reloads concurrent with forwarding, epoch bump mid-load -> {stale_admits} stale admits (asserted zero)"
    ));
    notes.push(
        "@fwd_rewrite: compiled, attested, loaded under SignatureAndStatic; tree and bytecode engines byte-identical and equal to the native rewrite".into(),
    );

    let series = vec![
        Series {
            label: "guarded".into(),
            points: guard_pts,
        },
        Series {
            label: "baseline".into(),
            points: base_pts,
        },
        Series {
            label: "mq-scaling".into(),
            points: mq_pts,
        },
    ];

    FigureData {
        id: "forward",
        title: "RX path + guarded forwarding: rate vs offered load, per-queue scaling, trace reconciliation, churn, engine equivalence".into(),
        axes: ("offered frames | queues", "forwarded frames/s"),
        series,
        headlines,
        notes,
    }
}

/// FLEET: the policy engine at consolidation scale (DESIGN §3.19).
///
/// Four sub-experiments, each asserting its own acceptance property:
///
/// 1. **Snapshot-store p99 sweep** — per-check p99 latency vs module
///    count (16 rules per module), flat linear scan vs the frozen
///    sorted / interval indexes. Flat grows ≥ 10× from 1 → 256
///    modules; frozen stays within 2× (sub-linear, O(log n)).
/// 2. **Namespaced MQ forwarding** — per-tenant policies resolved
///    through the sharded [`NamespaceStore`]; aggregate guarded
///    throughput at a 256-module registry ≥ 0.8× the 1-module rate,
///    with exact per-tenant guard-call reconciliation.
/// 3. **Fleet-wide upgrade storm** — ruleset churn across every
///    tenant, live re-registrations (fresh namespace ids), and a
///    fleet revocation mid-load: zero stale-grant admits, exact
///    ledger accounting, namespace ids never reused.
/// 4. **Concurrent insmod storm** — 64 modules staged on worker
///    threads through [`kop_kernel::ModuleStager`] while the guard
///    check path runs: checks never stall (bounded p99), and all 64
///    commit through the short reserve/commit sections.
pub fn fleet() -> FigureData {
    use kop_e1000e::{DirectMem, E1000Device, GuardedMem};
    use kop_policy::{FrozenKind, FrozenStore, NamespaceStore};
    use std::hint::black_box;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AO};
    use std::sync::Arc;

    let mut headlines = Vec::new();
    let mut notes = Vec::new();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    const REGIONS_PER_MODULE: usize = 16;
    const REGION_STRIDE: u64 = 0x10_000;
    const FLEET_BASE: u64 = 0x10_0000;

    /// The consolidated rule set of an `n`-module fleet: 16 disjoint
    /// regions per module, laid out contiguously.
    fn fleet_regions(modules: usize) -> Vec<Region> {
        (0..(modules * REGIONS_PER_MODULE) as u64)
            .map(|k| {
                Region::new(
                    VAddr(FLEET_BASE + k * REGION_STRIDE),
                    Size(0x1000),
                    Protection::READ_WRITE,
                )
                .expect("fleet region")
            })
            .collect()
    }

    /// Deterministic per-tenant probe streams: each 64-probe batch is
    /// one tenant's guard activity, localized to that module's 16
    /// rules (~3/4 hits, 1/4 misses in its gaps). This is the fleet
    /// workload — a module only ever checks its own addresses — while
    /// the *store* still carries the whole consolidated rule set, so
    /// every check still pays the full-fleet search.
    fn fleet_probes(modules: usize, count: usize) -> Vec<(VAddr, Size, AccessFlags)> {
        let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ (modules as u64);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let module = (next() % modules as u64) * REGIONS_PER_MODULE as u64;
            for _ in 0..64 {
                let k = module + next() % REGIONS_PER_MODULE as u64;
                let off = if next() % 4 == 0 { 0x8000 } else { next() % 0xff8 };
                out.push((
                    VAddr(FLEET_BASE + k * REGION_STRIDE + off),
                    Size(8),
                    AccessFlags::RW,
                ));
                if out.len() == count {
                    break;
                }
            }
        }
        out
    }

    /// Per-check latency (ns) of each 64-probe batch.
    fn batch_lat(
        run: &mut impl FnMut(&(VAddr, Size, AccessFlags)),
        probes: &[(VAddr, Size, AccessFlags)],
    ) -> Vec<f64> {
        probes
            .chunks(64)
            .map(|chunk| {
                let t0 = Instant::now();
                for p in chunk {
                    run(p);
                }
                t0.elapsed().as_secs_f64() / chunk.len() as f64 * 1e9
            })
            .collect()
    }

    /// p99 over a set of per-check batch latencies.
    fn p99_of(mut v: Vec<f64>) -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let idx = ((v.len() as f64 * 0.99) as usize).min(v.len() - 1);
        v[idx]
    }

    /// p99 of per-check latency. Each batch's latency is the min
    /// across repeats — the batch's actual cost for its probe mix,
    /// with scheduler preemption spikes shed — and the p99 is then
    /// taken across batches, so it still reflects the worst tenants'
    /// probe mixes rather than host noise.
    fn p99_ns(
        mut run: impl FnMut(&(VAddr, Size, AccessFlags)),
        probes: &[(VAddr, Size, AccessFlags)],
        repeats: usize,
    ) -> f64 {
        let mut mins = batch_lat(&mut run, probes);
        for _ in 1..repeats {
            for (m, v) in mins.iter_mut().zip(batch_lat(&mut run, probes)) {
                *m = m.min(v);
            }
        }
        p99_of(mins)
    }

    // ---- 1. Snapshot-store p99 sweep: flat scan vs frozen indexes ----
    let fleet_sizes: &[usize] = if quick() {
        &[1, 16, 64, 256]
    } else {
        &[1, 4, 16, 64, 256, 1000]
    };
    // Enough 64-probe batches that p99 sits below the worst handful
    // (scheduler spikes live strictly above the 99th percentile). The
    // quick smoke run takes more repeats — it is the one that asserts
    // the timing bounds; the full run favors sweep breadth (m=1000,
    // where the flat scan alone dominates the wall clock).
    let probe_count = 16_384;
    let repeats = if quick() { 5 } else { 3 };
    // Measure one fleet size: p99 for the flat scan, the frozen sorted
    // index, and the frozen interval index (the consolidated rules plus
    // one fleet-wide shared window forcing the layered decomposition).
    let sweep = |n: usize| -> (f64, f64, f64) {
        let regions = fleet_regions(n);
        let probes = fleet_probes(n, probe_count);
        let flat = FrozenStore::flat(regions.clone());
        let sorted = FrozenStore::build(regions.clone());
        assert_eq!(sorted.kind(), FrozenKind::Sorted, "disjoint fleet freezes sorted");
        let mut overlapping = regions;
        overlapping.push(
            Region::new(
                VAddr(FLEET_BASE),
                Size((n * REGIONS_PER_MODULE) as u64 * REGION_STRIDE),
                Protection::READ_ONLY,
            )
            .expect("shared window"),
        );
        let interval = FrozenStore::build(overlapping);
        assert_eq!(interval.kind(), FrozenKind::Interval, "overlap freezes interval");
        (
            p99_ns(|&(a, s, f)| { black_box(flat.lookup_frozen(a, s, f)); }, &probes, repeats),
            p99_ns(|&(a, s, f)| { black_box(sorted.lookup_frozen(a, s, f)); }, &probes, repeats),
            p99_ns(|&(a, s, f)| { black_box(interval.lookup_frozen(a, s, f)); }, &probes, repeats),
        )
    };
    let mut flat_pts = Vec::new();
    let mut sorted_pts = Vec::new();
    let mut interval_pts = Vec::new();
    for &n in fleet_sizes {
        let (p_flat, p_sorted, p_interval) = sweep(n);
        flat_pts.push((n as f64, p_flat));
        sorted_pts.push((n as f64, p_sorted));
        interval_pts.push((n as f64, p_interval));
        headlines.push((format!("flat_p99_ns_m{n}"), p_flat));
        headlines.push((format!("frozen_sorted_p99_ns_m{n}"), p_sorted));
        headlines.push((format!("frozen_interval_p99_ns_m{n}"), p_interval));
    }
    let at = |pts: &[(f64, f64)], n: usize| {
        pts.iter()
            .find(|(x, _)| *x == n as f64)
            .map(|(_, y)| *y)
            .expect("sweep point")
    };
    let flat_growth = at(&flat_pts, 256) / at(&flat_pts, 1);
    let mut sorted_growth = at(&sorted_pts, 256) / at(&sorted_pts, 1);
    let mut interval_growth = at(&interval_pts, 256) / at(&interval_pts, 1);
    assert!(
        flat_growth >= 10.0,
        "the flat scan must degrade super-linearly: 1->256 modules grew only {flat_growth:.1}x"
    );
    // The frozen sub-linearity bound is a timing assert; like the SMP
    // and forward scaling asserts it is only meaningful in the
    // standalone quick smoke run on a multi-core host. At ~20 ns
    // absolute p99 the ratio is noise-sensitive, so a growth over the
    // bound gets re-measured at the two endpoints (min of attempts —
    // genuine super-linear growth reproduces, host contention doesn't).
    if quick() && cores >= 4 {
        for _ in 0..2 {
            if sorted_growth <= 2.0 && interval_growth <= 2.0 {
                break;
            }
            let (_, s1, i1) = sweep(1);
            let (_, s256, i256) = sweep(256);
            sorted_growth = sorted_growth.min(s256 / s1);
            interval_growth = interval_growth.min(i256 / i1);
        }
        assert!(
            sorted_growth <= 2.0,
            "frozen sorted p99 must stay sub-linear: 1->256 modules grew {sorted_growth:.2}x"
        );
        assert!(
            interval_growth <= 2.0,
            "frozen interval p99 must stay sub-linear: 1->256 modules grew {interval_growth:.2}x"
        );
    }
    headlines.push(("flat_p99_growth_1_to_256".into(), flat_growth));
    headlines.push(("frozen_sorted_p99_growth_1_to_256".into(), sorted_growth));
    headlines.push(("frozen_interval_p99_growth_1_to_256".into(), interval_growth));

    // Authoritative store-kind sweep: the unbounded kinds carry a
    // 64-module consolidated rule set, and their frozen snapshots
    // answer exactly like the linear scan (structural, always on).
    {
        let n = 64.min(*fleet_sizes.last().expect("sizes"));
        let regions = fleet_regions(n);
        let probes = fleet_probes(n, 256);
        let reference = FrozenStore::flat(regions.clone());
        for kind in [StoreKind::Sorted, StoreKind::Splay, StoreKind::Interval] {
            let mut store = make_store(kind);
            for r in &regions {
                store.insert(*r).expect("fleet rules accepted");
            }
            let frozen = FrozenStore::build(store.snapshot());
            for &(a, s, f) in &probes {
                assert_eq!(
                    frozen.lookup_frozen(a, s, f),
                    reference.lookup_frozen(a, s, f),
                    "frozen {} snapshot diverges from the linear scan",
                    kind
                );
            }
        }
        notes.push(format!(
            "store-kind sweep: sorted/splay/interval carry {} consolidated rules; frozen snapshots bit-identical to the flat scan (table-family kinds cap at 64 rules and sit out)",
            n * REGIONS_PER_MODULE
        ));
    }

    // ---- 2. Namespaced MQ forwarding across fleet sizes ----
    let mq_fleets: &[usize] = if quick() { &[1, 256] } else { &[1, 16, 256] };
    let (mq_queues, per_queue, flows, budget) = if quick() {
        (2usize, 300u64, 256usize, 64u64)
    } else {
        (2usize, 1_500u64, 512usize, 64u64)
    };
    let mq_repeats = if quick() { 2 } else { 4 };
    let mut mq_pts = Vec::new();
    for &fleet in mq_fleets {
        let ns = Arc::new(NamespaceStore::new(Arc::new(
            PolicyModule::two_region_paper_policy(),
        )));
        // Tenants sweep the unbounded store kinds round-robin.
        let tenant_kinds = [StoreKind::Table, StoreKind::Sorted, StoreKind::Interval];
        for t in 0..fleet {
            let pm = PolicyModule::with_kind(tenant_kinds[t % tenant_kinds.len()]);
            for r in Arc::clone(ns.global()).regions() {
                pm.add_region(r).expect("tenant ruleset");
            }
            ns.register(&format!("tenant{t}"), Arc::new(pm));
        }
        assert_eq!(ns.len(), fleet);
        let queue_tenants: Vec<Arc<PolicyModule>> = (0..mq_queues)
            .map(|qi| ns.resolve(&format!("tenant{}", qi % fleet)))
            .collect();
        // Small fleets map several queues onto one tenant; reconcile
        // against each distinct policy exactly once.
        let mut distinct: Vec<&Arc<PolicyModule>> = Vec::new();
        for p in &queue_tenants {
            if !distinct.iter().any(|d| Arc::ptr_eq(d, p)) {
                distinct.push(p);
            }
        }
        let mut best = 0f64;
        for r in 0..mq_repeats {
            let before: Vec<u64> = distinct.iter().map(|p| p.stats().checks).collect();
            let report = kop_net::run_mq_forward(
                mq_queues,
                per_queue,
                flows,
                11_000 + r as u64,
                budget,
                |qi| {
                    GuardedMem::new(
                        DirectMem::with_defaults(E1000Device::default()),
                        Arc::clone(&queue_tenants[qi]),
                    )
                },
            )
            .expect("fleet mq forward");
            assert!(report.all_clean(), "every queue's ledger audit is exact");
            // Exact per-tenant reconciliation: every guard on every
            // queue reached exactly its own tenant's policy.
            let delta: u64 = distinct
                .iter()
                .zip(&before)
                .map(|(p, b)| p.stats().checks - b)
                .sum();
            assert_eq!(
                delta,
                report.guard_calls(),
                "per-tenant guard-call reconciliation at fleet={fleet}"
            );
            best = best.max(report.frames_per_sec());
        }
        mq_pts.push((fleet as f64, best));
        headlines.push((format!("fleet_fwd_rate_f{fleet}"), best));
    }
    let fleet_ratio = mq_pts.last().expect("mq").1 / mq_pts.first().expect("mq").1;
    headlines.push(("fleet_fwd_ratio_256_vs_1".into(), fleet_ratio));
    if quick() && cores >= 4 {
        assert!(
            fleet_ratio >= 0.8,
            "aggregate guarded throughput at a 256-module registry fell to {fleet_ratio:.2}x of the 1-module rate"
        );
    }

    // ---- 3. Fleet-wide upgrade storm: zero stale admits ----
    let storm_stale;
    let storm_forwarded;
    let storm_registrations;
    {
        let fleet = 16usize;
        let ns = Arc::new(NamespaceStore::new(Arc::new(
            PolicyModule::two_region_paper_policy(),
        )));
        for t in 0..fleet {
            ns.register(
                &format!("tenant{t}"),
                Arc::new(PolicyModule::two_region_paper_policy()),
            );
        }
        // The forwarding tenant; never re-registered, so its policy
        // object stays the governing one throughout.
        let pm = ns.resolve("tenant0");
        let ruleset = pm.regions();
        let revoke_epoch = AtomicU64::new(u64::MAX);
        let stale = AtomicU64::new(0);
        let chunks = if quick() { 6u64 } else { 16 };
        let per_chunk = if quick() { 60u64 } else { 150 };
        let churns = if quick() { 40u64 } else { 200 };

        let (forwarded, regs) = std::thread::scope(|s| {
            let handle = {
                let pm = Arc::clone(&pm);
                let revoke_epoch = &revoke_epoch;
                let stale = &stale;
                s.spawn(move || {
                    let mem = GuardedMem::new(
                        DirectMem::with_defaults(E1000Device::default()),
                        Arc::clone(&pm),
                    );
                    let mut drv = E1000Driver::probe(mem).expect("probe storm");
                    drv.up().expect("up storm");
                    let mut gen = kop_net::FlowGen::new(13_131, flows);
                    let mut ledger = kop_net::LedgerSink::new();
                    let mut forwarded = 0u64;
                    let mut dropped = 0u64;
                    for _ in 0..chunks {
                        // Stale-grant discipline: once the fleet
                        // revocation is published, every admit must
                        // observe the new revocation epoch.
                        let re = revoke_epoch.load(AO::SeqCst);
                        if re != u64::MAX && pm.revocation_epoch() < re {
                            stale.fetch_add(1, AO::SeqCst);
                        }
                        let rep =
                            kop_net::run_forward(&mut drv, &mut gen, &mut ledger, per_chunk, budget)
                                .expect("storm chunk");
                        forwarded += rep.forwarded;
                        dropped += rep.wire_dropped;
                    }
                    assert_eq!(ledger.duplicates, 0);
                    assert_eq!(ledger.frames, forwarded);
                    assert_eq!(
                        ledger.missing(chunks * per_chunk).len() as u64,
                        dropped,
                        "storm-phase loss accounting is exact"
                    );
                    forwarded
                })
            };
            // The storm, concurrent with forwarding: churn every
            // tenant's ruleset, live-upgrade a rotating tenant to a
            // fresh namespace id, then revoke the whole fleet.
            let mut regs = 0u64;
            for c in 0..churns {
                for t in 0..fleet {
                    ns.resolve(&format!("tenant{t}"))
                        .replace_regions(ruleset.iter().copied())
                        .expect("tenant reload");
                }
                // Upgrade one tenant per round (never tenant0).
                let t = 1 + (c as usize % (fleet - 1));
                let old_ns = ns.namespace_of(&format!("tenant{t}")).expect("registered");
                let new_ns = ns.register(
                    &format!("tenant{t}"),
                    Arc::new(PolicyModule::two_region_paper_policy()),
                );
                assert!(new_ns > old_ns, "namespace ids are never reused");
                regs += 1;
            }
            let bumped = ns.revoke_all();
            assert_eq!(bumped, fleet + 1, "every tenant plus the global policy bumped");
            revoke_epoch.store(pm.revocation_epoch(), AO::SeqCst);
            let forwarded = handle.join().expect("storm worker");
            (forwarded, regs)
        });
        assert_eq!(ns.len(), fleet, "upgrades replace, never accumulate");
        assert_eq!(ns.revocation_count(), 1);
        storm_forwarded = forwarded;
        storm_registrations = regs;
        storm_stale = stale.load(AO::SeqCst);
        assert_eq!(
            storm_stale, 0,
            "zero stale-grant admits across the fleet-wide upgrade storm"
        );
    }
    headlines.push(("storm_stale_admits".into(), storm_stale as f64));
    headlines.push(("storm_forwarded".into(), storm_forwarded as f64));
    headlines.push(("storm_registrations".into(), storm_registrations as f64));

    // ---- 4. Concurrent insmod storm: 64 modules, stall-free checks ----
    {
        let key = CompilerKey::from_passphrase("operator-key", "carat-kop-dev");
        let out = compile_module(
            corpus::synthetic_large(4),
            &CompileOptions::carat_kop(),
            &key,
        )
        .expect("compile storm module");
        let mut kernel = Kernel::boot(
            setup::two_region_policy(),
            vec![key],
            KernelConfig {
                verification: kop_kernel::Verification::SignatureAndStatic,
                ..KernelConfig::default()
            },
        );
        let pm = Arc::clone(kernel.policy());
        let probes = fleet_probes(4, 2_048);
        let mut check = |p: &(VAddr, Size, AccessFlags)| {
            black_box(pm.check(p.0, p.1, p.2).ok());
        };
        // `check` against the two-region policy answers from the
        // kernel-half rule either way — one snapshot lookup per probe.
        let p99_before = p99_ns(&mut check, &probes, 3);

        const STORM_MODULES: usize = 64;
        let stager = Arc::new(kernel.stager());
        let staged_done = AtomicUsize::new(0);
        let next_idx = AtomicUsize::new(0);
        // Leave a core for the concurrent check-measurement thread.
        let stager_threads = cores.saturating_sub(2).clamp(1, 6);
        let t0 = Instant::now();
        let (staged, p99_during) = std::thread::scope(|s| {
            let mut workers = Vec::new();
            for _ in 0..stager_threads {
                let stager = Arc::clone(&stager);
                let out = &out;
                let next_idx = &next_idx;
                let staged_done = &staged_done;
                workers.push(s.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = next_idx.fetch_add(1, AO::SeqCst);
                        if i >= STORM_MODULES {
                            break;
                        }
                        let staged = stager
                            .stage(&out.signed, Some(&format!("fleet_mod{i}")))
                            .map_err(|e| e.err)
                            .expect("storm module stages clean");
                        staged_done.fetch_add(1, AO::SeqCst);
                        mine.push(staged);
                    }
                    mine
                }));
            }
            // Concurrent guard checks: p99 over *every* check batch
            // issued while the staging storm runs.
            let mut lat = Vec::new();
            while staged_done.load(AO::SeqCst) < STORM_MODULES {
                lat.extend(batch_lat(&mut check, &probes));
            }
            lat.extend(batch_lat(&mut check, &probes));
            let mut staged = Vec::new();
            for w in workers {
                staged.extend(w.join().expect("stager thread"));
            }
            (staged, p99_of(lat))
        });
        let stage_wall = t0.elapsed().as_secs_f64();
        assert_eq!(staged.len(), STORM_MODULES);

        // The serialized tail: reserve + lower + commit for all 64.
        let t1 = Instant::now();
        let before_loaded = kernel.modules().len();
        for staged_mod in staged {
            let res = kernel.reserve_module(&staged_mod).expect("reserve");
            let lowered = staged_mod.lower(&res, kernel.tracer());
            kernel.commit_module(staged_mod, res, lowered).expect("commit");
        }
        let commit_wall = t1.elapsed().as_secs_f64();
        assert_eq!(
            kernel.modules().len() - before_loaded,
            STORM_MODULES,
            "all 64 storm modules committed"
        );
        // Each committed module still runs: one guarded call through
        // the interpreter on a few of them, with live guards.
        {
            use kop_interp::{Engine, Interp};
            let buf = kernel.kmalloc(64 * 8).expect("buf");
            for i in [0usize, 31, 63] {
                let mut interp = Interp::new(&mut kernel).expect("interp");
                interp.set_engine(Engine::Bytecode);
                interp
                    .call(&format!("fleet_mod{i}"), "work0", &[buf.raw(), 8])
                    .expect("storm module call");
                assert!(interp.stats().guards > 0, "storm module executes guards");
            }
        }

        headlines.push(("insmod_storm_modules".into(), STORM_MODULES as f64));
        headlines.push(("insmod_check_p99_before_ns".into(), p99_before));
        headlines.push(("insmod_check_p99_during_ns".into(), p99_during));
        headlines.push(("insmod_stage_wall_s".into(), stage_wall));
        headlines.push(("insmod_commit_wall_s".into(), commit_wall));
        if quick() && cores >= 4 {
            let bound = (25.0 * p99_before).max(50_000.0);
            assert!(
                p99_during <= bound,
                "guard-check p99 stalled during the insmod storm: {p99_during:.0} ns > bound {bound:.0} ns (before: {p99_before:.0} ns)"
            );
        }
        notes.push(format!(
            "insmod storm: {STORM_MODULES} modules staged on {stager_threads} thread(s) in {stage_wall:.2}s; serialized reserve+commit tail {commit_wall:.3}s; check p99 {p99_before:.0} -> {p99_during:.0} ns"
        ));
    }

    // ---- 5. Per-site trace reconciliation under a namespaced tenant ----
    {
        let tracer = kop_trace::Tracer::with_capacity(kop_trace::DEFAULT_CAPACITY);
        let ns = NamespaceStore::new(Arc::new(PolicyModule::two_region_paper_policy()));
        ns.register(
            "nic0",
            Arc::new(PolicyModule::two_region_paper_policy()),
        );
        let mem = kop_e1000e::GuardedMem::with_tracer(
            DirectMem::with_defaults(E1000Device::default()),
            ns.resolve("nic0"),
            Arc::clone(&tracer),
        );
        let mut drv = E1000Driver::probe(mem).expect("probe traced");
        drv.up().expect("up traced");
        tracer.set_enabled(true);
        let before = drv.counts();
        let mut gen = kop_net::FlowGen::new(14_500, flows);
        let mut ledger = kop_net::LedgerSink::new();
        kop_net::run_forward(&mut drv, &mut gen, &mut ledger, per_queue, budget)
            .expect("traced fleet forward");
        let guard_calls = drv.counts().since(&before).guard_calls;
        assert_eq!(
            tracer.total_checks(),
            guard_calls,
            "per-site profile totals reconcile exactly under a namespaced tenant"
        );
        headlines.push(("traced_tenant_guard_calls".into(), guard_calls as f64));
    }

    notes.push(format!(
        "p99 sweep: {REGIONS_PER_MODULE} rules/module, probes 3/4 hits; flat 1->256 growth {flat_growth:.1}x (assert >= 10x), frozen sorted {sorted_growth:.2}x / interval {interval_growth:.2}x (assert <= 2x, quick multi-core runs)"
    ));
    notes.push(format!(
        "mq fleet: {mq_queues} queues over per-tenant namespaces; 256-module aggregate rate {fleet_ratio:.2}x of 1-module (assert >= 0.8x, quick multi-core runs)"
    ));
    notes.push(format!(
        "upgrade storm: 16 tenants churned, {storm_registrations} live re-registrations (ids strictly monotone), fleet revocation mid-load -> {storm_stale} stale admits (asserted zero)"
    ));

    FigureData {
        id: "fleet",
        title: "Fleet-scale policy engine: frozen-store p99 sweep, namespaced MQ forwarding, upgrade storm, stall-free insmod".into(),
        axes: ("modules | fleet size", "p99 ns | frames/s"),
        series: vec![
            Series {
                label: "flat-scan".into(),
                points: flat_pts,
            },
            Series {
                label: "frozen-sorted".into(),
                points: sorted_pts,
            },
            Series {
                label: "frozen-interval".into(),
                points: interval_pts,
            },
            Series {
                label: "mq-fleet".into(),
                points: mq_pts,
            },
        ],
        headlines,
        notes,
    }
}

/// Run every generator (the `reproduce all` path).
pub fn all_figures() -> Vec<FigureData> {
    let mut figs = vec![
        fig3(),
        fig4(),
        fig5(),
        fig6(),
        fig7(),
        claims(),
        analysis(),
        ablation_ds(),
        ablation_opt(),
        opt(),
        trace(),
        exec(),
        jit(),
        smp(),
        soak(),
        forward(),
        fleet(),
    ];
    figs.extend(resilience());
    figs
}
