//! Machine profiles and the per-packet cycle-cost model.
//!
//! Two presets mirror the paper's testbed (§4.2):
//!
//! * **R415** — "an outdated Dell R415 containing dual 2.2 GHz AMD 4122
//!   processors" — the *slow* machine, where guard overhead is most
//!   visible (<0.8% median throughput change, Figure 3).
//! * **R350** — "a current Dell R350 containing a 2.8 GHz Intel Xeon
//!   E-2378G" — the *fast* machine, where improved caching, branch
//!   prediction, and speculation make the overhead "almost unmeasurable"
//!   (<0.1%, Figure 4). That microarchitectural effect is modelled as
//!   `predictor_discount`, a multiplier on all guard-path cycles.
//!
//! Cost parameters are calibrated so the simulated medians land near the
//! paper's reported numbers (~118k pps on the R415, ~112k pps on the R350
//! for 128-byte packets; `sendmsg` medians 686 vs 694 cycles on the R350).

use kop_core::Cycles;

/// Work performed per transmitted packet — *counted by the driver model*,
/// not assumed. Produced by `kop-e1000e`'s transmit path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PacketWork {
    /// CPU loads the driver performed (guarded under CARAT KOP).
    pub reads: u64,
    /// CPU stores the driver performed (guarded under CARAT KOP).
    pub writes: u64,
    /// MMIO register accesses (also guarded — they are loads/stores).
    pub mmio: u64,
    /// Bytes moved by the NIC's DMA engine (never guarded, §4: "the
    /// overwhelming amount of data transfer occurs due to the DMA engine
    /// ... which is not checked (and thus not slowed)").
    pub dma_bytes: u64,
}

impl PacketWork {
    /// Total guarded CPU accesses.
    pub fn guarded_accesses(&self) -> u64 {
        self.reads + self.writes + self.mmio
    }
}

/// Cost model for one guard invocation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuardCostModel {
    /// Fixed cost of the call + flag checks (cycles).
    pub call_cycles: f64,
    /// Cost per region-table entry scanned (cycles) — the linear-scan term
    /// Figure 5 varies.
    pub per_entry_cycles: f64,
}

impl GuardCostModel {
    /// Cycles for one guard with the matching region at scan position
    /// `hit_pos` (0-based; a miss scans the whole table).
    pub fn guard_cycles(&self, hit_pos: u64) -> f64 {
        self.call_cycles + self.per_entry_cycles * (hit_pos as f64 + 1.0)
    }
}

/// A simulated machine.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// Core clock in Hz.
    pub cpu_hz: f64,
    /// Cost of the `sendmsg` syscall path (user→kernel→driver entry).
    pub syscall_cycles: f64,
    /// Fixed per-packet driver/tool cost beyond the syscall (descriptor
    /// management, queue bookkeeping, tool loop).
    pub fixed_packet_cycles: f64,
    /// Cycles per wire byte (1 Gbit/s serialization seen from this CPU's
    /// clock: 8 ns/byte × cpu_hz).
    pub wire_cycles_per_byte: f64,
    /// Cycles per ordinary CPU memory access in the driver.
    pub mem_access_cycles: f64,
    /// Cycles per MMIO (uncached) register access.
    pub mmio_access_cycles: f64,
    /// Guard cost model (before the discount).
    pub guard_cost: GuardCostModel,
    /// Multiplier on guard-path cycles modelling branch prediction /
    /// speculation hiding the guard in the common case (≤ 1.0; the paper's
    /// explanation for the R350's near-zero overhead).
    pub predictor_discount: f64,
    /// Log-normal sigma of per-trial throughput jitter (dimensionless).
    pub jitter_sigma: f64,
}

impl MachineProfile {
    /// The slow machine: Dell R415, dual 2.2 GHz AMD Opteron 4122.
    pub fn r415() -> MachineProfile {
        let cpu_hz = 2.2e9;
        MachineProfile {
            name: "R415 (2.2 GHz AMD 4122)",
            cpu_hz,
            syscall_cycles: 900.0,
            fixed_packet_cycles: 15_200.0,
            wire_cycles_per_byte: 8.0e-9 * cpu_hz, // 1 Gbit/s wire
            mem_access_cycles: 6.0,
            mmio_access_cycles: 250.0,
            guard_cost: GuardCostModel {
                call_cycles: 9.2,
                per_entry_cycles: 0.8,
            },
            predictor_discount: 1.0,
            jitter_sigma: 0.012,
        }
    }

    /// The fast machine: Dell R350, 2.8 GHz Intel Xeon E-2378G.
    pub fn r350() -> MachineProfile {
        let cpu_hz = 2.8e9;
        MachineProfile {
            name: "R350 (2.8 GHz Xeon E-2378G)",
            cpu_hz,
            syscall_cycles: 460.0,
            fixed_packet_cycles: 21_450.0,
            wire_cycles_per_byte: 8.0e-9 * cpu_hz,
            mem_access_cycles: 4.0,
            mmio_access_cycles: 180.0,
            guard_cost: GuardCostModel {
                call_cycles: 6.0,
                per_entry_cycles: 0.5,
            },
            predictor_discount: 0.2,
            jitter_sigma: 0.018,
        }
    }

    /// Baseline (unguarded) cycles for one packet of `size` bytes with the
    /// driver work `w`.
    pub fn packet_cycles_base(&self, w: &PacketWork, size: u64) -> f64 {
        self.syscall_cycles
            + self.fixed_packet_cycles
            + self.wire_cycles_per_byte * size as f64
            + self.mem_access_cycles * (w.reads + w.writes) as f64
            + self.mmio_access_cycles * w.mmio as f64
    }

    /// Additional cycles CARAT KOP guards add for one packet, with the
    /// matching policy region at scan position `hit_pos`.
    pub fn packet_cycles_guard_overhead(&self, w: &PacketWork, hit_pos: u64) -> f64 {
        self.predictor_discount
            * w.guarded_accesses() as f64
            * self.guard_cost.guard_cycles(hit_pos)
    }

    /// Cycles for one `sendmsg` call *as seen from user space* (Figure 7):
    /// "effectively the cost of a system call and (usually) the time
    /// needed to queue a set of transmit DMA descriptors on a ring buffer"
    /// — i.e. syscall entry/exit plus the driver's CPU work, **excluding**
    /// wire serialization and the fixed tool-loop costs that only matter
    /// for throughput.
    pub fn sendmsg_latency_cycles(&self, w: &PacketWork) -> f64 {
        self.syscall_cycles
            + self.mem_access_cycles * (w.reads + w.writes) as f64
            + self.mmio_access_cycles * w.mmio as f64
    }

    /// Convert cycles to seconds on this machine.
    pub fn cycles_to_secs(&self, cycles: f64) -> f64 {
        cycles / self.cpu_hz
    }

    /// Convert a per-packet cycle cost to packets/second.
    pub fn cycles_to_pps(&self, cycles_per_packet: f64) -> f64 {
        self.cpu_hz / cycles_per_packet
    }

    /// Integer cycles (for latency histograms).
    pub fn to_cycles(&self, cycles: f64) -> Cycles {
        Cycles(cycles.round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical per-packet driver work for a single e1000e transmit
    /// (validated against the driver model in kop-e1000e's tests).
    fn typical_work() -> PacketWork {
        // Counted by kop-e1000e's driver tests: per transmitted packet the
        // driver performs 3 CPU loads (descriptor-status poll + stats),
        // 8 CPU stores (header, descriptor, stats, status clear), and one
        // MMIO doorbell write; payload bytes travel by DMA.
        PacketWork {
            reads: 3,
            writes: 8,
            mmio: 1,
            dma_bytes: 142,
        }
    }

    #[test]
    fn r415_median_throughput_near_paper() {
        let m = MachineProfile::r415();
        let base = m.packet_cycles_base(&typical_work(), 128);
        let pps = m.cycles_to_pps(base);
        // Paper Figure 3: roughly 105k–130k pps; median ~118k.
        assert!(pps > 105_000.0 && pps < 130_000.0, "pps={pps}");
    }

    #[test]
    fn r350_median_throughput_near_paper() {
        let m = MachineProfile::r350();
        let base = m.packet_cycles_base(&typical_work(), 128);
        let pps = m.cycles_to_pps(base);
        // Paper Figure 4: roughly 90k–130k pps; median ~112k.
        assert!(pps > 100_000.0 && pps < 125_000.0, "pps={pps}");
    }

    #[test]
    fn r415_guard_overhead_under_one_percent() {
        let m = MachineProfile::r415();
        let w = typical_work();
        let base = m.packet_cycles_base(&w, 128);
        let over = m.packet_cycles_guard_overhead(&w, 0);
        let rel = over / base;
        // Paper: "<0.8%" relative change in median.
        assert!(rel > 0.002 && rel < 0.008, "relative overhead {rel}");
    }

    #[test]
    fn r350_guard_overhead_under_point_one_percent() {
        let m = MachineProfile::r350();
        let w = typical_work();
        let base = m.packet_cycles_base(&w, 128);
        let over = m.packet_cycles_guard_overhead(&w, 0);
        let rel = over / base;
        // Paper: "<0.1%", "almost unmeasurable".
        assert!(rel < 0.001, "relative overhead {rel}");
        assert!(rel > 0.0);
    }

    #[test]
    fn region_count_effect_small_but_present() {
        // Figure 5: n=64 visibly slower than n=2, but still <1% of median.
        let m = MachineProfile::r350();
        let w = typical_work();
        let base = m.packet_cycles_base(&w, 128);
        let over2 = m.packet_cycles_guard_overhead(&w, 1);
        let over64 = m.packet_cycles_guard_overhead(&w, 63);
        assert!(over64 > over2 * 2.0, "n=64 must cost visibly more");
        assert!(over64 / base < 0.01, "even n=64 stays under 1%");
    }

    #[test]
    fn faster_machine_hides_guards_better() {
        let slow = MachineProfile::r415();
        let fast = MachineProfile::r350();
        let w = typical_work();
        let rel_slow = slow.packet_cycles_guard_overhead(&w, 1) / slow.packet_cycles_base(&w, 128);
        let rel_fast = fast.packet_cycles_guard_overhead(&w, 1) / fast.packet_cycles_base(&w, 128);
        assert!(rel_fast < rel_slow / 3.0);
    }

    #[test]
    fn wire_cost_grows_with_packet_size() {
        let m = MachineProfile::r350();
        let w = typical_work();
        let c64 = m.packet_cycles_base(&w, 64);
        let c1500 = m.packet_cycles_base(&w, 1500);
        assert!(c1500 > c64);
        // Guard overhead constant ⇒ relative slowdown shrinks with size
        // (Figure 6's shape).
        let over = m.packet_cycles_guard_overhead(&w, 1);
        assert!(over / c1500 < over / c64);
    }

    #[test]
    fn sendmsg_latency_matches_paper_medians() {
        // Paper Figure 7 (R350, 128 B, two regions): medians 686 cycles
        // (baseline) vs 694 cycles (CARAT KOP) — within cycle-counter
        // noise of each other.
        let m = MachineProfile::r350();
        let w = typical_work();
        let base = m.sendmsg_latency_cycles(&w);
        assert!((base - 686.0).abs() < 15.0, "baseline latency {base}");
        let carat = base + m.packet_cycles_guard_overhead(&w, 1);
        assert!((carat - 694.0).abs() < 15.0, "carat latency {carat}");
        assert!(carat > base);
        assert!(carat - base < 25.0, "delta within measurement noise");
    }

    #[test]
    fn unit_conversions() {
        let m = MachineProfile::r350();
        assert!((m.cycles_to_secs(2.8e9) - 1.0).abs() < 1e-12);
        assert!((m.cycles_to_pps(2.8e6) - 1000.0).abs() < 1e-9);
        assert_eq!(m.to_cycles(693.6), Cycles(694));
    }
}
