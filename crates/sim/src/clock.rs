//! Deterministic virtual TSC and trial jitter.
//!
//! The paper measures latency "in cycles using the cycle counter" and runs
//! "many trials" whose throughput forms a distribution (the CDFs of
//! Figures 3–5). Real trials vary because of interrupts, cache state, and
//! scheduler noise; the simulation reproduces that spread with a seeded
//! log-normal jitter so runs are reproducible bit-for-bit.

use kop_core::Cycles;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A virtual cycle counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleClock {
    now: Cycles,
}

impl CycleClock {
    /// A clock at zero.
    pub fn new() -> CycleClock {
        CycleClock::default()
    }

    /// Current counter (rdtsc).
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Advance by a (possibly fractional) cycle count.
    pub fn advance(&mut self, cycles: f64) {
        self.now += Cycles(cycles.max(0.0).round() as u64);
    }

    /// Advance by an integer cycle count.
    pub fn advance_cycles(&mut self, cycles: Cycles) {
        self.now += cycles;
    }
}

/// Seeded log-normal multiplicative jitter.
///
/// `factor()` returns a multiplier with median 1.0; `sigma` controls the
/// spread. A log-normal matches the right-skewed timing noise real
/// measurement exhibits (occasional slow outliers, hard floor).
#[derive(Clone, Debug)]
pub struct Jitter {
    rng: StdRng,
    sigma: f64,
}

impl Jitter {
    /// Create with a seed (same seed ⇒ same sequence).
    pub fn new(seed: u64, sigma: f64) -> Jitter {
        Jitter {
            rng: StdRng::seed_from_u64(seed),
            sigma,
        }
    }

    /// Next multiplicative factor (median 1.0).
    pub fn factor(&mut self) -> f64 {
        // Box-Muller from two uniforms; avoids needing rand_distr.
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.sigma * z).exp()
    }

    /// Occasionally-huge outlier factor with probability `p` (models the
    /// "ring full, application descheduled" outliers the paper excludes
    /// from Figure 7 — "can be in excess of 10 million cycles").
    pub fn outlier(&mut self, p: f64, magnitude: f64) -> Option<f64> {
        if self.rng.random::<f64>() < p {
            Some(magnitude * (1.0 + self.rng.random::<f64>()))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances() {
        let mut c = CycleClock::new();
        c.advance(99.6);
        assert_eq!(c.now(), Cycles(100));
        c.advance_cycles(Cycles(10));
        assert_eq!(c.now(), Cycles(110));
        c.advance(-5.0); // clamped
        assert_eq!(c.now(), Cycles(110));
    }

    #[test]
    fn jitter_is_deterministic() {
        let mut a = Jitter::new(42, 0.02);
        let mut b = Jitter::new(42, 0.02);
        for _ in 0..100 {
            assert_eq!(a.factor(), b.factor());
        }
        let mut c = Jitter::new(43, 0.02);
        assert_ne!(a.factor(), c.factor());
    }

    #[test]
    fn jitter_centered_near_one() {
        let mut j = Jitter::new(7, 0.02);
        let n = 20_000;
        let mut sum = 0.0;
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        for _ in 0..n {
            let f = j.factor();
            sum += f;
            min = min.min(f);
            max = max.max(f);
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!(min > 0.85 && max < 1.15, "spread [{min}, {max}]");
    }

    #[test]
    fn outliers_rare_and_large() {
        let mut j = Jitter::new(9, 0.02);
        let mut count = 0;
        for _ in 0..100_000 {
            if let Some(f) = j.outlier(0.001, 10_000.0) {
                assert!(f >= 10_000.0);
                count += 1;
            }
        }
        // ~100 expected.
        assert!((20..500).contains(&count), "outliers {count}");
    }
}
