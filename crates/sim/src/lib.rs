//! # kop-sim — machine models, cycle accounting, and statistics
//!
//! The paper evaluates CARAT KOP on two physical machines (a slow Dell
//! R415 and a fast Dell R350) with an Intel 82574L NIC, measuring packet
//! throughput distributions and per-`sendmsg` cycle latencies. Those
//! machines are not available here, so this crate provides the
//! substitution: [`machine::MachineProfile`]s whose cycle-cost parameters
//! are calibrated to the paper's published medians, a deterministic
//! [`clock::CycleClock`] + jitter model so trial distributions have
//! realistic spread, a [`trial::TrialRunner`], and the
//! [`stats`] needed to regenerate each figure (CDFs, histograms,
//! medians, slowdowns).
//!
//! The key modelling choice (documented in DESIGN.md): the *event counts*
//! per packet (guarded loads/stores, MMIO writes, DMA bytes) come from the
//! actual simulated driver in `kop-e1000e` — only the *cycles per event*
//! are calibrated constants.

#![warn(missing_docs)]

pub mod clock;
pub mod machine;
pub mod stats;
pub mod trial;

pub use clock::{CycleClock, Jitter};
pub use machine::{GuardCostModel, MachineProfile, PacketWork};
pub use stats::{cdf_points, histogram, mean, median, percentile, slowdown, Summary};
pub use trial::{Trial, TrialRunner};
