//! Statistics for figure regeneration: medians, percentiles, CDF point
//! series (Figures 3–5), histograms (Figure 7), and slowdown ratios
//! (Figure 6).

/// Mean of a sample set (0 for empty).
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Median (p50).
pub fn median(samples: &[f64]) -> f64 {
    percentile(samples, 50.0)
}

/// Percentile in `[0, 100]`, linear interpolation between order statistics.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// CDF points `(value, cumulative_fraction)` — what Figures 3–5 plot.
pub fn cdf_points(samples: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let n = sorted.len();
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n as f64))
        .collect()
}

/// Fixed-width histogram over `[min, max]` with `bins` buckets — what
/// Figure 7 plots. Returns `(bucket_low_edge, count)` per bucket.
/// Out-of-range samples are clamped into the edge buckets.
pub fn histogram(samples: &[f64], min: f64, max: f64, bins: usize) -> Vec<(f64, u64)> {
    assert!(bins > 0 && max > min);
    let width = (max - min) / bins as f64;
    let mut counts = vec![0u64; bins];
    for &s in samples {
        let idx = ((s - min) / width).floor();
        let idx = (idx.max(0.0) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (min + i as f64 * width, c))
        .collect()
}

/// Summary statistics of a sample set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (p50).
    pub median: f64,
    /// 5th percentile.
    pub p5: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize samples.
    pub fn of(samples: &[f64]) -> Summary {
        Summary {
            n: samples.len(),
            mean: mean(samples),
            median: median(samples),
            p5: percentile(samples, 5.0),
            p95: percentile(samples, 95.0),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Relative change of another summary's median vs this one
    /// (`(self - other) / self`), e.g. baseline vs carat throughput.
    pub fn median_rel_change(&self, other: &Summary) -> f64 {
        (self.median - other.median) / self.median
    }
}

/// Mean slowdown `baseline/variant` per the paper's Figure 6 definition
/// (ratio of mean throughputs; >1 means the variant is slower).
pub fn slowdown(baseline_throughput: &[f64], variant_throughput: &[f64]) -> f64 {
    mean(baseline_throughput) / mean(variant_throughput)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolation() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 100.0), 4.0);
        assert_eq!(median(&s), 2.5);
        assert_eq!(percentile(&s, 50.0), 2.5);
        // Order independence.
        let shuffled = [3.0, 1.0, 4.0, 2.0];
        assert_eq!(median(&shuffled), 2.5);
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let s = [5.0, 1.0, 3.0];
        let cdf = cdf_points(&s);
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0], (1.0, 1.0 / 3.0));
        assert_eq!(cdf[2], (5.0, 1.0));
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let s = [0.5, 1.5, 1.6, 2.5, 99.0, -5.0];
        let h = histogram(&s, 0.0, 3.0, 3);
        assert_eq!(h.len(), 3);
        assert_eq!(h[0], (0.0, 2)); // 0.5 and clamped -5.0
        assert_eq!(h[1].1, 2); // 1.5, 1.6
        assert_eq!(h[2].1, 2); // 2.5 and clamped 99.0
        let total: u64 = h.iter().map(|(_, c)| c).sum();
        assert_eq!(total as usize, s.len());
    }

    #[test]
    fn summary_and_rel_change() {
        let base = Summary::of(&[100.0, 110.0, 120.0]);
        let carat = Summary::of(&[99.0, 109.0, 119.0]);
        assert_eq!(base.median, 110.0);
        let rel = base.median_rel_change(&carat);
        assert!((rel - 1.0 / 110.0).abs() < 1e-12);
    }

    #[test]
    fn slowdown_ratio() {
        let base = [100.0, 100.0];
        let variant = [98.0, 98.0];
        let s = slowdown(&base, &variant);
        assert!((s - 100.0 / 98.0).abs() < 1e-12);
        assert!(s > 1.0);
    }

    #[test]
    fn empty_inputs_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert!(cdf_points(&[]).is_empty());
    }
}
