//! Trial running: "We run many trials, launching about 100,000 packets
//! per trial. The figure plots the CDF of these trials." (§4.2)

use crate::clock::Jitter;
use crate::machine::MachineProfile;

/// One trial's outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Trial {
    /// Packets sent.
    pub packets: u64,
    /// Total cycles consumed.
    pub cycles: f64,
    /// Throughput in packets/second.
    pub pps: f64,
}

/// Runs repeated trials of a per-packet cycle cost function and collects
/// throughput samples.
pub struct TrialRunner {
    machine: MachineProfile,
    packets_per_trial: u64,
    jitter: Jitter,
}

impl TrialRunner {
    /// Create a runner. `seed` controls the deterministic jitter stream.
    pub fn new(machine: MachineProfile, packets_per_trial: u64, seed: u64) -> TrialRunner {
        let sigma = machine.jitter_sigma;
        TrialRunner {
            machine,
            packets_per_trial,
            jitter: Jitter::new(seed, sigma),
        }
    }

    /// The machine profile in use.
    pub fn machine(&self) -> &MachineProfile {
        &self.machine
    }

    /// Run one trial: `cycles_per_packet` is the deterministic per-packet
    /// cost; trial-level jitter perturbs the whole trial (cache state,
    /// interrupts land on the trial granularity, as in the paper's runs).
    pub fn run_trial(&mut self, cycles_per_packet: f64) -> Trial {
        let factor = self.jitter.factor();
        let total = cycles_per_packet * self.packets_per_trial as f64 * factor;
        let secs = self.machine.cycles_to_secs(total);
        Trial {
            packets: self.packets_per_trial,
            cycles: total,
            pps: self.packets_per_trial as f64 / secs,
        }
    }

    /// Run `n` trials and return the throughput samples.
    pub fn throughput_samples(&mut self, cycles_per_packet: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| self.run_trial(cycles_per_packet).pps)
            .collect()
    }

    /// Per-packet latency samples (for Figure 7): per-packet jitter plus
    /// rare huge outliers (ring full → deschedule) that the caller may
    /// exclude exactly as the paper does.
    pub fn latency_samples(
        &mut self,
        cycles_per_packet: f64,
        n: usize,
        outlier_p: f64,
    ) -> Vec<f64> {
        (0..n)
            .map(|_| {
                if let Some(big) = self.jitter.outlier(outlier_p, 10_000_000.0) {
                    return big;
                }
                cycles_per_packet * self.jitter.factor()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    #[test]
    fn trials_are_reproducible() {
        let mut a = TrialRunner::new(MachineProfile::r350(), 100_000, 1);
        let mut b = TrialRunner::new(MachineProfile::r350(), 100_000, 1);
        assert_eq!(a.run_trial(25_000.0), b.run_trial(25_000.0));
    }

    #[test]
    fn throughput_matches_cost() {
        let mut r = TrialRunner::new(MachineProfile::r350(), 100_000, 2);
        let samples = r.throughput_samples(25_000.0, 200);
        let s = Summary::of(&samples);
        let ideal = 2.8e9 / 25_000.0; // 112k pps
        assert!(
            (s.median - ideal).abs() / ideal < 0.01,
            "median {}",
            s.median
        );
        // Jitter produces a genuine spread.
        assert!(s.max > s.min * 1.01);
    }

    #[test]
    fn higher_cost_lower_throughput() {
        let mut r = TrialRunner::new(MachineProfile::r415(), 100_000, 3);
        let base = Summary::of(&r.throughput_samples(18_000.0, 100));
        let mut r2 = TrialRunner::new(MachineProfile::r415(), 100_000, 3);
        let slow = Summary::of(&r2.throughput_samples(18_200.0, 100));
        assert!(base.median > slow.median);
    }

    #[test]
    fn latency_outliers_present_then_excludable() {
        let mut r = TrialRunner::new(MachineProfile::r350(), 100_000, 4);
        let samples = r.latency_samples(690.0, 50_000, 0.0005);
        let outliers: Vec<&f64> = samples.iter().filter(|&&c| c > 1_000_000.0).collect();
        assert!(!outliers.is_empty(), "outliers should occur");
        // Excluding them (as Figure 7 does) leaves a tight distribution.
        let clean: Vec<f64> = samples.into_iter().filter(|&c| c < 1_000_000.0).collect();
        let s = Summary::of(&clean);
        assert!((s.median - 690.0).abs() < 20.0, "median {}", s.median);
    }
}
