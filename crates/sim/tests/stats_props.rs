//! Property tests on the statistics used to regenerate the figures — a
//! wrong percentile or a non-monotone CDF would silently corrupt every
//! experiment.

use proptest::prelude::*;

use kop_sim::{cdf_points, histogram, mean, median, percentile, Summary};

fn arb_samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1e9, 1..200)
}

proptest! {
    #[test]
    fn percentiles_are_monotone_and_bounded(samples in arb_samples()) {
        let p0 = percentile(&samples, 0.0);
        let p25 = percentile(&samples, 25.0);
        let p50 = percentile(&samples, 50.0);
        let p75 = percentile(&samples, 75.0);
        let p100 = percentile(&samples, 100.0);
        prop_assert!(p0 <= p25 && p25 <= p50 && p50 <= p75 && p75 <= p100);
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(p0, min);
        prop_assert_eq!(p100, max);
    }

    #[test]
    fn percentile_is_permutation_invariant(samples in arb_samples(), seed in any::<u64>()) {
        // Fisher-Yates with a deterministic LCG.
        let mut shuffled = samples.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        for p in [5.0, 50.0, 95.0] {
            prop_assert_eq!(percentile(&samples, p), percentile(&shuffled, p));
        }
    }

    #[test]
    fn mean_within_min_max(samples in arb_samples()) {
        let m = mean(&samples);
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= min - 1e-9 && m <= max + 1e-9);
    }

    #[test]
    fn cdf_is_a_distribution(samples in arb_samples()) {
        let cdf = cdf_points(&samples);
        prop_assert_eq!(cdf.len(), samples.len());
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "x monotone");
            prop_assert!(w[0].1 < w[1].1, "y strictly increasing");
        }
        // The CDF at the median x must be ~0.5.
        let med = median(&samples);
        let frac_below = samples.iter().filter(|&&s| s <= med).count() as f64
            / samples.len() as f64;
        prop_assert!(frac_below >= 0.5 - 1e-9);
    }

    #[test]
    fn histogram_conserves_mass(samples in arb_samples(), bins in 1usize..40) {
        let h = histogram(&samples, 0.0, 1e9, bins);
        prop_assert_eq!(h.len(), bins);
        let total: u64 = h.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total as usize, samples.len());
        // Bucket edges are evenly spaced and ascending.
        for w in h.windows(2) {
            prop_assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    fn summary_consistent(samples in arb_samples()) {
        let s = Summary::of(&samples);
        prop_assert_eq!(s.n, samples.len());
        prop_assert!(s.min <= s.p5 && s.p5 <= s.median);
        prop_assert!(s.median <= s.p95 && s.p95 <= s.max);
        prop_assert!(s.mean >= s.min && s.mean <= s.max);
    }
}
