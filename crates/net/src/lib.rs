//! # kop-net — the network substrate and measurement tool
//!
//! §4.2 of the paper: *"We bring the NIC up on a private IP address, and
//! then test using a user-level tool that sends raw Ethernet packets to a
//! fake destination. The tool can vary the number of packets sent and the
//! size of the packets. The tool measures the throughput of the packet
//! transmissions, and the latency of individual packet launches."*
//!
//! * [`frame`] — Ethernet frame types and parsing,
//! * [`skb`] — a small sk_buff pool (kernel-side packet buffers),
//! * [`sink`] — the packet sink the test NIC is attached to,
//! * [`sender`] — the user-level raw sender: each `sendmsg` drives the
//!   real driver model, counts its actual memory work, and converts it to
//!   cycles on a [`kop_sim::MachineProfile`],
//! * [`tool`] — trial orchestration (N packets per trial, many trials),
//!   producing the samples Figures 3–7 are drawn from,
//! * [`flowgen`] — seeded flow-level load generation for the receive
//!   path (thousands of flows, heavy-tailed sizes, bursts),
//! * [`forward`] — the echo/forwarding workload closing the loop
//!   RX → parse → rewrite → TX.

#![warn(missing_docs)]

pub mod flowgen;
pub mod forward;
pub mod frame;
pub mod sender;
pub mod sink;
pub mod skb;
pub mod tool;

pub use flowgen::FlowGen;
pub use forward::{
    rewrite, run_forward, run_mq_forward, ForwardQueueReport, ForwardReport, MqForwardReport,
};
pub use frame::{EtherType, Frame, MacAddr};
pub use sender::{RawSender, SendError};
pub use sink::{LedgerSink, PacketSink};
pub use skb::{SkBuff, SkBuffPool};
pub use tool::{ToolConfig, ToolReport};
