//! A small sk_buff pool.
//!
//! The kernel allocates socket buffers for every packet that crosses the
//! user/kernel boundary; the raw sender models that allocation cost by
//! recycling buffers through a freelist, the way the slab allocator
//! effectively does for hot paths.

/// A kernel packet buffer.
#[derive(Clone, Debug, Default)]
pub struct SkBuff {
    data: Vec<u8>,
    len: usize,
}

impl SkBuff {
    /// Buffer with the given capacity.
    pub fn with_capacity(cap: usize) -> SkBuff {
        SkBuff {
            data: vec![0; cap],
            len: 0,
        }
    }

    /// Copy `bytes` into the buffer ("copy_from_user").
    pub fn fill(&mut self, bytes: &[u8]) {
        assert!(bytes.len() <= self.data.len(), "skb overflow");
        self.data[..bytes.len()].copy_from_slice(bytes);
        self.len = bytes.len();
    }

    /// Valid data.
    pub fn data(&self) -> &[u8] {
        &self.data[..self.len]
    }

    /// Valid length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }
}

/// A recycling pool of sk_buffs.
#[derive(Debug, Default)]
pub struct SkBuffPool {
    free: Vec<SkBuff>,
    buf_size: usize,
    /// Total allocations that could not be served from the freelist.
    pub slab_allocs: u64,
    /// Allocations served from the freelist.
    pub recycled: u64,
}

impl SkBuffPool {
    /// Pool of buffers of `buf_size` bytes.
    pub fn new(buf_size: usize) -> SkBuffPool {
        SkBuffPool {
            free: Vec::new(),
            buf_size,
            slab_allocs: 0,
            recycled: 0,
        }
    }

    /// Allocate a buffer.
    pub fn alloc(&mut self) -> SkBuff {
        match self.free.pop() {
            Some(mut skb) => {
                self.recycled += 1;
                skb.len = 0;
                skb
            }
            None => {
                self.slab_allocs += 1;
                SkBuff::with_capacity(self.buf_size)
            }
        }
    }

    /// Return a buffer to the pool.
    pub fn free(&mut self, skb: SkBuff) {
        debug_assert_eq!(skb.capacity(), self.buf_size);
        self.free.push(skb);
    }

    /// Buffers currently in the freelist.
    pub fn available(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_read() {
        let mut skb = SkBuff::with_capacity(2048);
        assert!(skb.is_empty());
        skb.fill(b"data");
        assert_eq!(skb.data(), b"data");
        assert_eq!(skb.len(), 4);
    }

    #[test]
    #[should_panic(expected = "skb overflow")]
    fn overflow_panics() {
        let mut skb = SkBuff::with_capacity(2);
        skb.fill(b"toolong");
    }

    #[test]
    fn pool_recycles() {
        let mut pool = SkBuffPool::new(2048);
        let a = pool.alloc();
        assert_eq!(pool.slab_allocs, 1);
        pool.free(a);
        let mut b = pool.alloc();
        assert_eq!(pool.recycled, 1);
        assert_eq!(pool.slab_allocs, 1);
        assert!(b.is_empty(), "recycled buffer is reset");
        b.fill(&[1, 2, 3]);
        pool.free(b);
        assert_eq!(pool.available(), 1);
    }
}
