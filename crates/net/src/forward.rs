//! The echo/forwarding workload: the full RX → parse → rewrite → TX
//! lifecycle over the mini-e1000e.
//!
//! The wire offers flow-level load ([`crate::FlowGen`]) to the device's
//! receive DMA engine; the driver services it NAPI-style (ISR entry,
//! budgeted poll passes, batched descriptor recycling), the module
//! parses each frame's Ethernet header (guarded CPU reads in the guarded
//! instantiation), rewrites it for the return path, and queues it back
//! out through the guarded TX path. Every step the paper's TX-only
//! workload never exercised — device-initiated DMA into module-owned
//! buffers, header-parse loads, interrupt masking — runs here under the
//! same policy and trace machinery.
//!
//! Loss accounting is exact: frames the wire dropped (overrun or
//! injected fault) are counted at the inject site, everything else must
//! come out the TX side byte-identically (modulo the forwarding
//! rewrite), which the ledger-auditing callers assert.

use std::time::{Duration, Instant};

use kop_e1000e::{DriverError, E1000Driver, FrameSink, MemSpace};

use crate::flowgen::FlowGen;
use crate::frame::{Frame, MacAddr};
use crate::sink::LedgerSink;

/// The forwarding rewrite applied to each received frame: the echo
/// module sends the frame back where it came from — destination becomes
/// the original source, source becomes the forwarder's own MAC.
/// EtherType and payload (including the ledger sequence number) are
/// untouched, so baseline and guarded runs stay byte-comparable.
pub fn rewrite(frame: &Frame, own_mac: MacAddr) -> Frame {
    Frame {
        dst: frame.src,
        src: own_mac,
        ethertype: frame.ethertype,
        payload: frame.payload.clone(),
    }
}

/// What one forwarding run did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ForwardReport {
    /// Frames the generator offered to the wire.
    pub offered: u64,
    /// Frames the device accepted into RX descriptors.
    pub accepted: u64,
    /// Frames the wire lost (receiver overrun or injected RX fault).
    pub wire_dropped: u64,
    /// Frames parsed, rewritten, and queued back out the TX path.
    pub forwarded: u64,
    /// Received frames too mangled to parse (dropped by the module).
    pub unparseable: u64,
    /// Frames the TX DMA engine delivered to the sink during the run.
    pub delivered: u64,
    /// ISR entries taken.
    pub irqs: u64,
    /// NAPI poll passes executed.
    pub polls: u64,
}

/// Drive the echo workload: offer `offered` frames from `gen` in seeded
/// bursts, service them with NAPI polls of `budget` descriptors, forward
/// each back out, and run the TX engine into `sink`.
///
/// Backpressure is handled the way the real datapath does it: if the TX
/// ring fills, the device gets tick rounds to drain before the frame is
/// retried; if the RX ring overruns, the frame is dropped on the wire
/// and counted (never partially delivered).
pub fn run_forward<M: MemSpace>(
    drv: &mut E1000Driver<M>,
    gen: &mut FlowGen,
    sink: &mut dyn FrameSink,
    offered: u64,
    budget: u64,
) -> Result<ForwardReport, DriverError> {
    let own_mac = MacAddr(drv.mac());
    let mut report = ForwardReport {
        offered,
        ..ForwardReport::default()
    };

    let mut injected = 0u64;
    let mut pending_burst: Vec<Vec<u8>> = Vec::new();
    while injected < offered || {
        // Drain phase: keep polling until the RX ring is empty.
        let (frames, drained) = drv.poll(budget)?;
        report.polls += 1;
        report.delivered += forward_batch(drv, frames, own_mac, sink, &mut report)?;
        !drained
    } {
        if injected >= offered {
            continue;
        }
        // Offer the next seeded burst to the wire, capped at the
        // remaining budget so the generator never stamps a sequence
        // number onto a frame this run would have to discard (which
        // would read as loss to a ledger spanning several runs).
        if pending_burst.is_empty() {
            pending_burst = gen.next_burst_capped((offered - injected) as usize);
        }
        for frame in pending_burst.drain(..) {
            if injected >= offered {
                break;
            }
            injected += 1;
            if drv.mem().rx_inject(&frame) {
                report.accepted += 1;
            } else {
                report.wire_dropped += 1;
            }
        }

        // ISR entry (the coalescing throttle may have absorbed this
        // burst — poll regardless, as a NAPI softirq would after the
        // previous pass left work pending).
        if drv.irq_enter()? != 0 {
            report.irqs += 1;
        }
        loop {
            let (frames, drained) = drv.poll(budget)?;
            report.polls += 1;
            report.delivered += forward_batch(drv, frames, own_mac, sink, &mut report)?;
            if drained {
                break;
            }
        }
    }

    // Let the TX engine deliver whatever is still queued.
    report.delivered += drv.drain(sink, 256)?;
    Ok(report)
}

/// Parse, rewrite, and re-queue one poll pass's worth of frames,
/// ticking the TX engine through ring-full backpressure. Returns frames
/// the device delivered to `sink` while handling this batch.
fn forward_batch<M: MemSpace>(
    drv: &mut E1000Driver<M>,
    frames: Vec<Vec<u8>>,
    own_mac: MacAddr,
    sink: &mut dyn FrameSink,
    report: &mut ForwardReport,
) -> Result<u64, DriverError> {
    let mut delivered = 0u64;
    for bytes in frames {
        let Some(parsed) = Frame::parse(&bytes) else {
            report.unparseable += 1;
            continue;
        };
        let out = rewrite(&parsed, own_mac).to_bytes();
        loop {
            match drv.xmit_raw(&out) {
                Ok(()) => break,
                Err(DriverError::RingFull) => {
                    delivered += drv.mem().tx_tick(sink);
                    drv.clean_tx()?;
                }
                Err(e) => return Err(e),
            }
        }
        report.forwarded += 1;
    }
    Ok(delivered)
}

/// What one receive queue's forwarding worker did.
#[derive(Clone, Debug)]
pub struct ForwardQueueReport {
    /// Queue index.
    pub queue: usize,
    /// The queue's forwarding run.
    pub report: ForwardReport,
    /// Guard invocations over the queue driver's whole lifetime.
    pub guard_calls: u64,
    /// Whether the queue's ledger audit was exact: every accepted frame
    /// delivered exactly once, every missing sequence accounted for by a
    /// wire-side drop.
    pub ledger_clean: bool,
}

/// Result of a multi-queue forwarding run.
#[derive(Clone, Debug)]
pub struct MqForwardReport {
    /// Per-queue breakdown, sorted by queue index.
    pub queues: Vec<ForwardQueueReport>,
    /// Wall-clock for the whole parallel phase (slowest queue).
    pub elapsed: Duration,
}

impl MqForwardReport {
    /// Total frames forwarded across all queues.
    pub fn forwarded(&self) -> u64 {
        self.queues.iter().map(|q| q.report.forwarded).sum()
    }

    /// Total frames offered across all queues.
    pub fn offered(&self) -> u64 {
        self.queues.iter().map(|q| q.report.offered).sum()
    }

    /// Total guard calls across all queues.
    pub fn guard_calls(&self) -> u64 {
        self.queues.iter().map(|q| q.guard_calls).sum()
    }

    /// Aggregate forwarding rate in frames per second.
    pub fn frames_per_sec(&self) -> f64 {
        self.forwarded() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// True when every queue's ledger audit was exact.
    pub fn all_clean(&self) -> bool {
        self.queues.iter().all(|q| q.ledger_clean)
    }
}

/// Run `queues` forwarding workers concurrently — the RX mirror of
/// [`kop_e1000e::mq::run_mq_tx_with`]. Each queue is a full driver over
/// its own rings and arena, fed by its own deterministically-seeded
/// [`FlowGen`] (seed derived from `seed` and the queue index) and audited
/// by its own [`LedgerSink`]; `make_mem(queue)` builds each worker's
/// memory space, so a shared policy (or per-queue guard TLBs over one)
/// is the only contended object. Workers start behind a barrier so
/// `elapsed` measures genuinely concurrent forwarding.
pub fn run_mq_forward<M, F>(
    queues: usize,
    offered_per_queue: u64,
    flows: usize,
    seed: u64,
    budget: u64,
    make_mem: F,
) -> Result<MqForwardReport, DriverError>
where
    M: MemSpace + Send,
    F: Fn(usize) -> M + Sync,
{
    assert!(queues >= 1, "need at least one queue");
    let barrier = std::sync::Barrier::new(queues);

    let worker = |queue: usize| -> Result<(ForwardQueueReport, Duration), DriverError> {
        let mut drv = E1000Driver::probe(make_mem(queue))?;
        drv.up()?;
        let mut gen = FlowGen::new(
            seed ^ (queue as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            flows,
        );
        let mut ledger = LedgerSink::new();
        barrier.wait();
        let start = Instant::now();
        let report = run_forward(&mut drv, &mut gen, &mut ledger, offered_per_queue, budget)?;
        let elapsed = start.elapsed();
        let ledger_clean = ledger.duplicates == 0
            && ledger.unsequenced == 0
            && ledger.frames == report.forwarded
            && ledger.missing(report.offered).len() as u64 == report.wire_dropped;
        Ok((
            ForwardQueueReport {
                queue,
                report,
                guard_calls: drv.counts().guard_calls,
                ledger_clean,
            },
            elapsed,
        ))
    };

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..queues).map(|q| s.spawn(move || worker(q))).collect();
        let mut reports = Vec::with_capacity(queues);
        let mut elapsed = Duration::ZERO;
        for h in handles {
            let (report, queue_elapsed) = h.join().expect("queue worker panicked")?;
            elapsed = elapsed.max(queue_elapsed);
            reports.push(report);
        }
        reports.sort_by_key(|r| r.queue);
        Ok(MqForwardReport {
            queues: reports,
            elapsed,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{EtherType, ETH_HLEN};
    use crate::sink::LedgerSink;
    use kop_e1000e::device::E1000Device;
    use kop_e1000e::{DirectMem, GuardedMem};
    use kop_policy::{DefaultAction, PolicyModule};

    fn direct_driver() -> E1000Driver<DirectMem> {
        let mem = DirectMem::with_defaults(E1000Device::default());
        let mut drv = E1000Driver::probe(mem).expect("probe");
        drv.up().expect("up");
        drv
    }

    #[test]
    fn rewrite_swaps_direction_and_keeps_payload() {
        let f = Frame::new(
            MacAddr::local(1),
            MacAddr::local(2),
            EtherType::Experimental,
            b"sequence + data".to_vec(),
        );
        let own = MacAddr::local(99);
        let out = rewrite(&f, own);
        assert_eq!(out.dst, f.src, "echoed back to the sender");
        assert_eq!(out.src, own, "from the forwarder");
        assert_eq!(out.ethertype, f.ethertype);
        assert_eq!(out.payload, f.payload);
    }

    #[test]
    fn forward_run_audits_clean_on_a_ledger() {
        let mut drv = direct_driver();
        let mut gen = FlowGen::new(5, 256);
        let mut ledger = LedgerSink::new();
        let report = run_forward(&mut drv, &mut gen, &mut ledger, 500, 64).unwrap();
        assert_eq!(report.offered, 500);
        assert_eq!(report.accepted + report.wire_dropped, 500);
        assert_eq!(report.forwarded, report.accepted);
        assert_eq!(report.delivered, report.forwarded);
        assert_eq!(report.unparseable, 0);
        // Every accepted sequence arrived exactly once.
        assert_eq!(ledger.frames, report.forwarded);
        assert_eq!(ledger.duplicates, 0);
        assert_eq!(ledger.unsequenced, 0);
        // The driver's RX counters saw the same world.
        let s = drv.stats();
        assert_eq!(s.rx_packets, report.accepted);
        assert_eq!(s.tx_packets, report.forwarded);
        assert!(s.poll_passes > 0);
    }

    #[test]
    fn forwarded_frames_are_the_rewritten_originals() {
        let mut drv = direct_driver();
        let mut gen = FlowGen::new(9, 8);
        let mut sink = crate::sink::PacketSink::capturing(64);
        let schedule: Vec<Vec<u8>> = {
            // Replay the same seed to know exactly what was offered.
            let mut shadow = FlowGen::new(9, 8);
            (0..64).flat_map(|_| shadow.next_burst()).collect()
        };
        let own = MacAddr(drv.mac());
        let report = run_forward(&mut drv, &mut gen, &mut sink, 40, 32).unwrap();
        assert_eq!(report.wire_dropped, 0, "no overrun at this load");
        for (sent, got) in schedule.iter().zip(sink.captured_raw()) {
            let sent_f = Frame::parse(sent).unwrap();
            let expect = rewrite(&sent_f, own).to_bytes();
            assert_eq!(got, &expect, "byte-identical modulo the rewrite");
            // The ledger sequence bytes specifically are untouched.
            assert_eq!(&got[ETH_HLEN..ETH_HLEN + 8], &sent[ETH_HLEN..ETH_HLEN + 8]);
        }
    }

    #[test]
    fn guarded_forwarding_reconciles_guard_counts() {
        let pm = PolicyModule::new();
        pm.set_default_action(DefaultAction::Allow);
        let mem = GuardedMem::new(DirectMem::with_defaults(E1000Device::default()), &pm);
        let mut drv = E1000Driver::probe(mem).expect("probe");
        drv.up().expect("up");
        let mut gen = FlowGen::new(5, 256);
        let mut ledger = LedgerSink::new();
        let report = run_forward(&mut drv, &mut gen, &mut ledger, 300, 64).unwrap();
        assert_eq!(report.forwarded, report.accepted);
        assert_eq!(ledger.duplicates, 0);
        let d = drv.counts();
        assert_eq!(
            d.guard_calls,
            d.ram_reads + d.ram_writes + d.mmio_reads + d.mmio_writes,
            "every CPU access on the RX+TX path guarded"
        );
        assert_eq!(pm.stats().checks, d.guard_calls, "policy saw every guard");
    }

    #[test]
    fn mq_forwarding_shares_one_policy_and_audits_clean() {
        use std::sync::Arc;
        let pm = Arc::new(PolicyModule::two_region_paper_policy());
        let before = pm.stats().checks;
        let queues = 3usize;
        let report = run_mq_forward(queues, 200, 64, 21, 32, |_q| {
            GuardedMem::new(
                DirectMem::with_defaults(E1000Device::default()),
                Arc::clone(&pm),
            )
        })
        .unwrap();
        assert_eq!(report.queues.len(), queues);
        assert!(report.all_clean(), "every queue's ledger audit is exact");
        for q in &report.queues {
            assert_eq!(q.report.offered, 200);
            assert_eq!(q.report.forwarded, q.report.accepted);
            assert!(q.guard_calls > 0);
        }
        // Every guard on every queue reached the one shared policy.
        assert_eq!(pm.stats().checks - before, report.guard_calls());
        assert!(report.frames_per_sec() > 0.0);
    }

    #[test]
    fn forwarding_runs_under_the_least_privilege_datapath_policy() {
        // Derive the exact geometry from a throwaway driver (the default
        // layout is deterministic), then forward under a policy that
        // admits only those windows — RX buffers read-only.
        let geo = direct_driver().datapath_geometry();
        let pm = PolicyModule::datapath_policy(&geo);
        let mem = GuardedMem::new(DirectMem::with_defaults(E1000Device::default()), &pm);
        let mut drv = E1000Driver::probe(mem).expect("probe under least privilege");
        drv.up().expect("up under least privilege");
        let mut gen = FlowGen::new(13, 128);
        let mut ledger = LedgerSink::new();
        let report = run_forward(&mut drv, &mut gen, &mut ledger, 300, 64).unwrap();
        assert_eq!(report.forwarded, report.accepted);
        assert_eq!(ledger.duplicates, 0);
        // Nothing on the whole RX→TX path strayed outside the datapath
        // windows, and nothing wrote into DMA-owned receive memory.
        let s = pm.stats();
        assert_eq!(
            s.denied_no_match + s.denied_insufficient + s.denied_malformed,
            0
        );
        assert_eq!(s.checks, drv.counts().guard_calls);
        // The policy really is enforcing: a CPU store into an RX buffer
        // is a violation.
        use kop_core::{AccessFlags, Size, VAddr};
        assert!(pm
            .check(VAddr(geo.rx_buffers.0 + 64), Size(8), AccessFlags::WRITE)
            .is_err());
    }

    #[test]
    fn baseline_and_guarded_forward_identical_bytes() {
        let mut base_drv = direct_driver();
        let mut base_sink = crate::sink::PacketSink::capturing(2000);
        let mut base_gen = FlowGen::new(77, 512);
        run_forward(&mut base_drv, &mut base_gen, &mut base_sink, 400, 64).unwrap();

        let pm = PolicyModule::new();
        pm.set_default_action(DefaultAction::Allow);
        let mem = GuardedMem::new(DirectMem::with_defaults(E1000Device::default()), &pm);
        let mut g_drv = E1000Driver::probe(mem).expect("probe");
        g_drv.up().expect("up");
        let mut g_sink = crate::sink::PacketSink::capturing(2000);
        let mut g_gen = FlowGen::new(77, 512);
        run_forward(&mut g_drv, &mut g_gen, &mut g_sink, 400, 64).unwrap();

        assert_eq!(base_sink.frames, g_sink.frames);
        assert_eq!(base_sink.captured_raw(), g_sink.captured_raw());
    }
}
