//! Trial orchestration — the measurement half of the user-level tool.
//!
//! §4.2: *"We run many trials, launching about 100,000 packets per trial.
//! The figure plots the CDF of these trials."* A trial's deterministic
//! per-packet cost comes from actually driving the simulated driver
//! ([`crate::sender::RawSender`]); trial-to-trial variance comes from the
//! seeded jitter in [`kop_sim::TrialRunner`].

use kop_e1000e::MemSpace;
use kop_sim::{Summary, TrialRunner};

use crate::frame::{EtherType, MacAddr};
use crate::sender::{RawSender, SendError};

/// Tool configuration (mirrors the paper's factors: packet count, packet
/// size, and number of trials).
#[derive(Clone, Debug)]
pub struct ToolConfig {
    /// Packets per trial (paper: ~100,000).
    pub packets_per_trial: u64,
    /// Number of trials (the CDF sample count).
    pub trials: usize,
    /// Frame size on the wire, including the 14-byte header.
    pub frame_size: usize,
    /// Jitter seed (same seed ⇒ identical distributions).
    pub seed: u64,
}

impl Default for ToolConfig {
    fn default() -> Self {
        ToolConfig {
            packets_per_trial: 100_000,
            trials: 41,
            frame_size: 128,
            seed: 0x4b4f_5001,
        }
    }
}

/// A measurement report: throughput samples plus their summary.
#[derive(Clone, Debug)]
pub struct ToolReport {
    /// Per-trial throughput samples (packets/second).
    pub samples: Vec<f64>,
    /// Summary statistics.
    pub summary: Summary,
    /// The calibrated per-packet cost used (cycles).
    pub cycles_per_packet: f64,
}

/// Measure the deterministic per-packet cost by driving the real driver
/// for a calibration burst, then spread it over `cfg.trials` jittered
/// trials.
pub fn run_throughput(
    sender: &mut RawSender<impl MemSpace>,
    cfg: &ToolConfig,
) -> Result<ToolReport, SendError> {
    // Calibration burst: real driver work, steady-state cleanup included.
    let cycles_per_packet = sender.send_burst(
        MacAddr::BROADCAST,
        EtherType::Experimental,
        cfg.frame_size,
        256,
    )?;
    let machine = sender.machine().clone();
    let mut runner = TrialRunner::new(machine, cfg.packets_per_trial, cfg.seed);
    let samples = runner.throughput_samples(cycles_per_packet, cfg.trials);
    let summary = Summary::of(&samples);
    Ok(ToolReport {
        samples,
        summary,
        cycles_per_packet,
    })
}

/// Measure per-packet launch latencies (Figure 7): `n` samples with the
/// paper's ring-full outliers injected at probability `outlier_p`.
pub fn run_latency(
    sender: &mut RawSender<impl MemSpace>,
    cfg: &ToolConfig,
    n: usize,
    outlier_p: f64,
) -> Result<Vec<f64>, SendError> {
    let cycles_per_packet = sender.send_burst(
        MacAddr::BROADCAST,
        EtherType::Experimental,
        cfg.frame_size,
        256,
    )?;
    let machine = sender.machine().clone();
    let mut runner = TrialRunner::new(machine, cfg.packets_per_trial, cfg.seed);
    Ok(runner.latency_samples(cycles_per_packet, n, outlier_p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_e1000e::{DirectMem, E1000Device, E1000Driver, GuardedMem};
    use kop_policy::{DefaultAction, PolicyModule};
    use kop_sim::MachineProfile;

    fn baseline(machine: MachineProfile) -> RawSender<DirectMem> {
        let mem = DirectMem::with_defaults(E1000Device::default());
        let mut drv = E1000Driver::probe(mem).unwrap();
        drv.up().unwrap();
        RawSender::new(drv, machine)
    }

    fn carat(machine: MachineProfile, pm: &PolicyModule) -> RawSender<GuardedMem<&PolicyModule>> {
        let mem = GuardedMem::new(DirectMem::with_defaults(E1000Device::default()), pm);
        let mut drv = E1000Driver::probe(mem).unwrap();
        drv.up().unwrap();
        RawSender::new(drv, machine)
    }

    #[test]
    fn throughput_report_in_paper_range() {
        let mut s = baseline(MachineProfile::r350());
        let report = run_throughput(&mut s, &ToolConfig::default()).unwrap();
        assert_eq!(report.samples.len(), 41);
        assert!(
            report.summary.median > 100_000.0 && report.summary.median < 125_000.0,
            "median {}",
            report.summary.median
        );
    }

    #[test]
    fn figure3_shape_baseline_beats_carat_slightly() {
        let pm = PolicyModule::new();
        pm.set_default_action(DefaultAction::Allow);
        let cfg = ToolConfig::default();
        let mut base = baseline(MachineProfile::r415());
        let mut guarded = carat(MachineProfile::r415(), &pm);
        let rb = run_throughput(&mut base, &cfg).unwrap();
        let rc = run_throughput(&mut guarded, &cfg).unwrap();
        let rel = rb.summary.median_rel_change(&rc.summary);
        // Paper Figure 3: median delta ~1000 pps, <0.8%.
        assert!(rel > 0.0, "carat must be slower");
        assert!(rel < 0.008, "rel {rel}");
    }

    #[test]
    fn latency_samples_contain_outliers() {
        let mut s = baseline(MachineProfile::r350());
        let cfg = ToolConfig::default();
        let lats = run_latency(&mut s, &cfg, 20_000, 0.001).unwrap();
        assert_eq!(lats.len(), 20_000);
        assert!(lats.iter().any(|&l| l > 1_000_000.0), "outliers present");
        let clean: Vec<f64> = lats.into_iter().filter(|&l| l < 1_000_000.0).collect();
        let s = kop_sim::Summary::of(&clean);
        assert!(s.median > 20_000.0 && s.median < 30_000.0, "{}", s.median);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = ToolConfig::default();
        let mut a = baseline(MachineProfile::r350());
        let mut b = baseline(MachineProfile::r350());
        let ra = run_throughput(&mut a, &cfg).unwrap();
        let rb = run_throughput(&mut b, &cfg).unwrap();
        assert_eq!(ra.samples, rb.samples);
    }
}
