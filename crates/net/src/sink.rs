//! The packet sink the test NIC is "attached to" (§4.2).

use kop_e1000e::FrameSink;

use crate::frame::Frame;

/// Counts delivered frames; optionally captures the first few for
/// inspection.
#[derive(Clone, Debug, Default)]
pub struct PacketSink {
    /// Frames delivered.
    pub frames: u64,
    /// Wire bytes delivered.
    pub bytes: u64,
    capture_limit: usize,
    captured: Vec<Vec<u8>>,
}

impl PacketSink {
    /// A counting-only sink.
    pub fn new() -> PacketSink {
        PacketSink::default()
    }

    /// A sink that keeps the first `limit` frames for inspection.
    pub fn capturing(limit: usize) -> PacketSink {
        PacketSink {
            capture_limit: limit,
            ..PacketSink::default()
        }
    }

    /// Captured frames, parsed.
    pub fn captured_frames(&self) -> Vec<Frame> {
        self.captured
            .iter()
            .filter_map(|b| Frame::parse(b))
            .collect()
    }

    /// Raw captured bytes.
    pub fn captured_raw(&self) -> &[Vec<u8>] {
        &self.captured
    }
}

impl FrameSink for PacketSink {
    fn deliver(&mut self, frame: &[u8]) {
        self.frames += 1;
        self.bytes += frame.len() as u64;
        if self.captured.len() < self.capture_limit {
            self.captured.push(frame.to_vec());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_captures() {
        let mut sink = PacketSink::capturing(2);
        sink.deliver(&[0u8; 60]);
        sink.deliver(&[1u8; 128]);
        sink.deliver(&[2u8; 1514]);
        assert_eq!(sink.frames, 3);
        assert_eq!(sink.bytes, 60 + 128 + 1514);
        assert_eq!(sink.captured_raw().len(), 2, "capture limit respected");
        let parsed = sink.captured_frames();
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn counting_only_by_default() {
        let mut sink = PacketSink::new();
        sink.deliver(&[0u8; 64]);
        assert!(sink.captured_raw().is_empty());
        assert_eq!(sink.frames, 1);
    }
}
