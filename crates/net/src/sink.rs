//! The packet sink the test NIC is "attached to" (§4.2).

use kop_e1000e::FrameSink;

use crate::frame::Frame;

/// Counts delivered frames; optionally captures the first few for
/// inspection.
#[derive(Clone, Debug, Default)]
pub struct PacketSink {
    /// Frames delivered.
    pub frames: u64,
    /// Wire bytes delivered.
    pub bytes: u64,
    capture_limit: usize,
    captured: Vec<Vec<u8>>,
}

impl PacketSink {
    /// A counting-only sink.
    pub fn new() -> PacketSink {
        PacketSink::default()
    }

    /// A sink that keeps the first `limit` frames for inspection.
    pub fn capturing(limit: usize) -> PacketSink {
        PacketSink {
            capture_limit: limit,
            ..PacketSink::default()
        }
    }

    /// Captured frames, parsed.
    pub fn captured_frames(&self) -> Vec<Frame> {
        self.captured
            .iter()
            .filter_map(|b| Frame::parse(b))
            .collect()
    }

    /// Raw captured bytes.
    pub fn captured_raw(&self) -> &[Vec<u8>] {
        &self.captured
    }
}

impl FrameSink for PacketSink {
    fn deliver(&mut self, frame: &[u8]) {
        self.frames += 1;
        self.bytes += frame.len() as u64;
        if self.captured.len() < self.capture_limit {
            self.captured.push(frame.to_vec());
        }
    }
}

/// A sink that audits delivery of *sequence-numbered* frames: the sender
/// embeds a little-endian `u64` sequence number in the first payload
/// bytes (`frame[14..22]`), and the ledger records exactly which
/// sequences arrived and how many times. The live-upgrade harness uses
/// it to assert zero dropped and zero duplicated frames across a swap.
#[derive(Clone, Debug, Default)]
pub struct LedgerSink {
    /// Total frames delivered.
    pub frames: u64,
    /// Deliveries of a sequence number already seen (must stay 0 across
    /// a correct upgrade).
    pub duplicates: u64,
    /// Frames too short to carry a sequence number.
    pub unsequenced: u64,
    seen: std::collections::BTreeSet<u64>,
}

impl LedgerSink {
    /// An empty ledger.
    pub fn new() -> LedgerSink {
        LedgerSink::default()
    }

    /// Whether sequence `seq` was delivered.
    pub fn has(&self, seq: u64) -> bool {
        self.seen.contains(&seq)
    }

    /// Distinct sequence numbers delivered.
    pub fn distinct(&self) -> u64 {
        self.seen.len() as u64
    }

    /// The sequences in `0..expected` that never arrived.
    pub fn missing(&self, expected: u64) -> Vec<u64> {
        (0..expected).filter(|s| !self.seen.contains(s)).collect()
    }
}

impl FrameSink for LedgerSink {
    fn deliver(&mut self, frame: &[u8]) {
        self.frames += 1;
        if frame.len() < 22 {
            self.unsequenced += 1;
            return;
        }
        let seq = u64::from_le_bytes(frame[14..22].try_into().expect("8 bytes"));
        if !self.seen.insert(seq) {
            self.duplicates += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_tracks_sequences_dups_and_gaps() {
        let mut sink = LedgerSink::new();
        let mut frame = vec![0u8; 60];
        for seq in [0u64, 1, 3] {
            frame[14..22].copy_from_slice(&seq.to_le_bytes());
            sink.deliver(&frame);
        }
        frame[14..22].copy_from_slice(&1u64.to_le_bytes());
        sink.deliver(&frame); // duplicate of 1
        sink.deliver(&[0u8; 10]); // too short
        assert_eq!(sink.frames, 5);
        assert_eq!(sink.distinct(), 3);
        assert_eq!(sink.duplicates, 1);
        assert_eq!(sink.unsequenced, 1);
        assert!(sink.has(3) && !sink.has(2));
        assert_eq!(sink.missing(4), vec![2]);
    }

    #[test]
    fn counts_and_captures() {
        let mut sink = PacketSink::capturing(2);
        sink.deliver(&[0u8; 60]);
        sink.deliver(&[1u8; 128]);
        sink.deliver(&[2u8; 1514]);
        assert_eq!(sink.frames, 3);
        assert_eq!(sink.bytes, 60 + 128 + 1514);
        assert_eq!(sink.captured_raw().len(), 2, "capture limit respected");
        let parsed = sink.captured_frames();
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn counting_only_by_default() {
        let mut sink = PacketSink::new();
        sink.deliver(&[0u8; 64]);
        assert!(sink.captured_raw().is_empty());
        assert_eq!(sink.frames, 1);
    }
}
