//! Ethernet frames.

use core::fmt;

/// A MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// A locally-administered test address derived from an index.
    pub fn local(idx: u16) -> MacAddr {
        let b = idx.to_be_bytes();
        MacAddr([0x02, 0x4b, 0x4f, 0x50, b[0], b[1]])
    }

    /// Raw bytes.
    pub fn bytes(&self) -> [u8; 6] {
        self.0
    }

    /// Whether the address is multicast/broadcast (low bit of first byte).
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 1 == 1
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MacAddr({self})")
    }
}

/// Well-known EtherTypes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EtherType {
    /// IPv4.
    Ipv4,
    /// ARP.
    Arp,
    /// IEEE 802.1 local experimental (the raw test traffic).
    Experimental,
    /// Anything else.
    Other(u16),
}

impl EtherType {
    /// Wire value.
    pub fn value(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Experimental => 0x88b5,
            EtherType::Other(v) => v,
        }
    }

    /// From wire value.
    pub fn from_value(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x88b5 => EtherType::Experimental,
            other => EtherType::Other(other),
        }
    }
}

/// A parsed Ethernet frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Frame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType.
    pub ethertype: EtherType,
    /// Payload (without FCS).
    pub payload: Vec<u8>,
}

/// Header length.
pub const ETH_HLEN: usize = 14;
/// Minimum frame length (no FCS).
pub const ETH_ZLEN: usize = 60;

impl Frame {
    /// Build a frame.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: Vec<u8>) -> Frame {
        Frame {
            dst,
            src,
            ethertype,
            payload,
        }
    }

    /// Serialize to wire bytes (padded to the Ethernet minimum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ETH_HLEN + self.payload.len());
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.value().to_be_bytes());
        out.extend_from_slice(&self.payload);
        if out.len() < ETH_ZLEN {
            out.resize(ETH_ZLEN, 0);
        }
        out
    }

    /// Parse wire bytes. `None` if shorter than a header.
    pub fn parse(bytes: &[u8]) -> Option<Frame> {
        if bytes.len() < ETH_HLEN {
            return None;
        }
        let mut dst = [0u8; 6];
        dst.copy_from_slice(&bytes[0..6]);
        let mut src = [0u8; 6];
        src.copy_from_slice(&bytes[6..12]);
        let et = u16::from_be_bytes([bytes[12], bytes[13]]);
        Some(Frame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: EtherType::from_value(et),
            payload: bytes[ETH_HLEN..].to_vec(),
        })
    }

    /// Total wire length (with padding).
    pub fn wire_len(&self) -> usize {
        (ETH_HLEN + self.payload.len()).max(ETH_ZLEN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display_and_classes() {
        let m = MacAddr([0x02, 0x4b, 0x4f, 0x50, 0x00, 0x07]);
        assert_eq!(m.to_string(), "02:4b:4f:50:00:07");
        assert!(!m.is_multicast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert_eq!(MacAddr::local(7), m);
    }

    #[test]
    fn ethertype_roundtrip() {
        for et in [
            EtherType::Ipv4,
            EtherType::Arp,
            EtherType::Experimental,
            EtherType::Other(0x1234),
        ] {
            assert_eq!(EtherType::from_value(et.value()), et);
        }
    }

    #[test]
    fn frame_roundtrip_and_padding() {
        let f = Frame::new(
            MacAddr::BROADCAST,
            MacAddr::local(1),
            EtherType::Experimental,
            b"tiny".to_vec(),
        );
        let bytes = f.to_bytes();
        assert_eq!(bytes.len(), ETH_ZLEN, "padded to minimum");
        let parsed = Frame::parse(&bytes).unwrap();
        assert_eq!(parsed.dst, f.dst);
        assert_eq!(parsed.src, f.src);
        assert_eq!(parsed.ethertype, f.ethertype);
        assert_eq!(&parsed.payload[..4], b"tiny");
        assert_eq!(f.wire_len(), ETH_ZLEN);
    }

    #[test]
    fn large_frame_not_padded() {
        let f = Frame::new(
            MacAddr::local(0),
            MacAddr::local(1),
            EtherType::Ipv4,
            vec![7u8; 1500],
        );
        assert_eq!(f.to_bytes().len(), 1514);
        assert_eq!(f.wire_len(), 1514);
    }

    #[test]
    fn short_bytes_do_not_parse() {
        assert!(Frame::parse(&[0u8; 13]).is_none());
        assert!(Frame::parse(&[]).is_none());
    }
}
