//! Flow-level traffic generation for the receive path.
//!
//! The TX-side tool ([`crate::tool`]) sends one synthetic stream; the
//! receive/forwarding workload needs *offered load* that looks like a
//! switch uplink: thousands of concurrent flows, heavy-tailed frame
//! sizes (most traffic is small control/ACK frames, a thin tail of
//! MTU-sized bulk data), and bursty arrivals. [`FlowGen`] produces that
//! from a seed, deterministically: two generators built from the same
//! seed emit byte-identical frame schedules, which is what lets the
//! baseline and guarded forwarding runs be compared frame-for-frame.
//!
//! Every emitted frame carries a globally unique little-endian `u64`
//! sequence number at payload offset 0 (wire offset 14), the layout
//! [`crate::LedgerSink`] audits — so a forwarding run can prove zero
//! loss and zero duplication end to end.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::frame::{EtherType, Frame, MacAddr};

/// Payload bytes reserved for the ledger sequence number.
const SEQ_LEN: usize = 8;
/// Payload bytes reserved for the flow id (after the sequence).
const FLOW_ID_LEN: usize = 4;
/// Smallest generated payload: sequence + flow id + a little filler,
/// comfortably above the parse threshold and the Ethernet minimum.
const MIN_PAYLOAD: usize = 46;
/// Largest generated payload (1500 MTU).
const MAX_PAYLOAD: usize = 1500;

/// One flow's immutable identity.
#[derive(Clone, Copy, Debug)]
struct FlowState {
    src: MacAddr,
    dst: MacAddr,
    /// Per-flow byte used as payload filler so flows are distinguishable
    /// on the wire beyond their id field.
    dye: u8,
}

/// Seeded, deterministic flow-level load generator.
#[derive(Clone, Debug)]
pub struct FlowGen {
    rng: StdRng,
    flows: Vec<FlowState>,
    next_seq: u64,
    frames: u64,
    bytes: u64,
}

impl FlowGen {
    /// A generator over `flows` concurrent flows, seeded with `seed`.
    /// Flow endpoints are derived deterministically from the flow index.
    pub fn new(seed: u64, flows: usize) -> FlowGen {
        let flows = flows.max(1);
        let states = (0..flows)
            .map(|i| FlowState {
                src: MacAddr::local(i as u16),
                dst: MacAddr::local((i as u16).wrapping_add(0x8000)),
                dye: (i % 251) as u8,
            })
            .collect();
        FlowGen {
            rng: StdRng::seed_from_u64(seed),
            flows: states,
            next_seq: 0,
            frames: 0,
            bytes: 0,
        }
    }

    /// Number of concurrent flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Frames emitted so far.
    pub fn frames_emitted(&self) -> u64 {
        self.frames
    }

    /// Wire bytes emitted so far.
    pub fn bytes_emitted(&self) -> u64 {
        self.bytes
    }

    /// The sequence number the *next* emitted frame will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Uniform draw in `[lo, hi]`.
    fn between(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.rng.random_below((hi - lo + 1) as u64) as usize
    }

    /// Draw a heavy-tailed payload length: ~80% small (mouse flows:
    /// ACKs, RPCs), ~15% medium, ~5% MTU-sized (elephant tail).
    fn payload_len(&mut self) -> usize {
        match self.rng.random_below(100) {
            0..80 => self.between(MIN_PAYLOAD, 200),
            80..95 => self.between(200, 700),
            _ => self.between(700, MAX_PAYLOAD),
        }
    }

    /// Emit the next frame: a random flow, heavy-tailed size, stamped
    /// with the next global sequence number.
    pub fn next_frame(&mut self) -> Vec<u8> {
        let idx = self.rng.random_below(self.flows.len() as u64) as usize;
        self.frame_for(idx)
    }

    /// Emit one seeded burst: a single flow sending `1..=32` back-to-back
    /// frames (geometric-ish: short bursts dominate).
    pub fn next_burst(&mut self) -> Vec<Vec<u8>> {
        self.next_burst_capped(32)
    }

    /// Like [`FlowGen::next_burst`], but emit at most `cap` frames. The
    /// burst length is drawn as usual and then truncated, so sequence
    /// numbers are only ever consumed by frames actually returned —
    /// callers offering an exact frame budget (e.g. forwarding runs
    /// composed over one generator) stay gap-free in the ledger.
    pub fn next_burst_capped(&mut self, cap: usize) -> Vec<Vec<u8>> {
        if cap == 0 {
            return Vec::new();
        }
        let idx = self.rng.random_below(self.flows.len() as u64) as usize;
        let mut len = 1usize;
        while len < 32 && self.rng.random_below(3) != 0 {
            len += 1;
        }
        (0..len.min(cap)).map(|_| self.frame_for(idx)).collect()
    }

    fn frame_for(&mut self, idx: usize) -> Vec<u8> {
        let flow = self.flows[idx];
        let plen = self.payload_len();
        let mut payload = vec![flow.dye; plen];
        payload[..SEQ_LEN].copy_from_slice(&self.next_seq.to_le_bytes());
        payload[SEQ_LEN..SEQ_LEN + FLOW_ID_LEN].copy_from_slice(&(idx as u32).to_le_bytes());
        self.next_seq += 1;
        let bytes = Frame::new(flow.dst, flow.src, EtherType::Experimental, payload).to_bytes();
        self.frames += 1;
        self.bytes += bytes.len() as u64;
        bytes
    }
}

/// The flow id stamped into a generated frame, if it carries one.
pub fn flow_id(wire: &[u8]) -> Option<u32> {
    let off = crate::frame::ETH_HLEN + SEQ_LEN;
    wire.get(off..off + FLOW_ID_LEN)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{ETH_HLEN, ETH_ZLEN};
    use crate::sink::LedgerSink;
    use kop_e1000e::FrameSink;
    use std::collections::BTreeSet;

    #[test]
    fn deterministic_per_seed() {
        let mut a = FlowGen::new(42, 1000);
        let mut b = FlowGen::new(42, 1000);
        for _ in 0..500 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
        let mut c = FlowGen::new(43, 1000);
        let differs = (0..500).any(|_| a.next_frame() != c.next_frame());
        assert!(differs, "different seeds, different schedules");
    }

    #[test]
    fn sizes_are_heavy_tailed_and_in_range() {
        let mut g = FlowGen::new(7, 4096);
        let mut small = 0u32;
        let mut large = 0u32;
        for _ in 0..5000 {
            let f = g.next_frame();
            assert!((ETH_ZLEN..=1514).contains(&f.len()), "len={}", f.len());
            if f.len() <= 214 {
                small += 1;
            }
            if f.len() > 714 {
                large += 1;
            }
        }
        assert!(small > 3200, "small-frame mass: {small}/5000");
        assert!(large > 50, "a real tail exists: {large}/5000");
        assert!(large < 800, "but it is a tail: {large}/5000");
    }

    #[test]
    fn sequences_audit_clean_through_a_ledger() {
        let mut g = FlowGen::new(3, 100);
        let mut ledger = LedgerSink::default();
        let mut seen_flows = BTreeSet::new();
        for _ in 0..200 {
            for f in g.next_burst() {
                seen_flows.insert(flow_id(&f).expect("generated frames carry a flow id"));
                ledger.deliver(&f);
            }
        }
        assert_eq!(ledger.frames, g.frames_emitted());
        assert_eq!(ledger.duplicates, 0);
        assert_eq!(ledger.unsequenced, 0);
        assert_eq!(ledger.distinct(), g.frames_emitted());
        assert!(ledger.missing(g.frames_emitted()).is_empty());
        assert!(seen_flows.len() > 50, "many flows active");
    }

    #[test]
    fn bursts_stay_within_one_flow() {
        let mut g = FlowGen::new(11, 64);
        let mut multi = 0;
        for _ in 0..100 {
            let burst = g.next_burst();
            assert!((1..=32).contains(&burst.len()));
            let ids: BTreeSet<_> = burst.iter().map(|f| flow_id(f).unwrap()).collect();
            assert_eq!(ids.len(), 1, "a burst belongs to one flow");
            let srcs: BTreeSet<_> = burst.iter().map(|f| f[6..12].to_vec()).collect();
            assert_eq!(srcs.len(), 1);
            if burst.len() > 1 {
                multi += 1;
            }
        }
        assert!(multi > 20, "bursts longer than one frame occur: {multi}");
    }

    #[test]
    fn frames_parse_and_carry_the_seq_at_the_ledger_offset() {
        let mut g = FlowGen::new(1, 10);
        let f = g.next_frame();
        let parsed = Frame::parse(&f).unwrap();
        assert_eq!(parsed.ethertype, EtherType::Experimental);
        let seq = u64::from_le_bytes(f[ETH_HLEN..ETH_HLEN + 8].try_into().unwrap());
        assert_eq!(seq, 0, "first frame carries seq 0");
        assert_eq!(g.next_seq(), 1);
    }
}
