//! The user-level raw-Ethernet sender.
//!
//! Each [`RawSender::sendmsg`] models one `sendmsg(2)` call: allocate an
//! sk_buff, copy the payload in, enter the driver's transmit path (the
//! *real* driver model — every CPU access it performs is counted and, in
//! the guarded instantiation, checked), run the DMA engine, and convert
//! the counted work into cycles on the configured machine profile. The
//! returned latency is "the time spent in the sendmsg() call from the
//! user-space test application's point of view" (§4.2).

use kop_core::Cycles;
use kop_e1000e::{DriverError, E1000Driver, MemSpace};
use kop_sim::{CycleClock, MachineProfile, PacketWork};

use crate::frame::{EtherType, MacAddr, ETH_HLEN, ETH_ZLEN};
use crate::sink::PacketSink;
use crate::skb::SkBuffPool;

/// Send-path errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SendError {
    /// The driver refused or a guard fired.
    Driver(DriverError),
}

impl From<DriverError> for SendError {
    fn from(e: DriverError) -> Self {
        SendError::Driver(e)
    }
}

impl core::fmt::Display for SendError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SendError::Driver(e) => write!(f, "sendmsg failed: {e}"),
        }
    }
}

impl std::error::Error for SendError {}

/// The raw sender: user tool + socket layer + driver + NIC + sink.
pub struct RawSender<M: MemSpace> {
    driver: E1000Driver<M>,
    machine: MachineProfile,
    pool: SkBuffPool,
    /// The packet sink attached to the NIC.
    pub sink: PacketSink,
    clock: CycleClock,
    /// Scan position at which the active policy's matching region sits
    /// (0-based). The figure configs control this: the Figure 5 sweep
    /// places the hot region last so an `n`-entry table scans all `n`.
    pub policy_hit_pos: u64,
    sent: u64,
}

impl<M: MemSpace> RawSender<M> {
    /// Wrap an already-up driver.
    pub fn new(driver: E1000Driver<M>, machine: MachineProfile) -> RawSender<M> {
        RawSender {
            driver,
            machine,
            pool: SkBuffPool::new(2048),
            sink: PacketSink::new(),
            clock: CycleClock::new(),
            policy_hit_pos: 0,
            sent: 0,
        }
    }

    /// The machine profile in use.
    pub fn machine(&self) -> &MachineProfile {
        &self.machine
    }

    /// The driver (telemetry).
    pub fn driver(&mut self) -> &mut E1000Driver<M> {
        &mut self.driver
    }

    /// Packets sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Virtual elapsed cycles.
    pub fn elapsed(&self) -> Cycles {
        self.clock.now()
    }

    /// One `sendmsg`: returns the modelled launch latency in cycles.
    pub fn sendmsg(
        &mut self,
        dst: MacAddr,
        ethertype: EtherType,
        payload: &[u8],
    ) -> Result<Cycles, SendError> {
        // Socket layer: sk_buff allocation + copy_from_user.
        let mut skb = self.pool.alloc();
        skb.fill(payload);

        // Driver transmit path (counted; guarded when M = GuardedMem).
        let before = self.driver.counts();
        self.driver
            .xmit(dst.bytes(), ethertype.value(), skb.data())?;
        self.driver.mem().tx_tick(&mut self.sink);
        let delta = self.driver.counts().since(&before);
        self.pool.free(skb);

        // Convert the counted work to cycles on this machine.
        let work = E1000Driver::<M>::work_from(&delta);
        let wire_len = (ETH_HLEN + payload.len()).max(ETH_ZLEN) as u64;
        let mut cycles = self.machine.packet_cycles_base(&work, wire_len);
        if delta.guard_calls > 0 {
            cycles += self
                .machine
                .packet_cycles_guard_overhead(&work, self.policy_hit_pos);
        }
        self.clock.advance(cycles);
        self.sent += 1;
        Ok(self.machine.to_cycles(cycles))
    }

    /// Send a burst of identical packets; returns the average per-packet
    /// cycles. Ring-full conditions cannot occur because the DMA engine is
    /// ticked synchronously after each doorbell.
    pub fn send_burst(
        &mut self,
        dst: MacAddr,
        ethertype: EtherType,
        size: usize,
        count: u64,
    ) -> Result<f64, SendError> {
        let payload = vec![0xabu8; size.saturating_sub(ETH_HLEN)];
        let start = self.clock.now();
        for _ in 0..count {
            self.sendmsg(dst, ethertype, &payload)?;
        }
        let total = self.clock.now() - start;
        Ok(total.raw() as f64 / count as f64)
    }

    /// The measured work of the most recent single packet (for reports).
    pub fn probe_work(
        &mut self,
        dst: MacAddr,
        ethertype: EtherType,
        size: usize,
    ) -> Result<PacketWork, SendError> {
        let payload = vec![0u8; size.saturating_sub(ETH_HLEN)];
        // Warm-up so cleanup costs reach steady state.
        self.sendmsg(dst, ethertype, &payload)?;
        let before = self.driver.counts();
        self.sendmsg(dst, ethertype, &payload)?;
        let delta = self.driver.counts().since(&before);
        Ok(E1000Driver::<M>::work_from(&delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_core::{Protection, Region, Size, VAddr};
    use kop_e1000e::{DirectMem, E1000Device, GuardedMem};
    use kop_policy::{DefaultAction, PolicyModule};
    use kop_sim::MachineProfile;

    fn baseline_sender() -> RawSender<DirectMem> {
        let mem = DirectMem::with_defaults(E1000Device::default());
        let mut drv = E1000Driver::probe(mem).unwrap();
        drv.up().unwrap();
        RawSender::new(drv, MachineProfile::r350())
    }

    fn guarded_sender(pm: &PolicyModule) -> RawSender<GuardedMem<&PolicyModule>> {
        let mem = GuardedMem::new(DirectMem::with_defaults(E1000Device::default()), pm);
        let mut drv = E1000Driver::probe(mem).unwrap();
        drv.up().unwrap();
        RawSender::new(drv, MachineProfile::r350())
    }

    #[test]
    fn sendmsg_delivers_and_times() {
        let mut s = baseline_sender();
        let lat = s
            .sendmsg(MacAddr::BROADCAST, EtherType::Experimental, &[0u8; 114])
            .unwrap();
        assert_eq!(s.sink.frames, 1);
        assert_eq!(s.sink.bytes, 128);
        // A 128-byte launch on the R350 costs ~25k modelled cycles.
        assert!(lat.raw() > 20_000 && lat.raw() < 30_000, "{lat}");
        assert_eq!(s.sent(), 1);
    }

    #[test]
    fn guarded_send_is_slower_but_barely() {
        let pm = PolicyModule::new();
        pm.set_default_action(DefaultAction::Allow);
        let mut base = baseline_sender();
        let mut carat = guarded_sender(&pm);
        let b = base
            .send_burst(MacAddr::BROADCAST, EtherType::Experimental, 128, 200)
            .unwrap();
        let c = carat
            .send_burst(MacAddr::BROADCAST, EtherType::Experimental, 128, 200)
            .unwrap();
        assert!(c > b, "guarded must cost more ({c} vs {b})");
        let rel = (c - b) / b;
        assert!(rel < 0.001, "relative overhead {rel} (paper: <0.1%)");
    }

    #[test]
    fn probe_work_matches_driver_constants() {
        let mut s = baseline_sender();
        let w = s
            .probe_work(MacAddr::BROADCAST, EtherType::Experimental, 128)
            .unwrap();
        assert_eq!(w.mmio, 1);
        assert_eq!(w.reads, 3);
        assert_eq!(w.writes, 8);
        // The bulk path carries the payload body (frame minus the
        // CPU-written 14-byte header).
        assert_eq!(w.dma_bytes, 128 - 14);
    }

    #[test]
    fn guard_violation_surfaces_as_send_error() {
        let pm = PolicyModule::new(); // default deny, panic action is at
                                      // module level; check() returns Err →
                                      // GuardedMem propagates the violation.
        let mem = GuardedMem::new(DirectMem::with_defaults(E1000Device::default()), &pm);
        // Probe fails at the very first MMIO write.
        match E1000Driver::probe(mem) {
            Err(DriverError::Guard(_)) => {}
            Err(other) => panic!("wrong error: {other}"),
            Ok(_) => panic!("probe must fail under default-deny"),
        }
        // Region covering everything the driver touches lets it through.
        pm.add_region(
            Region::new(
                VAddr(kop_core::layout::DIRECT_MAP_BASE),
                Size(64 << 20),
                Protection::READ_WRITE,
            )
            .unwrap(),
        )
        .unwrap();
        pm.add_region(
            Region::new(
                VAddr(kop_core::layout::MMIO_WINDOW_BASE),
                Size(4 << 30),
                Protection::READ_WRITE,
            )
            .unwrap(),
        )
        .unwrap();
        let mut s = guarded_sender(&pm);
        s.sendmsg(MacAddr::BROADCAST, EtherType::Experimental, &[0u8; 50])
            .unwrap();
        assert_eq!(s.sink.frames, 1);
    }

    #[test]
    fn elapsed_accumulates() {
        let mut s = baseline_sender();
        s.send_burst(MacAddr::BROADCAST, EtherType::Ipv4, 128, 10)
            .unwrap();
        assert!(s.elapsed().raw() > 200_000);
    }
}
