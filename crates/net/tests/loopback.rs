//! Two NICs on a wire: frames transmitted by one driver arrive at the
//! other's receive ring, byte-identical, under both baseline and guarded
//! builds — the full TX → wire → RX data path.

use kop_core::{Protection, Region, Size, VAddr};
use kop_e1000e::{DirectMem, E1000Device, E1000Driver, GuardedMem, MemSpace, VecSink};
use kop_net::{EtherType, Frame};
use kop_policy::{DefaultAction, PolicyModule};

const MAC_A: [u8; 6] = [0x02, 0, 0, 0, 0, 0xaa];
const MAC_B: [u8; 6] = [0x02, 0, 0, 0, 0, 0xbb];

fn driver(mac: [u8; 6]) -> E1000Driver<DirectMem> {
    let mem = DirectMem::with_defaults(E1000Device::new(mac));
    let mut d = E1000Driver::probe(mem).unwrap();
    d.up().unwrap();
    d
}

#[test]
fn frames_cross_the_wire_intact() {
    let mut a = driver(MAC_A);
    let mut b = driver(MAC_B);

    // A transmits 100 distinct frames; the "wire" is the sink, which we
    // feed into B's RX path.
    let mut wire = VecSink::default();
    for i in 0..100u32 {
        let payload = [i.to_le_bytes().as_slice(), &[0u8; 60]].concat();
        a.xmit_and_flush(MAC_B, 0x88b5, &payload, &mut wire)
            .unwrap();
    }
    assert_eq!(wire.frames.len(), 100);

    let mut received = Vec::new();
    for frame in &wire.frames {
        assert!(b.mem().rx_inject(frame), "B accepts the frame");
        received.extend(b.rx_poll().unwrap());
    }
    assert_eq!(received.len(), 100);
    for (i, frame_bytes) in received.iter().enumerate() {
        let f = Frame::parse(frame_bytes).unwrap();
        assert_eq!(f.dst.bytes(), MAC_B);
        assert_eq!(f.src.bytes(), MAC_A);
        assert_eq!(f.ethertype, EtherType::Experimental);
        assert_eq!(&f.payload[..4], &(i as u32).to_le_bytes());
    }
    assert_eq!(b.stats().rx_packets, 100);
}

#[test]
fn guarded_receiver_processes_rx_ring_under_policy() {
    // The RX path's descriptor manipulation is guarded too.
    let pm = PolicyModule::new();
    pm.set_default_action(DefaultAction::Allow);
    let mem = GuardedMem::new(DirectMem::with_defaults(E1000Device::new(MAC_B)), &pm);
    let mut b = E1000Driver::probe(mem).unwrap();
    b.up().unwrap();

    let mut a = driver(MAC_A);
    let mut wire = VecSink::default();
    a.xmit_and_flush(MAC_B, 0x0800, &[7u8; 100], &mut wire)
        .unwrap();

    let checks_before = pm.stats().checks;
    assert!(b.mem().rx_inject(&wire.frames[0]));
    let frames = b.rx_poll().unwrap();
    assert_eq!(frames.len(), 1);
    assert!(
        pm.stats().checks > checks_before,
        "RX descriptor processing executed guards"
    );
}

#[test]
fn guarded_receiver_blocked_from_rx_ring_by_policy() {
    // Tighten the policy to exclude the RX descriptor ring: rx_poll's
    // first descriptor read is rejected.
    let pm = PolicyModule::new();
    pm.set_default_action(DefaultAction::Allow);
    let mem = GuardedMem::new(DirectMem::with_defaults(E1000Device::new(MAC_B)), &pm);
    let mut b = E1000Driver::probe(mem).unwrap();
    b.up().unwrap();

    // Deny the arena page holding the RX ring (offset 0x3000 per the
    // driver layout) by adding an explicit NONE rule over it.
    pm.add_region(
        Region::new(
            VAddr(kop_core::layout::DIRECT_MAP_BASE + 0x3000),
            Size(0x1000),
            Protection::NONE,
        )
        .unwrap(),
    )
    .unwrap();

    let mut a = driver(MAC_A);
    let mut wire = VecSink::default();
    a.xmit_and_flush(MAC_B, 0x0800, &[1u8; 64], &mut wire)
        .unwrap();
    assert!(b.mem().rx_inject(&wire.frames[0]), "DMA is not guarded");
    // …but the driver's CPU read of the descriptor is.
    assert!(b.rx_poll().is_err());
}

#[test]
fn bidirectional_conversation() {
    let mut a = driver(MAC_A);
    let mut b = driver(MAC_B);
    for round in 0..32u32 {
        // A -> B
        let mut wire = VecSink::default();
        a.xmit_and_flush(MAC_B, 0x88b5, &round.to_le_bytes(), &mut wire)
            .unwrap();
        assert!(b.mem().rx_inject(&wire.frames[0]));
        let got = b.rx_poll().unwrap();
        let f = Frame::parse(&got[0]).unwrap();
        assert_eq!(&f.payload[..4], &round.to_le_bytes());
        // B -> A (echo)
        let mut wire = VecSink::default();
        b.xmit_and_flush(MAC_A, 0x88b5, &f.payload[..4], &mut wire)
            .unwrap();
        assert!(a.mem().rx_inject(&wire.frames[0]));
        let got = a.rx_poll().unwrap();
        let f = Frame::parse(&got[0]).unwrap();
        assert_eq!(&f.payload[..4], &round.to_le_bytes());
    }
    assert_eq!(a.stats().tx_packets, 32);
    assert_eq!(a.stats().rx_packets, 32);
    assert_eq!(b.stats().tx_packets, 32);
    assert_eq!(b.stats().rx_packets, 32);
}

#[test]
fn rx_ring_exhaustion_drops_then_recovers() {
    let mut a = driver(MAC_A);
    let mut b = driver(MAC_B);
    let mut wire = VecSink::default();
    // Fill B's RX ring without the driver polling (127 descriptors
    // available: RDT was set to RX_ENTRIES-1).
    for i in 0..200u32 {
        a.xmit_and_flush(MAC_B, 0x88b5, &i.to_le_bytes(), &mut wire)
            .unwrap();
    }
    let mut accepted = 0;
    let mut dropped = 0;
    for frame in &wire.frames {
        if b.mem().rx_inject(frame) {
            accepted += 1;
        } else {
            dropped += 1;
        }
    }
    assert_eq!(accepted, 127, "ring holds RX_ENTRIES-1 frames");
    assert_eq!(dropped, 73);
    // Poll to drain, returning descriptors; the NIC accepts more again.
    let drained = b.rx_poll().unwrap();
    assert_eq!(drained.len(), 127);
    assert!(b.mem().rx_inject(&wire.frames[0]), "ring recovered");
}
