//! Property tests on the forwarding datapath's parse/rewrite pipeline:
//! arbitrary wire bytes never panic the parser, a parse → rewrite →
//! serialize cycle preserves everything the rewrite must not touch, and
//! generator output always survives the full pipeline.

use proptest::prelude::*;

use kop_net::{rewrite, EtherType, FlowGen, Frame, MacAddr};

fn mac_from(v: u64) -> MacAddr {
    let b = v.to_le_bytes();
    MacAddr([b[0], b[1], b[2], b[3], b[4], b[5]])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parse_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let own = MacAddr::local(7);
        if let Some(frame) = Frame::parse(&bytes) {
            // Anything that parses also rewrites and reserializes without
            // panicking, and the result parses again.
            let out = rewrite(&frame, own).to_bytes();
            prop_assert!(Frame::parse(&out).is_some());
        } else {
            prop_assert!(bytes.len() < 14, "only truncated headers fail to parse");
        }
    }

    #[test]
    fn parse_rewrite_serialize_round_trips(
        hdr in (any::<u64>(), any::<u64>(), any::<u16>()),
        payload in proptest::collection::vec(any::<u8>(), 0..1500),
    ) {
        let (d, s, et) = hdr;
        let dst = mac_from(d);
        let src = mac_from(s);
        let f = Frame::new(dst, src, EtherType::from_value(et), payload.clone());
        let wire = f.to_bytes();
        let parsed = Frame::parse(&wire).unwrap();
        prop_assert_eq!(parsed.dst, dst);
        prop_assert_eq!(parsed.src, src);
        prop_assert_eq!(parsed.ethertype.value(), et);
        // Short payloads come back zero-padded to the Ethernet minimum.
        prop_assert_eq!(&parsed.payload[..payload.len()], payload.as_slice());
        prop_assert!(parsed.payload[payload.len()..].iter().all(|&b| b == 0));

        // The rewrite touches exactly the two MAC addresses.
        let own = MacAddr::local(0x99);
        let out = rewrite(&parsed, own);
        prop_assert_eq!(out.dst, src);
        prop_assert_eq!(out.src, own);
        prop_assert_eq!(out.ethertype, parsed.ethertype);
        prop_assert_eq!(&out.payload, &parsed.payload);
        let out_wire = out.to_bytes();
        prop_assert_eq!(out_wire.len(), wire.len());
        prop_assert_eq!(&out_wire[12..], &wire[12..], "only MACs differ on the wire");
    }

    #[test]
    fn generated_flows_always_parse_and_rewrite(
        cfg in (any::<u64>(), 1..512usize),
    ) {
        let (seed, flows) = cfg;
        let mut g = FlowGen::new(seed, flows);
        let own = MacAddr::local(1);
        for _ in 0..32 {
            let bytes = g.next_frame();
            let f = Frame::parse(&bytes).expect("generated frames parse");
            prop_assert_eq!(f.ethertype, EtherType::Experimental);
            let echoed = rewrite(&f, own).to_bytes();
            // The ledger sequence number survives the rewrite.
            prop_assert_eq!(&echoed[14..22], &bytes[14..22]);
        }
    }
}
