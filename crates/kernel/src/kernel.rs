//! The simulated kernel: boot, memory, devices, policy wiring, panic
//! model, and the kernel log.

use std::sync::Arc;

use kop_compiler::CompilerKey;
use kop_core::layout::{DIRECT_MAP_BASE, MODULE_SPACE_BASE, PAGE_SIZE};
use kop_core::{KernelError, KernelResult, VAddr, Violation};
use kop_policy::{NamespaceStore, PolicyCmd, PolicyModule};
use kop_trace::{Producer, TraceEvent, Tracer};

use crate::chardev::DevRegistry;
use crate::lifecycle::LifecycleState;
use crate::loader::LoadedModule;
use crate::mem::SimMemory;
use crate::symbols::{Symbol, SymbolKind, SymbolTable, Visibility};

/// How the loader decides a module is properly guarded.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Verification {
    /// Trust the compiler signature alone (the paper's base design).
    #[default]
    Signature,
    /// *Prove* guard coverage by running the `kop-analysis` dataflow
    /// verifier over the shipped IR at insmod time. A module that proves
    /// clean is accepted — and granted private-symbol trust — even when
    /// its signature does not verify; a guard-stripped module is refused
    /// no matter who signed it.
    Static,
    /// Require both: a trusted signature *and* a clean static proof.
    SignatureAndStatic,
}

impl Verification {
    /// Whether this mode runs the static verifier at insmod time.
    pub fn runs_static(self) -> bool {
        matches!(
            self,
            Verification::Static | Verification::SignatureAndStatic
        )
    }

    /// Whether this mode insists on a trusted signature.
    pub fn needs_signature(self) -> bool {
        matches!(
            self,
            Verification::Signature | Verification::SignatureAndStatic
        )
    }
}

/// Kernel boot configuration.
#[derive(Clone, Debug)]
pub struct KernelConfig {
    /// Refuse modules whose signature does not verify (default true —
    /// turning this off reproduces the "dangerous Linux default" for the
    /// malicious-module demo). Ignored in [`Verification::Static`] mode,
    /// where the static proof substitutes for the signature.
    pub require_signature: bool,
    /// Additionally require the strict guard layout (every access
    /// immediately preceded by its guard). Off by default because the
    /// optimized ablation builds legitimately violate it.
    pub require_strict_guards: bool,
    /// How guard coverage is established at insmod time.
    pub verification: Verification,
    /// Bytes reserved for the kernel heap (kmalloc arena in the direct
    /// map).
    pub heap_size: u64,
    /// Guard violations tolerated per module before the kernel
    /// quarantines (force-unloads) it. Only consulted when a policy runs
    /// with `ViolationAction::Quarantine`; the paper's Panic action
    /// ignores it. Must be ≥ 1 — the violation that reaches the budget is
    /// the one that triggers the unload.
    pub violation_budget: u32,
    /// Profiled checks a guard site needs before [`Kernel::tick`]
    /// promotes it into the inline-bounds tier. Defaults from the
    /// `KOP_HOT_THRESHOLD` environment variable (falling back to 1024).
    /// Explicit [`Kernel::promote_hot`] calls pass their own threshold.
    pub hot_threshold: u64,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            require_signature: true,
            require_strict_guards: false,
            verification: Verification::Signature,
            heap_size: 64 << 20,
            violation_budget: 3,
            hot_threshold: std::env::var("KOP_HOT_THRESHOLD")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(1024),
        }
    }
}

/// One quarantined module: who, how many violations it burned, and the
/// violation that tipped the budget. The kernel keeps these for post-mortem
/// inspection (the analogue of an Oops record).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Name of the unloaded module.
    pub module: String,
    /// Total guard violations charged to it (== the budget at unload).
    pub violations: u32,
    /// The final violation, the one that exhausted the budget.
    pub last: Violation,
}

/// The path of the policy module's control device.
pub const CARAT_DEV: &str = "/dev/carat";

/// The path of the kop-trace control device (the tracefs analogue:
/// `tracing_on`, `trace`, `top`, `counters`, `perfetto`, `clear`).
pub const TRACE_DEV: &str = "/dev/trace";

/// The simulated kernel.
pub struct Kernel {
    /// Simulated memory (RAM + MMIO windows).
    pub mem: SimMemory,
    /// Exported symbols.
    pub symbols: SymbolTable,
    /// Character devices.
    pub devices: DevRegistry,
    config: KernelConfig,
    policy: Arc<PolicyModule>,
    trusted_keys: Vec<CompilerKey>,
    modules: Vec<LoadedModule>,
    dmesg: Vec<String>,
    panic: Option<KernelError>,
    module_space_cursor: VAddr,
    heap_base: VAddr,
    heap_cursor: VAddr,
    heap_end: VAddr,
    /// Model-specific registers (the state privileged intrinsics touch).
    msrs: std::collections::BTreeMap<u64, u64>,
    /// Whether maskable interrupts are enabled (cli/sti state).
    interrupts_enabled: bool,
    /// Per-module policy namespaces (§5: "determine if a *given* kernel
    /// module has access"), sharded by module id so concurrent insmod
    /// registrations contend on different locks. Modules without a
    /// namespace of their own fall back to the global policy (bound to
    /// namespace id [`kop_policy::GLOBAL_NAMESPACE`] at boot).
    namespaces: Arc<NamespaceStore>,
    /// Registered VFS files (§5 object protection).
    pub(crate) files: Vec<crate::objects::FileHandle>,
    /// Registered IPC queues (§5 object protection).
    pub(crate) queues: Vec<crate::objects::QueueHandle>,
    /// Guard violations charged per module (quarantine accounting).
    violations: std::collections::BTreeMap<String, u32>,
    /// Modules force-unloaded after exhausting their violation budget.
    quarantined: Vec<QuarantineRecord>,
    /// Dispatch aliases: calls addressed to the alias resolve to the
    /// target instance (live upgrade swaps point the stable name at the
    /// new version here).
    aliases: std::collections::BTreeMap<String, String>,
    /// Operator-visible lifecycle registry, shared with `/dev/trace`.
    lifecycle: Arc<LifecycleState>,
    /// The kernel-wide trace instance (always present, disabled until
    /// `echo 1 > tracing_on` via [`TRACE_DEV`] or [`Tracer::set_enabled`]).
    tracer: Arc<Tracer>,
    /// Modules whose promoted tier is subscribed to their policy's
    /// generation publishes (each publish atomically drops the tier, so
    /// stale promoted code is discarded promptly — the per-op generation
    /// check already guarantees it could never admit). Cleared on
    /// restart so the fresh image re-subscribes.
    hot_subscribed: std::collections::BTreeSet<String>,
    /// Names reserved by an in-flight staged insmod
    /// ([`Kernel::reserve_module`]) but not yet committed. A second
    /// insmod of the same name races the short reserve section, not the
    /// expensive verify/lower phases.
    pub(crate) pending: std::collections::BTreeSet<String>,
}

impl Kernel {
    /// Boot a kernel with the given policy module and trusted compiler
    /// keys. Registers `/dev/carat` wired to the policy module and
    /// privately exports `carat_guard`.
    pub fn boot(
        policy: Arc<PolicyModule>,
        trusted_keys: Vec<CompilerKey>,
        config: KernelConfig,
    ) -> Kernel {
        // Enforce the documented `violation_budget ≥ 1` invariant at the
        // boundary: a budget of 0 could never charge the violation that
        // triggers the unload, so it is clamped (and logged below).
        let mut config = config;
        let budget_clamped = config.violation_budget == 0;
        if budget_clamped {
            config.violation_budget = 1;
        }
        let mut devices = DevRegistry::new();
        let pm = Arc::clone(&policy);
        devices.register(
            CARAT_DEV,
            Box::new(move |req| {
                let cmd =
                    PolicyCmd::decode(req).map_err(|e| KernelError::BadIoctl(e.to_string()))?;
                Ok(cmd.apply(&pm).encode())
            }),
        );
        let tracer = Tracer::new();
        // The policy's guard counters live in the tracer's unified
        // registry from boot, so `counters` shows them alongside driver
        // counters without a second stats path.
        policy.register_counters(tracer.counters());
        let lifecycle = LifecycleState::new();
        let tc = Arc::clone(&tracer);
        let lc = Arc::clone(&lifecycle);
        devices.register(
            TRACE_DEV,
            Box::new(move |req| {
                let text = std::str::from_utf8(req)
                    .map_err(|_| KernelError::BadIoctl("trace request not utf-8".into()))?;
                // The lifecycle command is answered from the shared
                // registry; everything else is tracefs business.
                let mut parts = text.split_whitespace();
                if parts.next() == Some("lifecycle") {
                    let reply = match parts.next() {
                        Some(module) => lc.render_module(module),
                        None => lc.render(),
                    };
                    return Ok(reply.into_bytes());
                }
                kop_trace::control::handle(&tc, text)
                    .map(String::into_bytes)
                    .map_err(KernelError::BadIoctl)
            }),
        );

        let mut symbols = SymbolTable::new();
        // The single symbol the policy module provides (§3.1), privately
        // exported (§2).
        symbols.export(Symbol {
            name: "carat_guard".into(),
            kind: SymbolKind::Function,
            visibility: Visibility::Private,
            addr: VAddr(kop_core::layout::KERNEL_TEXT_BASE + 0x1000),
            provider: "policy".into(),
        });
        // The §5 extension: the intrinsic-guard entry point, also private.
        symbols.export(Symbol {
            name: "carat_intrinsic_guard".into(),
            kind: SymbolKind::Function,
            visibility: Visibility::Private,
            addr: VAddr(kop_core::layout::KERNEL_TEXT_BASE + 0x1040),
            provider: "policy".into(),
        });
        // Privileged intrinsics themselves resolve as kernel-provided
        // builtins (their *use* is controlled by attestation + the
        // intrinsic policy, not by symbol visibility).
        for (i, name) in kop_compiler::attest::PRIVILEGED_INTRINSICS
            .iter()
            .enumerate()
        {
            symbols.export(Symbol {
                name: (*name).into(),
                kind: SymbolKind::Function,
                visibility: Visibility::Public,
                addr: VAddr(kop_core::layout::KERNEL_TEXT_BASE + 0x3000 + (i as u64) * 0x40),
                provider: "kernel".into(),
            });
        }
        // A few ordinary kernel exports modules commonly import.
        for (i, name) in ["printk", "kmalloc", "kfree", "panic"].iter().enumerate() {
            symbols.export(Symbol {
                name: (*name).into(),
                kind: SymbolKind::Function,
                visibility: Visibility::Public,
                addr: VAddr(kop_core::layout::KERNEL_TEXT_BASE + 0x2000 + (i as u64) * 0x40),
                provider: "kernel".into(),
            });
        }

        let heap_base = VAddr(DIRECT_MAP_BASE + (1 << 30)); // 1 GiB into the direct map
        // Binds the global policy to namespace id 1; per-module policies
        // get fresh ids as they register.
        let namespaces = Arc::new(NamespaceStore::new(Arc::clone(&policy)));
        let mut kernel = Kernel {
            mem: SimMemory::new(),
            symbols,
            devices,
            policy,
            trusted_keys,
            modules: Vec::new(),
            dmesg: Vec::new(),
            panic: None,
            module_space_cursor: VAddr(MODULE_SPACE_BASE),
            heap_base,
            heap_cursor: heap_base,
            heap_end: VAddr(heap_base.raw() + config.heap_size),
            config,
            msrs: std::collections::BTreeMap::new(),
            interrupts_enabled: true,
            namespaces,
            files: Vec::new(),
            queues: Vec::new(),
            violations: std::collections::BTreeMap::new(),
            quarantined: Vec::new(),
            aliases: std::collections::BTreeMap::new(),
            lifecycle,
            tracer,
            hot_subscribed: std::collections::BTreeSet::new(),
            pending: std::collections::BTreeSet::new(),
        };
        kernel.printk("CARAT KOP simulated kernel booted");
        kernel.printk(&format!("policy store: {}", kernel.policy.store_kind()));
        if budget_clamped {
            kernel.printk("carat: violation_budget 0 is invalid, clamped to 1");
        }
        kernel
    }

    /// Boot with defaults: table-backed policy, one trusted key.
    pub fn boot_default() -> (Kernel, CompilerKey) {
        let key = CompilerKey::from_passphrase("operator-key", "carat-kop-dev");
        let policy = Arc::new(PolicyModule::new());
        let kernel = Kernel::boot(policy, vec![key.clone()], KernelConfig::default());
        (kernel, key)
    }

    /// The (global) policy module.
    pub fn policy(&self) -> &Arc<PolicyModule> {
        &self.policy
    }

    /// The kernel-wide tracer. Always present; costs one relaxed atomic
    /// load per emission site until enabled.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The operator-visible lifecycle registry (also served by the
    /// `/dev/trace` `lifecycle` command).
    pub fn lifecycle(&self) -> &Arc<LifecycleState> {
        &self.lifecycle
    }

    /// Point dispatch for `alias` at the loaded instance `target`: calls
    /// addressed to `alias` resolve to `target` from now on. The live
    /// upgrade's swap step — one map write, after the policy epoch bump.
    pub fn set_dispatch_alias(&mut self, alias: &str, target: &str) -> KernelResult<()> {
        if self.modules.iter().all(|m| m.name != target) {
            return Err(KernelError::NoSuchModule(target.to_string()));
        }
        self.printk(&format!("carat: dispatch '{alias}' -> '{target}'"));
        self.aliases.insert(alias.to_string(), target.to_string());
        Ok(())
    }

    /// Remove a dispatch alias; returns whether one existed.
    pub fn clear_dispatch_alias(&mut self, alias: &str) -> bool {
        self.aliases.remove(alias).is_some()
    }

    /// The instance `name` currently dispatches to, if aliased.
    pub fn dispatch_target(&self, name: &str) -> Option<&str> {
        self.aliases.get(name).map(String::as_str)
    }

    /// Install a per-module policy override: guards executed by `module`
    /// consult this policy instead of the global one. This is how an
    /// operator gives, say, a perf-monitoring module MSR access while the
    /// NIC driver keeps a tight memory-only policy.
    pub fn set_module_policy(&mut self, module: &str, policy: Arc<PolicyModule>) {
        let ns = self.namespaces.register(module, policy);
        self.printk(&format!(
            "policy: per-module override for '{module}' (namespace {ns})"
        ));
        // The promoted tier baked bounds (and a generation tag) from the
        // *previous* policy object; a different policy could reuse the
        // same generation number, so the tag alone is not enough here.
        // Drop the tier and the old policy's subscription outright. (The
        // TLB and hot tiers also key on the namespace id, which the
        // registration just changed — their entries are already stale.)
        self.drop_promotions(module);
    }

    /// Remove a per-module override; returns whether one existed.
    pub fn clear_module_policy(&mut self, module: &str) -> bool {
        let had = self.namespaces.remove(module).is_some();
        if had {
            // Same generation-collision hazard as `set_module_policy`:
            // the module now answers to the global policy.
            self.drop_promotions(module);
        }
        had
    }

    /// The sharded per-module policy namespace registry. Shared with
    /// check-path holders (`Arc`): resolving a module's policy never
    /// takes a kernel-wide lock.
    pub fn namespaces(&self) -> &Arc<NamespaceStore> {
        &self.namespaces
    }

    /// Fleet-wide revocation: advance the revocation epoch of the global
    /// policy and every registered namespace, so every cached grant in
    /// every tier (guard TLBs, hot slots, promoted inline bounds) goes
    /// stale at once — without republishing a single ruleset. Returns
    /// how many policies were bumped.
    pub fn revoke_fleet(&mut self) -> usize {
        let n = self.namespaces.revoke_all();
        self.printk(&format!("carat: fleet revocation, {n} polic(ies) bumped"));
        n
    }

    /// Invalidate `module`'s promoted trace tier and forget its
    /// generation subscription, so the next promotion re-bakes bounds
    /// from (and re-subscribes to) the now-governing policy.
    fn drop_promotions(&mut self, module: &str) {
        if let Some(loaded) = self.module(module) {
            if let Some(compiled) = loaded.image().compiled.as_ref() {
                compiled.invalidate_promotions();
            }
        }
        self.forget_hot_subscription(module);
    }

    /// The policy governing `module`: its own namespace if registered,
    /// else the global policy. One shard read-lock.
    pub fn policy_for(&self, module: &str) -> Arc<PolicyModule> {
        self.namespaces.resolve(module)
    }

    /// The boot configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Profile-directed promotion: re-lower `module`'s hot guard sites
    /// into the inline-bounds tier.
    ///
    /// Sites with at least `min_hits` profiled checks — and not a single
    /// denial — are mapped through their observed address envelope onto
    /// the covering region of the *current* policy snapshot; that
    /// region's `[lo, hi)` bound and permission bits are baked into
    /// promoted copies of the containing functions as immediate
    /// compares, tagged with the snapshot generation. Before installing,
    /// the kernel audits its own work: the inline obligations are run
    /// through the independent translation validator with the policy's
    /// retained-snapshot grant oracle, so a bound the validator cannot
    /// recompute from the cited generation is refused (KA009–KA011).
    ///
    /// A later `bump_epoch`/`replace_regions` publish atomically drops
    /// the tier (and every promoted op independently rechecks the
    /// generation, so a stale bound can never admit). Promotion is lazy
    /// after that: call this again — or let [`Kernel::tick`] do it —
    /// once the profile warrants it.
    ///
    /// Returns the number of guard ops promoted (0 when nothing is hot,
    /// the module is unguarded, or it has no bytecode image).
    pub fn promote_hot(&mut self, module: &str, min_hits: u64) -> KernelResult<usize> {
        let loaded = self
            .module(module)
            .ok_or_else(|| KernelError::NoSuchModule(module.to_string()))?;
        let image = Arc::clone(loaded.image());
        let (Some(compiled), Some(sites)) = (image.compiled.as_ref(), image.sites.as_ref()) else {
            return Ok(0);
        };

        // Hot-site selection: the tracer's profile, envelope required.
        let hot: Vec<_> = self
            .tracer()
            .hot_sites(min_hits)
            .into_iter()
            .filter(|(m, p)| m.module == module && p.lo_addr < p.hi_addr)
            .collect();
        if hot.is_empty() {
            return Ok(0);
        }

        // Map each site id back to its guard call so the obligation can
        // cite it (same deterministic walk the loader registered from).
        let mut guard_of = std::collections::BTreeMap::new();
        for gs in kop_trace::assign_guard_sites(&image.ir) {
            if let Some(id) = sites.lookup(&gs.function, gs.inst) {
                guard_of.insert(id, gs);
            }
        }

        // Bake bounds from the current snapshot. The revocation epoch is
        // read *before* the snapshot: a fleet revocation racing the bake
        // leaves the tier already-stale (per-frame epoch mismatch, prompt
        // deopt), never falsely fresh.
        let policy = self.policy_for(module);
        let epoch = policy.revocation_epoch();
        let snap = policy.policy_snapshot();
        let gen = snap.generation();
        let mut specs = Vec::new();
        let mut obligations = Vec::new();
        for (meta, prof) in &hot {
            let Some(gs) = guard_of.get(&meta.id) else {
                continue;
            };
            let Some(guard) = inst_ref_of(&image.ir, &gs.function, gs.inst) else {
                continue;
            };
            // The covering grant for the whole observed envelope; a site
            // straddling regions (or outside every region) stays cold.
            let Some(region) = snap.regions().iter().find(|r| {
                r.base.raw() <= prof.lo_addr
                    && prof.hi_addr <= r.base.raw().saturating_add(r.len.raw())
            }) else {
                continue;
            };
            let lo = region.base.raw();
            let hi = region.base.raw().saturating_add(region.len.raw());
            let perm = region.prot.granted().raw();
            specs.push(kop_vm::PromotionSpec {
                site: meta.id,
                lo,
                hi,
                perm,
            });
            obligations.push(kop_analysis::Obligation::Inline {
                function: gs.function.clone(),
                guard,
                lo,
                hi,
                flags: perm as u64,
                gen,
                env_lo: prof.lo_addr,
                env_hi: prof.hi_addr,
            });
        }
        if specs.is_empty() {
            return Ok(0);
        }

        // Self-validation before install: the independent validator must
        // re-derive every baked bound from the retained snapshot history.
        let ledger = kop_analysis::ObligationLedger { obligations };
        let grants = |g: u64| policy.regions_at(g);
        let report = kop_analysis::validate_module_with_grants(&image.ir, &ledger, Some(&grants));
        if !report.is_clean() {
            let first = report
                .errors()
                .next()
                .map(|d| d.to_string())
                .unwrap_or_else(|| "inline obligations rejected".into());
            let err = KernelError::StaticVerification(format!(
                "promotion refused: {first} ({} error(s) total)",
                report.errors().count()
            ));
            self.printk(&format!("carat-jit {module}: {err}"));
            return Err(err);
        }

        let n = compiled.promote(gen, epoch, &specs);
        if n == 0 {
            return Ok(0);
        }
        // One subscription per module image: any policy publish drops
        // the tier wholesale.
        if self.hot_subscribed.insert(module.to_string()) {
            let tier = compiled.clone();
            policy.subscribe_generation(Box::new(move |_gen| {
                tier.invalidate_promotions();
            }));
        }
        let sites_promoted = specs.len();
        self.printk(&format!(
            "carat-jit {module}: promoted {n} guard op(s) across {sites_promoted} site(s) at generation {gen}"
        ));
        Ok(n)
    }

    /// Periodic promotion sweep: runs [`Kernel::promote_hot`] over every
    /// loaded module at the configured
    /// [`KernelConfig::hot_threshold`]. Modules whose inline ledger the
    /// validator refuses are skipped (the refusal is in dmesg); the
    /// sweep never fails. Returns the total guard ops promoted.
    pub fn tick(&mut self) -> usize {
        let names: Vec<String> = self.modules.iter().map(|m| m.name.clone()).collect();
        let threshold = self.config.hot_threshold;
        names
            .iter()
            .map(|n| self.promote_hot(n, threshold).unwrap_or(0))
            .sum()
    }

    /// Trusted compiler keys (loader uses these to verify signatures).
    pub(crate) fn trusted_keys(&self) -> &[CompilerKey] {
        &self.trusted_keys
    }

    /// Append to the kernel log.
    pub fn printk(&mut self, msg: &str) {
        self.dmesg.push(msg.to_string());
    }

    /// The kernel log.
    pub fn dmesg(&self) -> &[String] {
        &self.dmesg
    }

    /// Record a kernel panic (first one wins, as on real hardware where
    /// the machine stops). Returns the panic error for propagation.
    pub fn do_panic(&mut self, err: KernelError) -> KernelError {
        self.printk(&format!("{err}"));
        if self.panic.is_none() {
            self.panic = Some(err.clone());
        }
        err
    }

    /// Whether the kernel has panicked, and why.
    pub fn panicked(&self) -> Option<&KernelError> {
        self.panic.as_ref()
    }

    /// Charge a guard violation against `module`'s quarantine budget.
    ///
    /// Under budget, the violation is logged and `Ok(())` returned — the
    /// caller squashes the access and execution continues. When the
    /// charge reaches [`KernelConfig::violation_budget`], the module is
    /// quarantined: force-unloaded (the `rmmod` path: symbol unlink, text
    /// unprotect, per-module policy revoke), a [`QuarantineRecord`]
    /// appended, and `Err(KernelError::ModuleQuarantined)` returned. The
    /// kernel does **not** panic — this is the oops-not-panic posture.
    pub fn note_violation(&mut self, module: &str, v: Violation) -> KernelResult<()> {
        let count = {
            let c = self.violations.entry(module.to_string()).or_insert(0);
            *c += 1;
            *c
        };
        let budget = self.config.violation_budget.max(1);
        self.printk(&format!(
            "carat: guard violation by '{module}' ({count}/{budget}): {v}"
        ));
        self.tracer.record(
            Producer::Kernel,
            TraceEvent::Violation {
                module: module.to_string(),
                addr: v.addr.raw(),
            },
        );
        if count < budget {
            return Ok(());
        }
        Err(self.quarantine_module(module, v, count))
    }

    /// Force-unload `module` after `count` violations, record the
    /// quarantine, and return the error the offending call unwinds with.
    fn quarantine_module(&mut self, module: &str, v: Violation, count: u32) -> KernelError {
        self.printk(&format!(
            "Oops: quarantining module '{module}' after {count} guard violation(s)"
        ));
        if let Some(m) = self.take_module(module) {
            self.mem.protect_readwrite(m.text_base, m.text_size);
            self.symbols.remove_provider(module);
        }
        self.clear_module_policy(module);
        let record = QuarantineRecord {
            module: module.to_string(),
            violations: count,
            last: v,
        };
        self.lifecycle.note_quarantine(&record);
        self.quarantined.push(record);
        self.printk(&format!(
            "carat: module '{module}' unloaded; kernel continues"
        ));
        self.tracer.record(
            Producer::Kernel,
            TraceEvent::ModuleQuarantine {
                module: module.to_string(),
                violations: count as u64,
            },
        );
        KernelError::ModuleQuarantined {
            module: module.to_string(),
            violation: v,
        }
    }

    /// Quarantine records, oldest first.
    pub fn quarantine_records(&self) -> &[QuarantineRecord] {
        &self.quarantined
    }

    /// Whether `module` has been quarantined.
    pub fn is_quarantined(&self, module: &str) -> bool {
        self.quarantined.iter().any(|r| r.module == module)
    }

    /// Guard violations charged to `module` so far.
    pub fn violation_count(&self, module: &str) -> u32 {
        self.violations.get(module).copied().unwrap_or(0)
    }

    /// Zero `module`'s violation charge — a restarted module gets a
    /// fresh budget, or its first post-restart violation would instantly
    /// re-quarantine it.
    pub(crate) fn reset_violations(&mut self, module: &str) {
        self.violations.remove(module);
    }

    /// Fail with `KernelError::Panic` if the kernel has already panicked —
    /// callers use this to model "the machine is down".
    pub fn check_alive(&self) -> KernelResult<()> {
        match &self.panic {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Allocate `size` bytes from the kernel heap (kmalloc). Returns a
    /// direct-map address. The arena is a bump allocator — modules in this
    /// simulation never free enough to matter, and kfree is a no-op apart
    /// from logging.
    pub fn kmalloc(&mut self, size: u64) -> KernelResult<VAddr> {
        if self.mem.hook_fail_kmalloc(size) {
            return Err(KernelError::NoMemory(format!(
                "kmalloc of {size} bytes failed (injected fault)"
            )));
        }
        let aligned = size.div_ceil(16) * 16;
        let addr = self.heap_cursor;
        let next = VAddr(
            addr.raw()
                .checked_add(aligned)
                .ok_or_else(|| KernelError::NoMemory("heap wrap".into()))?,
        );
        if next > self.heap_end {
            return Err(KernelError::NoMemory(format!(
                "kmalloc of {size} bytes exhausts heap"
            )));
        }
        self.heap_cursor = next;
        Ok(addr)
    }

    /// Free a kmalloc'd allocation (no-op bump allocator; logged).
    pub fn kfree(&mut self, addr: VAddr) {
        debug_assert!(addr >= self.heap_base && addr < self.heap_end);
    }

    /// Bytes currently allocated from the heap.
    pub fn heap_used(&self) -> u64 {
        self.heap_cursor.raw() - self.heap_base.raw()
    }

    /// Reserve `size` bytes of module space (page-aligned).
    pub(crate) fn alloc_module_space(&mut self, size: u64) -> KernelResult<VAddr> {
        let aligned = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let base = self.module_space_cursor;
        let next = base.raw() + aligned;
        if next > MODULE_SPACE_BASE + kop_core::layout::MODULE_SPACE_SIZE {
            return Err(KernelError::NoMemory("module space exhausted".into()));
        }
        self.module_space_cursor = VAddr(next);
        Ok(base)
    }

    /// The loaded-module list (lsmod).
    pub fn modules(&self) -> &[LoadedModule] {
        &self.modules
    }

    /// Find a loaded module by name. A name with no direct match follows
    /// one level of dispatch alias (the live-upgrade indirection).
    pub fn module(&self, name: &str) -> Option<&LoadedModule> {
        self.modules.iter().find(|m| m.name == name).or_else(|| {
            let target = self.aliases.get(name)?;
            self.modules.iter().find(|m| &m.name == target)
        })
    }

    pub(crate) fn push_module(&mut self, m: LoadedModule) {
        self.modules.push(m);
    }

    pub(crate) fn take_module(&mut self, name: &str) -> Option<LoadedModule> {
        let idx = self.modules.iter().position(|m| m.name == name)?;
        Some(self.modules.remove(idx))
    }

    /// Issue an ioctl from "user space".
    pub fn ioctl(&self, dev: &str, request: &[u8]) -> KernelResult<Vec<u8>> {
        self.check_alive()?;
        self.devices.ioctl(dev, request)
    }

    /// Write a model-specific register (the `__wrmsr` builtin).
    pub fn wrmsr(&mut self, msr: u64, value: u64) {
        self.msrs.insert(msr, value);
    }

    /// Read a model-specific register (the `__rdmsr` builtin).
    pub fn rdmsr(&self, msr: u64) -> u64 {
        self.msrs.get(&msr).copied().unwrap_or(0)
    }

    /// Disable maskable interrupts (the `__cli` builtin).
    pub fn cli(&mut self) {
        self.interrupts_enabled = false;
    }

    /// Enable maskable interrupts (the `__sti` builtin).
    pub fn sti(&mut self) {
        self.interrupts_enabled = true;
    }

    /// Whether maskable interrupts are enabled.
    pub fn interrupts_enabled(&self) -> bool {
        self.interrupts_enabled
    }

    /// Forget a module's promotion subscription (restart/upgrade installs
    /// a fresh image whose tier must subscribe anew).
    pub(crate) fn forget_hot_subscription(&mut self, module: &str) {
        self.hot_subscribed.remove(module);
    }
}

/// Locate a guard call's `(block, index)` reference — the citation an
/// inline obligation carries — from its arena instruction id.
fn inst_ref_of(ir: &kop_ir::Module, function: &str, inst: u32) -> Option<kop_analysis::InstRef> {
    let f = ir.function(function)?;
    for b in &f.blocks {
        if let Some(index) = b.insts.iter().position(|iid| iid.0 == inst) {
            return Some(kop_analysis::InstRef {
                block: b.name.clone(),
                index,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_core::{AccessFlags, Protection, Region, Size};
    use kop_policy::PolicyResponse;

    #[test]
    fn boot_exports_guard_privately() {
        let (kernel, _) = Kernel::boot_default();
        let guard = kernel.symbols.get("carat_guard").unwrap();
        assert_eq!(guard.visibility, Visibility::Private);
        assert!(kernel.symbols.resolve("carat_guard", false).is_none());
        assert!(kernel.symbols.resolve("carat_guard", true).is_some());
        assert!(kernel.dmesg()[0].contains("booted"));
    }

    #[test]
    fn carat_ioctl_controls_policy() {
        let (kernel, _) = Kernel::boot_default();
        let region = Region::new(
            VAddr(0xffff_8880_0000_0000),
            Size(0x1000),
            Protection::READ_WRITE,
        )
        .unwrap();
        let resp = kernel
            .ioctl(CARAT_DEV, &PolicyCmd::AddRegion(region).encode())
            .unwrap();
        assert_eq!(PolicyResponse::decode(&resp).unwrap(), PolicyResponse::Ok);
        assert_eq!(kernel.policy().region_count(), 1);
        assert!(kernel
            .policy()
            .check(VAddr(0xffff_8880_0000_0800), Size(8), AccessFlags::RW)
            .is_ok());
    }

    #[test]
    fn bad_ioctl_payload_rejected() {
        let (kernel, _) = Kernel::boot_default();
        assert!(matches!(
            kernel.ioctl(CARAT_DEV, &[0xee, 0xff]).unwrap_err(),
            KernelError::BadIoctl(_)
        ));
    }

    #[test]
    fn kmalloc_bump_and_exhaustion() {
        let key = CompilerKey::from_passphrase("k", "s");
        let policy = Arc::new(PolicyModule::new());
        let mut kernel = Kernel::boot(
            policy,
            vec![key],
            KernelConfig {
                heap_size: 1024,
                ..KernelConfig::default()
            },
        );
        let a = kernel.kmalloc(100).unwrap();
        let b = kernel.kmalloc(100).unwrap();
        assert!(b.raw() >= a.raw() + 100);
        assert!(a.is_kernel_half());
        assert_eq!(kernel.heap_used(), 224); // 2 × 112 (16-aligned)
        assert!(matches!(
            kernel.kmalloc(2048).unwrap_err(),
            KernelError::NoMemory(_)
        ));
    }

    #[test]
    fn quarantine_budget_unloads_without_panicking() {
        use kop_core::error::ViolationKind;
        let (mut kernel, _) = Kernel::boot_default();
        let v = Violation::new(
            VAddr(0x100),
            Size(8),
            AccessFlags::READ,
            ViolationKind::NoMatchingRegion,
        );
        // Default budget is 3: two warnings, third strike unloads.
        assert!(kernel.note_violation("rogue", v).is_ok());
        assert!(kernel.note_violation("rogue", v).is_ok());
        let err = kernel.note_violation("rogue", v).unwrap_err();
        assert!(matches!(err, KernelError::ModuleQuarantined { .. }));
        // The kernel survives — this is an oops, not a panic.
        assert!(kernel.panicked().is_none());
        assert!(kernel.check_alive().is_ok());
        assert!(kernel.is_quarantined("rogue"));
        assert_eq!(kernel.violation_count("rogue"), 3);
        assert_eq!(kernel.quarantine_records().len(), 1);
        assert_eq!(kernel.quarantine_records()[0].last, v);
        assert!(kernel.dmesg().iter().any(|l| l.contains("Oops")));
    }

    #[test]
    fn violation_budget_zero_clamped_at_boot() {
        use kop_core::error::ViolationKind;
        let key = CompilerKey::from_passphrase("k", "s");
        let mut kernel = Kernel::boot(
            Arc::new(PolicyModule::new()),
            vec![key],
            KernelConfig {
                violation_budget: 0,
                ..KernelConfig::default()
            },
        );
        // The invariant holds after boot and the clamp is logged.
        assert_eq!(kernel.config().violation_budget, 1);
        assert!(kernel
            .dmesg()
            .iter()
            .any(|l| l.contains("violation_budget 0 is invalid")));
        // Budget 1: the very first violation quarantines.
        let v = Violation::new(
            VAddr(0x100),
            Size(8),
            AccessFlags::READ,
            ViolationKind::NoMatchingRegion,
        );
        assert!(kernel.note_violation("rogue", v).is_err());
        assert!(kernel.is_quarantined("rogue"));
        // Any budget ≥ 1 passes through untouched.
        let (kernel, _) = Kernel::boot_default();
        assert_eq!(kernel.config().violation_budget, 3);
    }

    #[test]
    fn lifecycle_chardev_reports_quarantine() {
        use kop_core::error::ViolationKind;
        let (mut kernel, _) = Kernel::boot_default();
        let empty = kernel.ioctl(TRACE_DEV, b"lifecycle").unwrap();
        assert_eq!(empty, b"no modules tracked");
        let v = Violation::new(
            VAddr(0x100),
            Size(8),
            AccessFlags::READ,
            ViolationKind::NoMatchingRegion,
        );
        for _ in 0..2 {
            let _ = kernel.note_violation("rogue", v);
        }
        assert!(kernel.note_violation("rogue", v).is_err());
        let out = kernel.ioctl(TRACE_DEV, b"lifecycle rogue").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("state=quarantined"), "{text}");
        assert!(text.contains("last_quarantine(violations=3"), "{text}");
        // Unknown module and the non-lifecycle path still work.
        let out = kernel.ioctl(TRACE_DEV, b"lifecycle ghost").unwrap();
        assert_eq!(out, b"ghost: unknown");
        assert!(kernel.ioctl(TRACE_DEV, b"tracing_on").is_ok());
    }

    #[test]
    fn dispatch_alias_resolves_one_level() {
        let (mut kernel, _) = Kernel::boot_default();
        // Aliasing to an unloaded target is refused.
        assert!(matches!(
            kernel.set_dispatch_alias("nic", "nic#v2").unwrap_err(),
            KernelError::NoSuchModule(_)
        ));
        assert!(kernel.dispatch_target("nic").is_none());
        assert!(!kernel.clear_dispatch_alias("nic"));
    }

    #[test]
    fn panic_model() {
        let (mut kernel, _) = Kernel::boot_default();
        assert!(kernel.check_alive().is_ok());
        let err = KernelError::Panic {
            message: "guard check failed".into(),
            violation: None,
        };
        kernel.do_panic(err.clone());
        assert_eq!(kernel.panicked(), Some(&err));
        // The machine is down: ioctls fail.
        assert!(kernel.ioctl(CARAT_DEV, &PolicyCmd::List.encode()).is_err());
        // First panic wins.
        kernel.do_panic(KernelError::Panic {
            message: "second".into(),
            violation: None,
        });
        assert_eq!(kernel.panicked(), Some(&err));
        // Both are in the log.
        assert!(kernel.dmesg().iter().any(|l| l.contains("guard check")));
        assert!(kernel.dmesg().iter().any(|l| l.contains("second")));
    }
}
