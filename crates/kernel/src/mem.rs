//! Simulated kernel memory: sparse pages with permissions, plus MMIO
//! ranges dispatched to device models.
//!
//! Loads and stores of 1/2/4/8 bytes are little-endian, as on x86-64. A
//! page is materialized (zero-filled) on first touch, like anonymous
//! kernel memory. Module text pages are mapped read-only: CARAT KOP "can
//! fall back on the Linux kernel's use of traditional hardware-based
//! virtual memory for some enforcement. For example, paging can be used to
//! mark the kernel module's code pages as unwritable, thus avoiding the
//! problem of self-modifying code" (§2).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use kop_core::layout::{PAGE_SHIFT, PAGE_SIZE};
use kop_core::{KernelError, KernelResult, Size, VAddr};

/// A memory-mapped device: register reads/writes at offsets within its
/// window. Offsets and values are raw; access widths are 1/2/4/8.
pub trait MmioDevice: Send {
    /// Handle a read of `size` bytes at `offset` within the window.
    fn mmio_read(&mut self, offset: u64, size: u64) -> u64;
    /// Handle a write of `size` bytes at `offset` within the window.
    fn mmio_write(&mut self, offset: u64, size: u64, value: u64);
}

/// Deterministic fault-injection seam for kernel memory and the heap.
///
/// Installed with [`SimMemory::set_fault_hook`]; every method has a no-op
/// default so implementors (notably `kop-faultline`) override only the
/// faults they model. Implementations must be deterministic (seeded RNG
/// only) so fault trials reproduce byte-identically.
pub trait FaultHook: Send {
    /// Consulted by `kmalloc` before carving an allocation; return `true`
    /// to make this allocation fail (simulated page-allocation failure).
    fn fail_kmalloc(&mut self, size: u64) -> bool {
        let _ = size;
        false
    }

    /// May corrupt the value of an integer load from simulated memory
    /// (transient bit-flip). Return `value` unchanged for no fault.
    fn corrupt_read(&mut self, addr: VAddr, size: Size, value: u64) -> u64 {
        let _ = (addr, size);
        value
    }
}

/// Sparse simulated memory with page permissions and MMIO windows.
///
/// The read side takes `&self` and the fault hook sits behind a mutex,
/// so `SimMemory` is `Send + Sync`: any number of simulated CPUs may run
/// concurrent (guarded) loads against a shared reference — see
/// [`SimMemory::guarded_read_uint`] — while stores keep requiring `&mut`
/// (exclusive) access.
#[derive(Default)]
pub struct SimMemory {
    pages: HashMap<u64, Page>,
    mmio: Vec<MmioRange>,
    fault_hook: Mutex<Option<Box<dyn FaultHook>>>,
}

struct MmioRange {
    base: VAddr,
    len: u64,
    device: Arc<Mutex<dyn MmioDevice>>,
}

struct Page {
    bytes: Box<[u8; PAGE_SIZE as usize]>,
    writable: bool,
}

impl SimMemory {
    /// Empty memory.
    pub fn new() -> SimMemory {
        SimMemory::default()
    }

    /// Install a fault-injection hook consulted by integer reads and (via
    /// the kernel) `kmalloc`. Replaces any previous hook.
    pub fn set_fault_hook(&mut self, hook: Box<dyn FaultHook>) {
        *self.fault_hook.lock() = Some(hook);
    }

    /// Remove and return the installed fault hook, if any.
    pub fn clear_fault_hook(&mut self) -> Option<Box<dyn FaultHook>> {
        self.fault_hook.lock().take()
    }

    /// Whether the installed hook (if any) fails a kmalloc of `size`.
    pub(crate) fn hook_fail_kmalloc(&mut self, size: u64) -> bool {
        self.fault_hook
            .lock()
            .as_mut()
            .is_some_and(|h| h.fail_kmalloc(size))
    }

    /// Register an MMIO window. Accesses inside `[base, base+len)` are
    /// dispatched to `device` instead of RAM. Windows must not overlap.
    pub fn map_mmio(&mut self, base: VAddr, len: u64, device: Arc<Mutex<dyn MmioDevice>>) {
        for r in &self.mmio {
            let disjoint = base.raw() + len <= r.base.raw() || r.base.raw() + r.len <= base.raw();
            assert!(disjoint, "overlapping MMIO windows");
        }
        self.mmio.push(MmioRange { base, len, device });
    }

    fn find_mmio(&self, addr: VAddr, size: u64) -> Option<&MmioRange> {
        self.mmio
            .iter()
            .find(|r| addr.raw() >= r.base.raw() && addr.raw() + size <= r.base.raw() + r.len)
    }

    /// Mark the pages covering `[base, base+len)` read-only (they are
    /// materialized if missing). Used for module text.
    pub fn protect_readonly(&mut self, base: VAddr, len: u64) {
        let first = base.raw() >> PAGE_SHIFT;
        let last = (base.raw() + len.saturating_sub(1)) >> PAGE_SHIFT;
        for pfn in first..=last {
            let page = self.pages.entry(pfn).or_insert_with(|| Page {
                bytes: Box::new([0u8; PAGE_SIZE as usize]),
                writable: true,
            });
            page.writable = false;
        }
    }

    /// Make the pages covering a range writable again (module unload).
    pub fn protect_readwrite(&mut self, base: VAddr, len: u64) {
        let first = base.raw() >> PAGE_SHIFT;
        let last = (base.raw() + len.saturating_sub(1)) >> PAGE_SHIFT;
        for pfn in first..=last {
            if let Some(page) = self.pages.get_mut(&pfn) {
                page.writable = true;
            }
        }
    }

    /// Number of materialized pages (testing/telemetry aid).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Read `buf.len()` bytes at `addr`. Takes `&self`: reads never
    /// materialize pages (untouched memory reads zero), so any number of
    /// threads may read concurrently.
    pub fn read_bytes(&self, addr: VAddr, buf: &mut [u8]) -> KernelResult<()> {
        if let Some(r) = self.find_mmio(addr, buf.len() as u64) {
            // Byte-wise MMIO reads are legal but unusual; do one access of
            // the full width when it is a power of two <= 8.
            let off = addr.raw() - r.base.raw();
            let n = buf.len() as u64;
            if matches!(n, 1 | 2 | 4 | 8) {
                let v = r.device.lock().mmio_read(off, n);
                buf.copy_from_slice(&v.to_le_bytes()[..buf.len()]);
                return Ok(());
            }
            for (i, b) in buf.iter_mut().enumerate() {
                *b = r.device.lock().mmio_read(off + i as u64, 1) as u8;
            }
            return Ok(());
        }
        let mut addr = addr.raw();
        let mut rest = buf;
        while !rest.is_empty() {
            let pfn = addr >> PAGE_SHIFT;
            let off = (addr & (PAGE_SIZE - 1)) as usize;
            let take = rest.len().min(PAGE_SIZE as usize - off);
            match self.pages.get(&pfn) {
                Some(page) => rest[..take].copy_from_slice(&page.bytes[off..off + take]),
                None => rest[..take].fill(0), // untouched memory reads zero
            }
            rest = &mut rest[take..];
            addr = addr.checked_add(take as u64).ok_or(KernelError::Fault {
                addr: VAddr(addr),
                what: "read wraps address space".into(),
            })?;
        }
        Ok(())
    }

    /// Write `buf` at `addr`.
    pub fn write_bytes(&mut self, addr: VAddr, buf: &[u8]) -> KernelResult<()> {
        if let Some(r) = self.find_mmio(addr, buf.len() as u64) {
            let off = addr.raw() - r.base.raw();
            let n = buf.len() as u64;
            if matches!(n, 1 | 2 | 4 | 8) {
                let mut bytes = [0u8; 8];
                bytes[..buf.len()].copy_from_slice(buf);
                r.device
                    .lock()
                    .mmio_write(off, n, u64::from_le_bytes(bytes));
                return Ok(());
            }
            for (i, b) in buf.iter().enumerate() {
                r.device.lock().mmio_write(off + i as u64, 1, *b as u64);
            }
            return Ok(());
        }
        let mut addr_raw = addr.raw();
        let mut rest = buf;
        while !rest.is_empty() {
            let pfn = addr_raw >> PAGE_SHIFT;
            let off = (addr_raw & (PAGE_SIZE - 1)) as usize;
            let take = rest.len().min(PAGE_SIZE as usize - off);
            let page = self.pages.entry(pfn).or_insert_with(|| Page {
                bytes: Box::new([0u8; PAGE_SIZE as usize]),
                writable: true,
            });
            if !page.writable {
                return Err(KernelError::Fault {
                    addr: VAddr(addr_raw),
                    what: "write to read-only page".into(),
                });
            }
            page.bytes[off..off + take].copy_from_slice(&rest[..take]);
            rest = &rest[take..];
            addr_raw = addr_raw
                .checked_add(take as u64)
                .ok_or(KernelError::Fault {
                    addr: VAddr(addr_raw),
                    what: "write wraps address space".into(),
                })?;
        }
        Ok(())
    }

    /// Read a little-endian unsigned integer of `size` (1/2/4/8) bytes.
    pub fn read_uint(&self, addr: VAddr, size: Size) -> KernelResult<u64> {
        let n = size.raw();
        debug_assert!(matches!(n, 1 | 2 | 4 | 8), "bad access width {n}");
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf[..n as usize])?;
        let value = u64::from_le_bytes(buf);
        Ok(match self.fault_hook.lock().as_mut() {
            Some(h) => h.corrupt_read(addr, size, value),
            None => value,
        })
    }

    /// The SMP check entry point: run a guard check against `policy` and,
    /// if permitted, perform the load — all through `&self`, so any
    /// number of simulated CPUs can execute guarded reads concurrently
    /// against one shared memory (`SimMemory` is `Send + Sync`; with
    /// [`kop_policy::PolicyModule`] the check itself is lock-free).
    pub fn guarded_read_uint(
        &self,
        policy: &dyn kop_policy::PolicyCheck,
        addr: VAddr,
        size: Size,
    ) -> KernelResult<u64> {
        policy.carat_guard(addr, size, kop_core::AccessFlags::READ)?;
        self.read_uint(addr, size)
    }

    /// Write a little-endian unsigned integer of `size` (1/2/4/8) bytes.
    pub fn write_uint(&mut self, addr: VAddr, size: Size, value: u64) -> KernelResult<()> {
        let n = size.raw();
        debug_assert!(matches!(n, 1 | 2 | 4 | 8), "bad access width {n}");
        self.write_bytes(addr, &value.to_le_bytes()[..n as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_on_first_read() {
        let m = SimMemory::new();
        assert_eq!(m.read_uint(VAddr(0x5000), Size(8)).unwrap(), 0);
        assert_eq!(m.resident_pages(), 0, "reads must not materialize pages");
    }

    #[test]
    fn sim_memory_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimMemory>();
    }

    #[test]
    fn concurrent_guarded_reads_share_one_memory() {
        use kop_core::{Protection, Region};
        use kop_policy::PolicyModule;

        let mut m = SimMemory::new();
        let base = VAddr(0xffff_8880_0000_0000);
        for i in 0..64u64 {
            m.write_uint(VAddr(base.raw() + i * 8), Size(8), i).unwrap();
        }
        let pm = PolicyModule::new();
        pm.add_region(Region::new(base, Size(64 * 8), Protection::READ_ONLY).unwrap())
            .unwrap();
        let mem = &m;
        let policy = &pm;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    for i in 0..64u64 {
                        let a = VAddr(base.raw() + i * 8);
                        assert_eq!(mem.guarded_read_uint(policy, a, Size(8)).unwrap(), i);
                    }
                    // Out-of-region reads are refused by the guard.
                    let beyond = VAddr(base.raw() + 64 * 8);
                    assert!(mem.guarded_read_uint(policy, beyond, Size(8)).is_err());
                });
            }
        });
        assert_eq!(pm.stats().checks, 4 * 65);
    }

    #[test]
    fn write_read_roundtrip_all_widths() {
        let mut m = SimMemory::new();
        let a = VAddr(0xffff_8880_0000_1000);
        for (size, val) in [
            (1u64, 0xabu64),
            (2, 0xbeef),
            (4, 0xdead_beef),
            (8, u64::MAX - 5),
        ] {
            m.write_uint(a, Size(size), val).unwrap();
            assert_eq!(m.read_uint(a, Size(size)).unwrap(), val);
        }
    }

    #[test]
    fn cross_page_access() {
        let mut m = SimMemory::new();
        let a = VAddr(0x1ffc); // 4 bytes in page 1, 4 bytes in page 2
        m.write_uint(a, Size(8), 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.read_uint(a, Size(8)).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
        // Byte-granular check across the boundary (little endian).
        assert_eq!(m.read_uint(VAddr(0x1ffc), Size(1)).unwrap(), 0x88);
        assert_eq!(m.read_uint(VAddr(0x2003), Size(1)).unwrap(), 0x11);
    }

    #[test]
    fn readonly_pages_fault_on_write() {
        let mut m = SimMemory::new();
        let text = VAddr(0xffff_ffff_a000_0000);
        m.write_uint(text, Size(8), 42).unwrap();
        m.protect_readonly(text, 0x2000);
        let err = m.write_uint(text, Size(8), 43).unwrap_err();
        assert!(matches!(err, KernelError::Fault { .. }));
        // Reads still fine; data intact.
        assert_eq!(m.read_uint(text, Size(8)).unwrap(), 42);
        // Unprotect (module unloaded) and write again.
        m.protect_readwrite(text, 0x2000);
        m.write_uint(text, Size(8), 43).unwrap();
    }

    struct ScratchReg {
        value: u64,
        reads: u32,
        writes: u32,
    }

    impl MmioDevice for ScratchReg {
        fn mmio_read(&mut self, offset: u64, _size: u64) -> u64 {
            self.reads += 1;
            if offset == 0 {
                self.value
            } else {
                0
            }
        }
        fn mmio_write(&mut self, offset: u64, _size: u64, value: u64) {
            self.writes += 1;
            if offset == 0 {
                self.value = value;
            }
        }
    }

    #[test]
    fn mmio_dispatch() {
        let mut m = SimMemory::new();
        let dev = Arc::new(Mutex::new(ScratchReg {
            value: 7,
            reads: 0,
            writes: 0,
        }));
        let base = VAddr(kop_core::layout::MMIO_WINDOW_BASE);
        m.map_mmio(base, 0x1000, dev.clone());
        assert_eq!(m.read_uint(base, Size(4)).unwrap(), 7);
        m.write_uint(base, Size(4), 0x1234).unwrap();
        assert_eq!(m.read_uint(base, Size(4)).unwrap(), 0x1234);
        // Off-window accesses hit RAM, not the device.
        m.write_uint(base + 0x1000, Size(4), 9).unwrap();
        let d = dev.lock();
        assert_eq!(d.reads, 2);
        assert_eq!(d.writes, 1);
    }

    #[test]
    #[should_panic(expected = "overlapping MMIO windows")]
    fn overlapping_mmio_rejected() {
        let mut m = SimMemory::new();
        let dev = Arc::new(Mutex::new(ScratchReg {
            value: 0,
            reads: 0,
            writes: 0,
        }));
        m.map_mmio(VAddr(0x1000), 0x1000, dev.clone());
        m.map_mmio(VAddr(0x1800), 0x1000, dev);
    }

    #[test]
    fn fault_hook_corrupts_reads_until_cleared() {
        struct FlipLowBit;
        impl FaultHook for FlipLowBit {
            fn corrupt_read(&mut self, _addr: VAddr, _size: Size, value: u64) -> u64 {
                value ^ 1
            }
        }
        let mut m = SimMemory::new();
        let a = VAddr(0xffff_8880_0000_2000);
        m.write_uint(a, Size(8), 42).unwrap();
        m.set_fault_hook(Box::new(FlipLowBit));
        assert_eq!(m.read_uint(a, Size(8)).unwrap(), 43);
        assert!(m.clear_fault_hook().is_some());
        assert_eq!(m.read_uint(a, Size(8)).unwrap(), 42);
    }

    #[test]
    fn bulk_bytes_roundtrip() {
        let mut m = SimMemory::new();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let a = VAddr(0xffff_8880_1234_0000);
        m.write_bytes(a, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        m.read_bytes(a, &mut back).unwrap();
        assert_eq!(back, data);
    }
}
