//! Operator-visible module lifecycle state.
//!
//! The supervision layer (`kop-super`) drives modules through
//! `Running → Quarantined → Backoff → Restarting → Running | Failed`;
//! this registry is the kernel-side mirror of that machine, shared with
//! the `/dev/trace` chardev so an operator can inspect the fleet
//! (`lifecycle` command) without a debugger. The kernel itself updates
//! it on insmod/rmmod/quarantine/restart; the supervisor layers its
//! backoff states on top via [`LifecycleState::set_state`].

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::kernel::QuarantineRecord;

/// One module's lifecycle as the operator sees it.
#[derive(Clone, Debug, Default)]
pub struct ModuleLifecycle {
    /// Current state label (`running`, `quarantined`, `backoff(n)`,
    /// `restarting`, `failed`, `unloaded`, ...). Free-form so the
    /// supervisor can annotate without the kernel knowing its machine.
    pub state: String,
    /// Successful supervised restarts so far.
    pub restarts: u64,
    /// The most recent quarantine, if any.
    pub last_quarantine: Option<QuarantineRecord>,
}

/// The fleet-wide lifecycle registry. Shared (`Arc`) between the kernel
/// and the `/dev/trace` closure; internally locked, never held across
/// any other lock.
#[derive(Default)]
pub struct LifecycleState {
    inner: Mutex<BTreeMap<String, ModuleLifecycle>>,
}

impl LifecycleState {
    /// An empty registry.
    pub fn new() -> Arc<LifecycleState> {
        Arc::new(LifecycleState::default())
    }

    /// Set `module`'s state label.
    pub fn set_state(&self, module: &str, state: &str) {
        let mut inner = self.inner.lock();
        inner.entry(module.to_string()).or_default().state = state.to_string();
    }

    /// Record one successful supervised restart of `module` (also flips
    /// its state back to `running`). Returns the new restart count.
    pub fn note_restart(&self, module: &str) -> u64 {
        let mut inner = self.inner.lock();
        let entry = inner.entry(module.to_string()).or_default();
        entry.restarts += 1;
        entry.state = "running".to_string();
        entry.restarts
    }

    /// Record a quarantine (also flips the state to `quarantined`).
    pub fn note_quarantine(&self, record: &QuarantineRecord) {
        let mut inner = self.inner.lock();
        let entry = inner.entry(record.module.clone()).or_default();
        entry.state = "quarantined".to_string();
        entry.last_quarantine = Some(record.clone());
    }

    /// Forget `module` entirely (clean rmmod of a healthy module).
    pub fn forget(&self, module: &str) {
        self.inner.lock().remove(module);
    }

    /// A snapshot of `module`'s lifecycle.
    pub fn get(&self, module: &str) -> Option<ModuleLifecycle> {
        self.inner.lock().get(module).cloned()
    }

    /// Restart count for `module`.
    pub fn restarts(&self, module: &str) -> u64 {
        self.inner.lock().get(module).map_or(0, |m| m.restarts)
    }

    /// Render one module's lifecycle line (the `lifecycle <module>`
    /// chardev reply).
    pub fn render_module(&self, module: &str) -> String {
        match self.get(module) {
            Some(m) => Self::line(module, &m),
            None => format!("{module}: unknown"),
        }
    }

    /// Render the whole fleet, one line per module, name-sorted (the
    /// `lifecycle` chardev reply).
    pub fn render(&self) -> String {
        let inner = self.inner.lock();
        if inner.is_empty() {
            return "no modules tracked".to_string();
        }
        inner
            .iter()
            .map(|(name, m)| Self::line(name, m))
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn line(name: &str, m: &ModuleLifecycle) -> String {
        let mut s = format!("{name}: state={} restarts={}", m.state, m.restarts);
        if let Some(q) = &m.last_quarantine {
            s.push_str(&format!(
                " last_quarantine(violations={} last={})",
                q.violations, q.last
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_core::error::ViolationKind;
    use kop_core::{AccessFlags, Size, VAddr, Violation};

    #[test]
    fn lifecycle_tracks_states_and_restarts() {
        let lc = LifecycleState::new();
        assert_eq!(lc.render(), "no modules tracked");
        lc.set_state("nic", "running");
        let record = QuarantineRecord {
            module: "nic".into(),
            violations: 3,
            last: Violation::new(
                VAddr(0x100),
                Size(8),
                AccessFlags::READ,
                ViolationKind::NoMatchingRegion,
            ),
        };
        lc.note_quarantine(&record);
        assert_eq!(lc.get("nic").unwrap().state, "quarantined");
        assert_eq!(lc.note_restart("nic"), 1);
        assert_eq!(lc.restarts("nic"), 1);
        assert_eq!(lc.get("nic").unwrap().state, "running");
        let rendered = lc.render_module("nic");
        assert!(rendered.contains("state=running"), "{rendered}");
        assert!(rendered.contains("restarts=1"), "{rendered}");
        assert!(rendered.contains("last_quarantine"), "{rendered}");
        assert_eq!(lc.render_module("ghost"), "ghost: unknown");
        lc.forget("nic");
        assert_eq!(lc.render(), "no modules tracked");
    }
}
