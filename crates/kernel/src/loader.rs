//! Module loading: `insmod`/`rmmod` with signature validation.
//!
//! Paper §3.2: *"When a protected module is inserted into the kernel
//! (after validating its signature), it is linked against the policy
//! module's implementation of carat_guard. This allows one guard function
//! to be swapped for another without having to recompile the guarded
//! module."*
//!
//! The loader:
//! 1. verifies the container signature against the kernel's trusted keys,
//! 2. re-verifies the IR (§2: the guarding process "can be validated by
//!    the kernel when the transformed module is inserted"),
//! 3. resolves imports against the export table (private symbols like
//!    `carat_guard` resolve only because the module passed verification),
//! 4. lays the module out in module space — text pages read-only (§2) —
//!    and initializes its globals in simulated memory.

use std::collections::BTreeMap;
use std::sync::Arc;

use kop_compiler::{CompilerKey, SignedModule};
use kop_core::{KernelError, KernelResult, VAddr};
use kop_ir::{verify_module, GlobalInit, Module};
use kop_policy::NamespaceStore;
use kop_trace::{assign_guard_sites, GuardSite, Producer, SiteTable, Tracer, TraceEvent};

use crate::kernel::{Kernel, KernelConfig};

/// The immutable execution image of a loaded module: the verified IR,
/// the address layout, the guard-site table — everything an executor
/// needs per call. Built once at insmod and shared behind an `Arc`, so
/// `Interp::call` clones one pointer instead of deep-copying the module
/// on every invocation.
#[derive(Debug)]
pub struct ModuleImage {
    /// The verified IR the interpreter executes (layout-sealed).
    pub ir: Module,
    /// Address of each global.
    pub globals: BTreeMap<String, VAddr>,
    /// Address assigned to each function symbol (for `FuncAddr` values).
    pub func_addrs: BTreeMap<String, VAddr>,
    /// Guard-site lookup table registered with the kernel tracer at
    /// insmod (`None` when the module has no guard calls). The
    /// interpreter consults this to attribute each dynamic check to its
    /// stable site.
    pub sites: Option<Arc<SiteTable>>,
    /// Flat bytecode compiled once here at insmod (`kop-vm`), for the
    /// interpreter's bytecode engine. `None` only if lowering failed
    /// (hand-built IR that bypassed verification); the tree engine
    /// still runs such modules.
    pub compiled: Option<kop_vm::CompiledModule>,
}

/// The address-space footprint of a loaded module, captured so a
/// supervisor can re-insert a quarantined module at the *same* addresses
/// (the cached bytecode has globals and function entry points
/// pre-resolved). Module space is never reclaimed, so the original slots
/// stay free for rebinding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModuleLayout {
    /// Base of the text mapping.
    pub text_base: VAddr,
    /// Size of the text mapping.
    pub text_size: u64,
    /// Base of the data mapping (globals).
    pub data_base: VAddr,
    /// Size of the data mapping.
    pub data_size: u64,
    /// Content hash of the signed container the image was built from.
    pub content_hash: String,
    /// Whether the module was guard-injected.
    pub is_protected: bool,
}

/// A module resident in the kernel.
#[derive(Debug)]
pub struct LoadedModule {
    /// Module name.
    pub name: String,
    /// Base of the module's text mapping (read-only).
    pub text_base: VAddr,
    /// Size of the text mapping.
    pub text_size: u64,
    /// Base of the module's data mapping (globals).
    pub data_base: VAddr,
    /// Size of the data mapping.
    pub data_size: u64,
    /// Content hash of the signed container (module identity in logs).
    pub content_hash: String,
    /// Whether the module was guard-injected (`guard_count > 0`).
    pub is_protected: bool,
    /// The shared execution image (IR + layout + sites).
    image: Arc<ModuleImage>,
}

impl LoadedModule {
    /// The shared execution image. Cloning the returned `Arc` is the
    /// per-call cost of entering module code.
    pub fn image(&self) -> &Arc<ModuleImage> {
        &self.image
    }

    /// The verified IR the interpreter executes.
    pub fn ir(&self) -> &Module {
        &self.image.ir
    }

    /// Address of each global.
    pub fn globals(&self) -> &BTreeMap<String, VAddr> {
        &self.image.globals
    }

    /// Address assigned to each function symbol.
    pub fn func_addrs(&self) -> &BTreeMap<String, VAddr> {
        &self.image.func_addrs
    }

    /// Guard-site lookup table (None: unguarded module).
    pub fn sites(&self) -> Option<&Arc<SiteTable>> {
        self.image.sites.as_ref()
    }

    /// The bytecode compiled at insmod (None: lowering was skipped and
    /// only the tree engine can run this module).
    pub fn compiled(&self) -> Option<&kop_vm::CompiledModule> {
        self.image.compiled.as_ref()
    }

    /// The address-space footprint, for supervised same-address restart.
    pub fn layout(&self) -> ModuleLayout {
        ModuleLayout {
            text_base: self.text_base,
            text_size: self.text_size,
            data_base: self.data_base,
            data_size: self.data_size,
            content_hash: self.content_hash.clone(),
            is_protected: self.is_protected,
        }
    }
}

/// A staging failure: the underlying error, plus the dmesg line the
/// serialized `insmod` path would have logged for it (`None` where the
/// serialized path fails silently).
#[derive(Debug)]
pub struct StageError {
    /// The dmesg line to log, if the failure is a logged one.
    pub dmesg: Option<String>,
    /// The underlying error.
    pub err: KernelError,
}

impl StageError {
    fn silent(err: KernelError) -> StageError {
        StageError { dmesg: None, err }
    }
}

/// Phase 1 of the stall-free insmod path: everything expensive —
/// signature verification, parsing, kernel-side IR re-verification,
/// layout sealing, the static guard-coverage proof, and the
/// deterministic guard-site walk — runs here against an immutable
/// snapshot of the kernel's loading configuration, with **no** access to
/// mutable kernel state. An insmod storm stages on worker threads while
/// the check path (and every other tenant's staging) proceeds untouched;
/// only the short [`Kernel::reserve_module`] / [`Kernel::commit_module`]
/// sections serialize on the kernel.
pub struct ModuleStager {
    trusted_keys: Vec<CompilerKey>,
    config: KernelConfig,
    namespaces: Arc<NamespaceStore>,
}

/// A verified, sealed, proof-carrying module awaiting its reservation.
/// Produced by [`ModuleStager::stage`]; consumed by
/// [`Kernel::commit_module`].
#[derive(Debug)]
pub struct StagedModule {
    /// Verified IR, layout-sealed, already renamed to the instance name.
    ir: Module,
    /// The deterministic guard-site walk over the shipped IR.
    guard_sites: Vec<GuardSite>,
    /// Whether the container signature verified against a trusted key.
    signature_ok: bool,
    /// Whether the static verifier proved guard coverage at stage time.
    statically_proven: bool,
    /// Content hash of the signed container.
    content_hash: String,
    /// Attested guard count (`is_protected` iff > 0).
    guard_count: u64,
}

impl StagedModule {
    /// The instance name this staging will load under.
    pub fn name(&self) -> &str {
        &self.ir.name
    }

    /// Whether the module is "trusted" for private-symbol resolution:
    /// its signature verified, or the kernel itself proved it guarded.
    pub fn trusted(&self) -> bool {
        self.signature_ok || self.statically_proven
    }

    /// Phase 3, also lock-free: register the guard-site track with the
    /// (thread-safe) tracer and lower the IR to bytecode. Runs between
    /// [`Kernel::reserve_module`] and [`Kernel::commit_module`], outside
    /// any kernel critical section.
    pub fn lower(&self, reservation: &ModuleReservation, tracer: &Tracer) -> LoweredModule {
        let sites = if self.guard_sites.is_empty() {
            None
        } else {
            Some(tracer.register_module_sites(&self.ir.name, &self.guard_sites))
        };
        let (compiled, lower_note) = match kop_vm::lower_module(
            &self.ir,
            &reservation.global_addrs,
            &reservation.func_addrs,
            sites.as_deref(),
        ) {
            Ok(c) => (Some(c), None),
            Err(e) => (
                None,
                Some(format!(
                    "insmod {}: bytecode lowering skipped ({e}); tree engine only",
                    self.ir.name
                )),
            ),
        };
        LoweredModule {
            sites,
            compiled,
            lower_note,
        }
    }
}

impl ModuleStager {
    /// Stage a signed module: verify, parse, re-verify, seal, prove.
    /// CPU-bound and lock-free — safe to run on any thread, concurrently
    /// with guard checks and with other stagings.
    pub fn stage(
        &self,
        signed: &SignedModule,
        instance: Option<&str>,
    ) -> Result<StagedModule, StageError> {
        let verification = self.config.verification;

        // 1. Signature validation. In `Verification::Static` mode a bad
        // signature is tolerated — step 2b's proof is what gates the
        // module; `SignatureAndStatic` insists on the signature always.
        let verify_result = signed.verify(&self.trusted_keys);
        let signature_ok = verify_result.is_ok();
        let ir = match verify_result {
            Ok(ir) => ir,
            Err(e) => {
                let signature_required = verification.needs_signature()
                    && (self.config.require_signature
                        || verification == crate::kernel::Verification::SignatureAndStatic);
                if signature_required {
                    let err = KernelError::BadSignature(e.to_string());
                    return Err(StageError {
                        dmesg: Some(format!("insmod: {err}")),
                        err,
                    });
                }
                // Parse without trusting the signature — either the
                // unsafe demo mode, or Static mode about to prove the
                // module on its own merits.
                kop_ir::parse_module(&signed.ir_text)
                    .map_err(|pe| StageError::silent(KernelError::BadSignature(pe.to_string())))?
            }
        };

        // The signature (or the static proof below) covers the shipped
        // container; renaming the parsed instance afterwards changes only
        // the loaded identity, which every later keyed structure (symbol
        // provider, site track, violation budget, dispatch) sees
        // consistently.
        let mut ir = ir;
        if let Some(instance) = instance {
            ir.name = instance.to_string();
        }

        // 2. Kernel-side re-verification.
        verify_module(&ir).map_err(|e| {
            StageError::silent(KernelError::BadSignature(format!("IR invalid: {e}")))
        })?;
        // The IR is final from here on: seal its layout caches so the
        // executors get O(1) block-shape queries.
        ir.seal_layout();
        if self.config.require_strict_guards && !signed.attestation.guards_strict {
            return Err(StageError::silent(KernelError::AttestationRejected(
                "kernel requires strict guard layout".into(),
            )));
        }

        // 2b. Static guard-coverage proof (paper §2: the guarding process
        // "can be validated by the kernel when the transformed module is
        // inserted"). The independent translation validator re-proves
        // full coverage and re-derives every optimizer elision from
        // scratch, so a guard-stripped module — or an optimized one whose
        // ledger it cannot re-establish — is refused even with a valid
        // signature. The loader *proves* the claims, it does not trust
        // the attestation bits.
        let mut statically_proven = false;
        if verification.runs_static() {
            let ledger =
                match kop_analysis::ObligationLedger::parse(&signed.attestation.obligations) {
                    Ok(l) => l,
                    Err(e) => {
                        let err = KernelError::StaticVerification(format!(
                            "obligation ledger invalid: {e}"
                        ));
                        return Err(StageError {
                            dmesg: Some(format!("insmod {}: {err}", ir.name)),
                            err,
                        });
                    }
                };
            // The grant oracle lets the validator re-derive inline-bounds
            // obligations (a promoted container) from the policy's
            // retained snapshot history; ledgers without inline
            // obligations never consult it. Resolved through the sharded
            // namespace registry — one shard read-lock, no kernel lock.
            let policy = self.namespaces.resolve(&ir.name);
            let grants = |g: u64| policy.regions_at(g);
            let report = kop_analysis::validate_module_with_grants(&ir, &ledger, Some(&grants));
            if !report.is_clean() {
                let first = report
                    .errors()
                    .next()
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "guard coverage not provable".into());
                let err = KernelError::StaticVerification(format!(
                    "{} ({} error(s) total)",
                    first,
                    report.errors().count()
                ));
                return Err(StageError {
                    dmesg: Some(format!("insmod {}: {err}", ir.name)),
                    err,
                });
            }
            statically_proven = true;
        }

        // Guard-site walk: recompute deterministically over the *shipped*
        // IR (never the attested numbers — the signed path already
        // cross-checked the attested site digest inside
        // `SignedModule::verify`, and the unsigned/static path trusts
        // only what it can derive itself).
        let guard_sites = assign_guard_sites(&ir);

        Ok(StagedModule {
            ir,
            guard_sites,
            signature_ok,
            statically_proven,
            content_hash: signed.content_hash(),
            guard_count: signed.attestation.guard_count,
        })
    }
}

/// Phase 2's output: the instance name is claimed and its address-space
/// slots are carved out. Handed (with the [`StagedModule`]) to phase 3
/// lowering and phase 4 commit.
#[derive(Debug)]
pub struct ModuleReservation {
    /// The reserved instance name (held in the kernel's pending set).
    pub name: String,
    /// Base of the text mapping.
    pub text_base: VAddr,
    /// Size of the text mapping.
    pub text_size: u64,
    /// Base of the data mapping.
    pub data_base: VAddr,
    /// Size of the data mapping.
    pub data_size: u64,
    /// Address assigned to each function symbol.
    pub func_addrs: BTreeMap<String, VAddr>,
    /// Address assigned to each global.
    pub global_addrs: BTreeMap<String, VAddr>,
}

/// Phase 3's output: the registered site track and the lowered bytecode.
#[derive(Debug)]
pub struct LoweredModule {
    sites: Option<Arc<SiteTable>>,
    compiled: Option<kop_vm::CompiledModule>,
    /// The dmesg note for a skipped lowering (logged at commit).
    lower_note: Option<String>,
}

impl Kernel {
    /// Insert a signed module (insmod).
    pub fn insmod(&mut self, signed: &SignedModule) -> KernelResult<&LoadedModule> {
        self.insmod_as(signed, None)
    }

    /// Insert a signed module under an explicit instance name (the live
    /// upgrade loads `name#v2` alongside the running `name`). All
    /// verification runs against the signed container exactly as
    /// [`Kernel::insmod`]; only the loaded identity — duplicate check,
    /// symbol provider, guard-site track, violation accounting — uses the
    /// instance name.
    pub fn insmod_named(
        &mut self,
        signed: &SignedModule,
        instance: &str,
    ) -> KernelResult<&LoadedModule> {
        self.insmod_as(signed, Some(instance))
    }

    /// The serialized insmod path, now a thin wrapper over the staged
    /// pipeline: stage (lock-free) → reserve (short critical section) →
    /// lower (lock-free) → commit (short critical section). Callers that
    /// want the stall-free concurrency run the phases themselves via
    /// [`Kernel::stager`].
    fn insmod_as(
        &mut self,
        signed: &SignedModule,
        instance: Option<&str>,
    ) -> KernelResult<&LoadedModule> {
        self.check_alive()?;
        let staged = match self.stager().stage(signed, instance) {
            Ok(s) => s,
            Err(e) => {
                if let Some(line) = &e.dmesg {
                    self.printk(line);
                }
                return Err(e.err);
            }
        };
        let reservation = self.reserve_module(&staged)?;
        let lowered = staged.lower(&reservation, self.tracer());
        self.commit_module(staged, reservation, lowered)
    }

    /// A [`ModuleStager`] snapshotting this kernel's trusted keys and
    /// loading configuration. The stager holds no lock and no reference
    /// into the kernel — `stage()` runs on any thread while guard checks
    /// (and reserve/commit sections of *other* modules) proceed.
    pub fn stager(&self) -> ModuleStager {
        ModuleStager {
            trusted_keys: self.trusted_keys().to_vec(),
            config: self.config().clone(),
            namespaces: Arc::clone(self.namespaces()),
        }
    }

    /// Phase 2 of the staged insmod: claim the instance name and carve
    /// out its address-space slots. This is a **short** critical section
    /// — name checks, import resolution against the export table, and
    /// two bump allocations; no verification, no lowering, no proofs.
    /// The name goes into the pending set so a racing insmod of the same
    /// name is refused here, not after it wasted a full verify.
    pub fn reserve_module(&mut self, staged: &StagedModule) -> KernelResult<ModuleReservation> {
        self.check_alive()?;
        let name = staged.ir.name.clone();
        if self.modules().iter().any(|m| m.name == name) || self.pending.contains(&name) {
            return Err(KernelError::ModuleAlreadyLoaded(name));
        }

        // Import resolution. The module is "trusted" for private-symbol
        // purposes iff its signature verified — or, in static mode, iff
        // the kernel itself proved the module guarded.
        let trusted = staged.trusted();
        for import in staged.ir.imported_symbols() {
            if self.symbols.resolve(import, trusted).is_none() {
                let err = KernelError::UnresolvedSymbol(import.to_string());
                self.printk(&format!("insmod {name}: {err}"));
                return Err(err);
            }
        }

        // Layout: text (one slot per function, page-ish sizing by IR
        // length) then data (globals). Addresses only — the initializer
        // writes happen at commit.
        let text_size = (staged.ir.functions.len().max(1) as u64) * 0x100;
        let text_base = self.alloc_module_space(text_size)?;
        let mut func_addrs = BTreeMap::new();
        for (i, f) in staged.ir.functions.iter().enumerate() {
            func_addrs.insert(f.name.clone(), VAddr(text_base.raw() + (i as u64) * 0x100));
        }

        let mut data_size = 0u64;
        let mut global_addrs = BTreeMap::new();
        let mut global_offsets = BTreeMap::new();
        for g in &staged.ir.globals {
            let align = g.ty.align_of().max(1);
            data_size = data_size.div_ceil(align) * align;
            global_offsets.insert(g.name.clone(), data_size);
            data_size += g.ty.size_of().max(1);
        }
        let data_base = self.alloc_module_space(data_size.max(1))?;
        for (gname, off) in &global_offsets {
            global_addrs.insert(gname.clone(), VAddr(data_base.raw() + off));
        }

        self.pending.insert(name.clone());
        Ok(ModuleReservation {
            name,
            text_base,
            text_size,
            data_base,
            data_size,
            func_addrs,
            global_addrs,
        })
    }

    /// Abandon a reservation (a stall-free driver dropping a staged
    /// module between reserve and commit). The name becomes loadable
    /// again; the address-space slots stay consumed (module space never
    /// reclaims).
    pub fn abort_reservation(&mut self, reservation: ModuleReservation) {
        self.pending.remove(&reservation.name);
    }

    /// Phase 4 of the staged insmod: publish the module. Another
    /// **short** critical section — write the global initializers, map
    /// text read-only, record the trace/lifecycle events, and push onto
    /// the module list. Everything expensive already happened off-lock.
    pub fn commit_module(
        &mut self,
        staged: StagedModule,
        reservation: ModuleReservation,
        lowered: LoweredModule,
    ) -> KernelResult<&LoadedModule> {
        // The reservation is consumed either way: a failed commit must
        // not wedge the name forever.
        self.pending.remove(&reservation.name);
        self.check_alive()?;

        let StagedModule {
            ir,
            guard_sites,
            content_hash,
            guard_count,
            ..
        } = staged;
        let LoweredModule {
            sites,
            compiled,
            lower_note,
        } = lowered;
        if let Some(note) = &lower_note {
            self.printk(note);
        }

        for g in &ir.globals {
            let addr = reservation.global_addrs[&g.name];
            match &g.init {
                GlobalInit::Zero => {
                    // Memory reads zero by default; nothing to write.
                }
                GlobalInit::Int(v) => {
                    let size = g.ty.size_of().clamp(1, 8);
                    self.mem
                        .write_uint(addr, kop_core::Size(size), *v)
                        .map_err(|e| KernelError::NoMemory(e.to_string()))?;
                }
                GlobalInit::Bytes(bytes) => {
                    self.mem
                        .write_bytes(addr, bytes)
                        .map_err(|e| KernelError::NoMemory(e.to_string()))?;
                }
            }
        }

        // Text pages are mapped read-only (§2: paging prevents
        // self-modifying module code).
        self.mem
            .protect_readonly(reservation.text_base, reservation.text_size);

        let is_protected = guard_count > 0;
        let image = Arc::new(ModuleImage {
            ir,
            globals: reservation.global_addrs,
            func_addrs: reservation.func_addrs,
            sites,
            compiled,
        });
        let loaded = LoadedModule {
            name: image.ir.name.clone(),
            text_base: reservation.text_base,
            text_size: reservation.text_size,
            data_base: reservation.data_base,
            data_size: reservation.data_size,
            content_hash,
            is_protected,
            image,
        };
        self.tracer().record(
            Producer::Loader,
            TraceEvent::ModuleLoad {
                module: loaded.name.clone(),
                guard_sites: guard_sites.len() as u64,
            },
        );
        self.printk(&format!(
            "insmod {}: {} function(s), {} global(s), {} guard(s), text at {}",
            loaded.name,
            loaded.ir().functions.len(),
            loaded.ir().globals.len(),
            guard_count,
            loaded.text_base,
        ));
        self.lifecycle().set_state(&loaded.name, "running");
        self.push_module(loaded);
        Ok(self.modules().last().expect("just pushed"))
    }

    /// Remove a module (rmmod). Restores its text pages to writable and
    /// unexports anything it provided.
    pub fn rmmod(&mut self, name: &str) -> KernelResult<()> {
        self.check_alive()?;
        let m = self
            .take_module(name)
            .ok_or_else(|| KernelError::NoSuchModule(name.to_string()))?;
        self.mem.protect_readwrite(m.text_base, m.text_size);
        self.symbols.remove_provider(name);
        self.tracer().record(
            Producer::Loader,
            TraceEvent::ModuleUnload {
                module: name.to_string(),
            },
        );
        self.lifecycle().forget(name);
        self.forget_hot_subscription(name);
        self.printk(&format!("rmmod {name}"));
        Ok(())
    }

    /// Re-insert a quarantined (or cleanly removed) module from its
    /// cached execution image, at its original addresses — the
    /// supervisor's restart step. No recompile and no re-lowering: the
    /// image's bytecode has every global and entry point pre-resolved, so
    /// the module *must* come back at the layout it first loaded at
    /// (module space never reclaims, so those slots are still free).
    /// Guard sites are **not** re-registered — the tracer track survives
    /// the quarantine, so per-site counts reconcile across restarts.
    ///
    /// The signed container is re-verified under the kernel's
    /// configuration (signature and/or static proof), and its content
    /// hash must match the one the image was built from.
    pub fn restart_module(
        &mut self,
        signed: &SignedModule,
        image: &Arc<ModuleImage>,
        layout: &ModuleLayout,
    ) -> KernelResult<()> {
        self.check_alive()?;
        let name = image.ir.name.clone();
        if self.modules().iter().any(|m| m.name == name) {
            return Err(KernelError::ModuleAlreadyLoaded(name));
        }

        // Attestation re-verification, same acceptance rules as insmod.
        let verification = self.config().verification;
        let signature_ok = signed.verify(self.trusted_keys()).is_ok();
        if !signature_ok {
            let signature_required = verification.needs_signature()
                && (self.config().require_signature
                    || verification == crate::kernel::Verification::SignatureAndStatic);
            if signature_required {
                let err = KernelError::BadSignature("restart: signature no longer verifies".into());
                self.printk(&format!("restart {name}: {err}"));
                return Err(err);
            }
        }
        if verification.runs_static() {
            let ledger = kop_analysis::ObligationLedger::parse(&signed.attestation.obligations)
                .map_err(|e| {
                    KernelError::StaticVerification(format!("obligation ledger invalid: {e}"))
                })?;
            let policy = self.policy_for(&name);
            let grants = |g: u64| policy.regions_at(g);
            let report =
                kop_analysis::validate_module_with_grants(&image.ir, &ledger, Some(&grants));
            if !report.is_clean() {
                return Err(KernelError::StaticVerification(
                    "restart: guard coverage no longer provable".into(),
                ));
            }
        }
        if signed.content_hash() != layout.content_hash {
            return Err(KernelError::BadSignature(
                "restart: container does not match cached image".into(),
            ));
        }

        // The cached image may carry a promoted tier baked against a
        // policy generation from before the quarantine; drop it and let
        // the warmed profile re-promote lazily. The old generation
        // subscription points at this same shared tier, so it is also
        // forgotten and re-established on the next promotion.
        if let Some(compiled) = image.compiled.as_ref() {
            compiled.invalidate_promotions();
        }
        self.forget_hot_subscription(&name);

        // Re-initialize globals. Unlike first insmod, the data pages are
        // not pristine — Zero initializers must be written explicitly or
        // the module would resume with its pre-quarantine state.
        for g in &image.ir.globals {
            let addr = image.globals[&g.name];
            match &g.init {
                GlobalInit::Zero => {
                    let zeros = vec![0u8; g.ty.size_of().max(1) as usize];
                    self.mem
                        .write_bytes(addr, &zeros)
                        .map_err(|e| KernelError::NoMemory(e.to_string()))?;
                }
                GlobalInit::Int(v) => {
                    let size = g.ty.size_of().clamp(1, 8);
                    self.mem
                        .write_uint(addr, kop_core::Size(size), *v)
                        .map_err(|e| KernelError::NoMemory(e.to_string()))?;
                }
                GlobalInit::Bytes(bytes) => {
                    self.mem
                        .write_bytes(addr, bytes)
                        .map_err(|e| KernelError::NoMemory(e.to_string()))?;
                }
            }
        }
        self.mem
            .protect_readonly(layout.text_base, layout.text_size);

        // Fresh violation budget: the restart is a clean slate.
        self.reset_violations(&name);

        self.push_module(LoadedModule {
            name: name.clone(),
            text_base: layout.text_base,
            text_size: layout.text_size,
            data_base: layout.data_base,
            data_size: layout.data_size,
            content_hash: layout.content_hash.clone(),
            is_protected: layout.is_protected,
            image: Arc::clone(image),
        });
        let attempt = self.lifecycle().note_restart(&name);
        self.tracer().record(
            Producer::Loader,
            TraceEvent::ModuleRestart {
                module: name.clone(),
                attempt,
            },
        );
        self.printk(&format!(
            "carat: restarted module '{name}' (attempt {attempt})"
        ));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;
    use kop_compiler::{compile_module, CompileOptions, CompilerKey};
    use kop_core::Size;
    use kop_policy::PolicyModule;
    use std::sync::Arc;

    const SRC: &str = r#"
module "demo"
global @counter : i64 = 41
global @table : [8 x i64] = zero
define i64 @bump(ptr %p) {
entry:
  %v = load i64, ptr %p
  %v2 = add i64 %v, 1
  store i64 %v2, ptr %p
  ret i64 %v2
}
"#;

    fn compile(src: &str, opts: &CompileOptions, key: &CompilerKey) -> SignedModule {
        let m = kop_ir::parse_module(src).unwrap();
        compile_module(m, opts, key).unwrap().signed
    }

    #[test]
    fn insmod_verified_module() {
        let (mut kernel, key) = Kernel::boot_default();
        let signed = compile(SRC, &CompileOptions::carat_kop(), &key);
        let loaded = kernel.insmod(&signed).unwrap();
        assert_eq!(loaded.name, "demo");
        assert!(loaded.is_protected);
        assert_eq!(loaded.globals().len(), 2);
        let counter = loaded.globals()["counter"];
        let mut mem_val = [0u8; 8];
        // Global initializer landed in memory.
        kernel.mem.read_bytes(counter, &mut mem_val).unwrap();
        assert_eq!(u64::from_le_bytes(mem_val), 41);
        assert!(kernel.module("demo").is_some());
    }

    #[test]
    fn insmod_rejects_bad_signature() {
        let (mut kernel, key) = Kernel::boot_default();
        let mut signed = compile(SRC, &CompileOptions::carat_kop(), &key);
        signed.ir_text.push(' '); // any tamper breaks the MAC
        let err = kernel.insmod(&signed).unwrap_err();
        assert!(matches!(err, KernelError::BadSignature(_)));
        assert!(kernel.module("demo").is_none());
        assert!(kernel.dmesg().iter().any(|l| l.contains("insmod")));
    }

    #[test]
    fn insmod_rejects_untrusted_key() {
        let (mut kernel, _) = Kernel::boot_default();
        let rogue = CompilerKey::from_passphrase("rogue", "rogue");
        let signed = compile(SRC, &CompileOptions::carat_kop(), &rogue);
        assert!(matches!(
            kernel.insmod(&signed).unwrap_err(),
            KernelError::BadSignature(_)
        ));
    }

    #[test]
    fn unprotected_module_cannot_import_guard() {
        // A module that imports carat_guard but was signed by an untrusted
        // key, inserted into a kernel with signatures not required: the
        // private export must not resolve.
        let (_, _key) = Kernel::boot_default();
        let rogue = CompilerKey::from_passphrase("rogue", "rogue");
        let src = r#"
module "sneak"
declare void @carat_guard(ptr, i64, i32)
define void @f(ptr %p) {
entry:
  call void @carat_guard(ptr %p, i64 8, i32 1)
  ret void
}
"#;
        let signed = compile(src, &CompileOptions::baseline(), &rogue);
        let policy = Arc::new(PolicyModule::new());
        let mut kernel = Kernel::boot(
            policy,
            vec![CompilerKey::from_passphrase(
                "operator-key",
                "carat-kop-dev",
            )],
            KernelConfig {
                require_signature: false,
                ..KernelConfig::default()
            },
        );
        let err = kernel.insmod(&signed).unwrap_err();
        assert!(matches!(err, KernelError::UnresolvedSymbol(s) if s == "carat_guard"));
    }

    #[test]
    fn duplicate_insmod_rejected() {
        let (mut kernel, key) = Kernel::boot_default();
        let signed = compile(SRC, &CompileOptions::carat_kop(), &key);
        kernel.insmod(&signed).unwrap();
        assert!(matches!(
            kernel.insmod(&signed).unwrap_err(),
            KernelError::ModuleAlreadyLoaded(_)
        ));
    }

    #[test]
    fn rmmod_restores_text_and_unloads() {
        let (mut kernel, key) = Kernel::boot_default();
        let signed = compile(SRC, &CompileOptions::carat_kop(), &key);
        let text_base = kernel.insmod(&signed).unwrap().text_base;
        // Text is read-only while loaded.
        assert!(kernel.mem.write_uint(text_base, Size(8), 1).is_err());
        kernel.rmmod("demo").unwrap();
        assert!(kernel.module("demo").is_none());
        assert!(kernel.mem.write_uint(text_base, Size(8), 1).is_ok());
        assert!(matches!(
            kernel.rmmod("demo").unwrap_err(),
            KernelError::NoSuchModule(_)
        ));
    }

    #[test]
    fn strict_guard_kernel_rejects_optimized_module() {
        let key = CompilerKey::from_passphrase("operator-key", "carat-kop-dev");
        let policy = Arc::new(PolicyModule::new());
        let mut kernel = Kernel::boot(
            policy,
            vec![key.clone()],
            KernelConfig {
                require_strict_guards: true,
                ..KernelConfig::default()
            },
        );
        // A loop module whose guards get hoisted (non-strict layout).
        let src = r#"
module "opt"
define void @f(ptr %buf, i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i2, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %p = gep i64, ptr %buf, i64 %i
  %v = load i64, ptr %p
  %i2 = add i64 %i, 1
  br %head
exit:
  ret void
}
"#;
        let signed = compile(src, &CompileOptions::optimized(), &key);
        assert!(!signed.attestation.guards_strict);
        assert!(matches!(
            kernel.insmod(&signed).unwrap_err(),
            KernelError::AttestationRejected(_)
        ));
        // The strict (paper-default) build loads fine.
        let signed = compile(src, &CompileOptions::carat_kop(), &key);
        kernel.insmod(&signed).unwrap();
    }

    fn static_kernel(require_signature: bool) -> Kernel {
        let key = CompilerKey::from_passphrase("operator-key", "carat-kop-dev");
        Kernel::boot(
            Arc::new(PolicyModule::new()),
            vec![key],
            KernelConfig {
                require_signature,
                verification: crate::kernel::Verification::Static,
                ..KernelConfig::default()
            },
        )
    }

    #[test]
    fn static_mode_accepts_unsigned_but_proven_module() {
        // Signed by a key the kernel does NOT trust — but the module is
        // provably guarded, so Static mode loads it and even grants it
        // the private carat_guard import.
        let rogue = CompilerKey::from_passphrase("rogue", "rogue");
        let signed = compile(SRC, &CompileOptions::carat_kop(), &rogue);
        let mut kernel = static_kernel(false);
        let loaded = kernel.insmod(&signed).unwrap();
        assert!(loaded.is_protected);
        assert!(loaded.ir().imported_symbols().contains(&"carat_guard"));
    }

    #[test]
    fn static_mode_rejects_guard_stripped_module() {
        // A container whose IR claims guarding but has one access whose
        // guard was stripped: even a *trusted* signature must not save
        // it — but such a container cannot be produced by the driver, so
        // hand-assemble the stripped IR as an untrusted container.
        let rogue = CompilerKey::from_passphrase("rogue", "rogue");
        let src = r#"
module "stripped"
declare void @carat_guard(ptr, i64, i32)
define i64 @bump(ptr %p, ptr %out) {
entry:
  call void @carat_guard(ptr %p, i64 8, i32 1)
  %v = load i64, ptr %p
  %v2 = add i64 %v, 1
  store i64 %v2, ptr %out
  ret i64 %v2
}
"#;
        let m = kop_ir::parse_module(src).unwrap();
        let attestation = kop_compiler::Attestation::check(&m).unwrap();
        let signed = SignedModule::sign(&m, attestation, &rogue);
        let mut kernel = static_kernel(false);
        let err = kernel.insmod(&signed).unwrap_err();
        let KernelError::StaticVerification(msg) = err else {
            panic!("expected StaticVerification, got {err:?}");
        };
        // The diagnostic names the lint and the offending instruction.
        assert!(msg.contains("KA001"), "{msg}");
        assert!(msg.contains("store"), "{msg}");
        assert!(kernel.module("stripped").is_none());
        assert!(kernel
            .dmesg()
            .iter()
            .any(|l| l.contains("static verification failed")));
    }

    #[test]
    fn signature_and_static_requires_both() {
        let trusted_key = CompilerKey::from_passphrase("operator-key", "carat-kop-dev");
        let rogue = CompilerKey::from_passphrase("rogue", "rogue");
        let mk = || {
            Kernel::boot(
                Arc::new(PolicyModule::new()),
                vec![trusted_key.clone()],
                KernelConfig {
                    verification: crate::kernel::Verification::SignatureAndStatic,
                    ..KernelConfig::default()
                },
            )
        };
        // Proven but unsigned: refused.
        let unsigned = compile(SRC, &CompileOptions::carat_kop(), &rogue);
        assert!(matches!(
            mk().insmod(&unsigned).unwrap_err(),
            KernelError::BadSignature(_)
        ));
        // Signed and proven: loads.
        let good = compile(SRC, &CompileOptions::carat_kop(), &trusted_key);
        mk().insmod(&good).unwrap();
    }

    #[test]
    fn static_mode_accepts_optimized_guards() {
        // Hoisted guards break the strict layout but still prove covered.
        let src = r#"
module "opt"
define void @f(ptr %buf, i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i2, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %p = gep i64, ptr %buf, i64 %i
  %v = load i64, ptr %p
  %i2 = add i64 %i, 1
  br %head
exit:
  ret void
}
"#;
        let rogue = CompilerKey::from_passphrase("rogue", "rogue");
        let signed = compile(src, &CompileOptions::optimized(), &rogue);
        assert!(!signed.attestation.guards_strict);
        let mut kernel = static_kernel(false);
        kernel.insmod(&signed).unwrap();
    }

    #[test]
    fn staged_pipeline_loads_concurrently_staged_modules() {
        // Phase 1 on worker threads, phases 2–4 serialized on the
        // kernel: the stall-free shape of an insmod storm.
        let (mut kernel, key) = Kernel::boot_default();
        let stager = Arc::new(kernel.stager());
        let mut handles = Vec::new();
        for i in 0..8 {
            let stager = Arc::clone(&stager);
            let signed = compile(SRC, &CompileOptions::carat_kop(), &key);
            handles.push(std::thread::spawn(move || {
                let name = format!("demo{i}");
                stager.stage(&signed, Some(&name)).map_err(|e| e.err)
            }));
        }
        for h in handles {
            let staged = h.join().unwrap().expect("stages clean");
            let res = kernel.reserve_module(&staged).unwrap();
            let lowered = staged.lower(&res, kernel.tracer());
            kernel.commit_module(staged, res, lowered).unwrap();
        }
        assert_eq!(kernel.modules().len(), 8);
        for i in 0..8 {
            let m = kernel.module(&format!("demo{i}")).expect("loaded");
            assert!(m.is_protected);
            assert!(m.compiled().is_some());
        }
    }

    #[test]
    fn reservation_blocks_duplicates_until_commit_or_abort() {
        let (mut kernel, key) = Kernel::boot_default();
        let signed = compile(SRC, &CompileOptions::carat_kop(), &key);
        let stager = kernel.stager();
        let a = stager.stage(&signed, None).unwrap();
        let b = stager.stage(&signed, None).unwrap();
        let res_a = kernel.reserve_module(&a).unwrap();
        // The name is pending: a racing reserve is refused *here*, after
        // its cheap check, not after a wasted verify.
        assert!(matches!(
            kernel.reserve_module(&b).unwrap_err(),
            KernelError::ModuleAlreadyLoaded(_)
        ));
        // Abort releases the name; the second staging goes through.
        kernel.abort_reservation(res_a);
        let res_b = kernel.reserve_module(&b).unwrap();
        let lowered = b.lower(&res_b, kernel.tracer());
        kernel.commit_module(b, res_b, lowered).unwrap();
        assert!(kernel.module("demo").is_some());
        // And a committed module still blocks re-reservation.
        let c = stager.stage(&signed, None).unwrap();
        assert!(matches!(
            kernel.reserve_module(&c).unwrap_err(),
            KernelError::ModuleAlreadyLoaded(_)
        ));
    }

    #[test]
    fn stage_error_carries_serialized_dmesg_line() {
        let (kernel, key) = Kernel::boot_default();
        let mut signed = compile(SRC, &CompileOptions::carat_kop(), &key);
        signed.ir_text.push(' ');
        let err = kernel.stager().stage(&signed, None).unwrap_err();
        assert!(matches!(err.err, KernelError::BadSignature(_)));
        assert!(err.dmesg.unwrap().starts_with("insmod: "));
    }

    #[test]
    fn globals_layout_is_aligned_and_disjoint() {
        let (mut kernel, key) = Kernel::boot_default();
        let src = r#"
module "layout"
global @a : i8 = 1
global @b : i64 = 2
global @c : i16 = 3
"#;
        let signed = compile(src, &CompileOptions::carat_kop(), &key);
        let loaded = kernel.insmod(&signed).unwrap();
        let a = loaded.globals()["a"];
        let b = loaded.globals()["b"];
        let c = loaded.globals()["c"];
        assert!(b.is_aligned(8));
        assert!(c.is_aligned(2));
        assert!(a < b && b < c);
        assert!(b.raw() - a.raw() >= 1);
        assert!(c.raw() - b.raw() >= 8);
    }
}
