//! The kernel's exported-symbol table.
//!
//! Linux modules link against symbols the kernel (or other modules)
//! export. CARAT KOP's policy module "provides a single symbol,
//! `carat_guard` ... privately exported from the kernel" (§2, §3.1).
//! Private exports resolve only for *protected* (signed, guard-injected)
//! modules — an arbitrary module cannot call the guard entry point
//! directly.

use std::collections::BTreeMap;

use kop_core::VAddr;

/// What a symbol names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SymbolKind {
    /// A callable function (dispatched by the interpreter to a host
    /// implementation or to module IR).
    Function,
    /// A data object.
    Data,
}

/// Who may link against a symbol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Visibility {
    /// Any module.
    Public,
    /// Only signature-verified protected modules (like `carat_guard`).
    Private,
}

/// An exported symbol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Function or data.
    pub kind: SymbolKind,
    /// Export visibility.
    pub visibility: Visibility,
    /// Address (for data symbols and for taking function addresses).
    pub addr: VAddr,
    /// Which component provides it (`"kernel"`, `"policy"`, module name).
    pub provider: String,
}

/// The kernel symbol table.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    symbols: BTreeMap<String, Symbol>,
}

impl SymbolTable {
    /// Empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Export a symbol. Returns `false` (and leaves the table unchanged)
    /// if the name is already exported.
    pub fn export(&mut self, sym: Symbol) -> bool {
        if self.symbols.contains_key(&sym.name) {
            return false;
        }
        self.symbols.insert(sym.name.clone(), sym);
        true
    }

    /// Remove every symbol provided by `provider` (module unload).
    pub fn remove_provider(&mut self, provider: &str) -> usize {
        let before = self.symbols.len();
        self.symbols.retain(|_, s| s.provider != provider);
        before - self.symbols.len()
    }

    /// Look up a symbol by name.
    pub fn get(&self, name: &str) -> Option<&Symbol> {
        self.symbols.get(name)
    }

    /// Resolve an import for a module: public symbols always resolve;
    /// private symbols only when `trusted` (the importer passed signature
    /// verification).
    pub fn resolve(&self, name: &str, trusted: bool) -> Option<&Symbol> {
        let sym = self.symbols.get(name)?;
        match sym.visibility {
            Visibility::Public => Some(sym),
            Visibility::Private if trusted => Some(sym),
            Visibility::Private => None,
        }
    }

    /// Number of exported symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// All symbols in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(name: &str, vis: Visibility, provider: &str) -> Symbol {
        Symbol {
            name: name.into(),
            kind: SymbolKind::Function,
            visibility: vis,
            addr: VAddr(0xffff_ffff_8000_1000),
            provider: provider.into(),
        }
    }

    #[test]
    fn export_and_lookup() {
        let mut t = SymbolTable::new();
        assert!(t.export(sym("printk", Visibility::Public, "kernel")));
        assert!(!t.export(sym("printk", Visibility::Public, "kernel")));
        assert_eq!(t.len(), 1);
        assert!(t.get("printk").is_some());
        assert!(t.get("missing").is_none());
    }

    #[test]
    fn private_symbols_require_trust() {
        let mut t = SymbolTable::new();
        t.export(sym("carat_guard", Visibility::Private, "policy"));
        t.export(sym("printk", Visibility::Public, "kernel"));
        // Untrusted importer: public ok, private hidden.
        assert!(t.resolve("printk", false).is_some());
        assert!(t.resolve("carat_guard", false).is_none());
        // Trusted importer: both visible.
        assert!(t.resolve("carat_guard", true).is_some());
    }

    #[test]
    fn remove_provider_unexports() {
        let mut t = SymbolTable::new();
        t.export(sym("a", Visibility::Public, "mod1"));
        t.export(sym("b", Visibility::Public, "mod1"));
        t.export(sym("c", Visibility::Public, "mod2"));
        assert_eq!(t.remove_provider("mod1"), 2);
        assert_eq!(t.len(), 1);
        assert!(t.get("c").is_some());
    }
}
