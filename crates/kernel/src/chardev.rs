//! Character devices and ioctl dispatch.
//!
//! Figure 1 of the paper: the `policy-manager` user-space application
//! speaks to the policy module through `ioctl /dev/carat`. This module is
//! the dispatch layer: a registry of device nodes, each with an ioctl
//! handler taking and returning raw bytes.

use std::collections::BTreeMap;

use kop_core::{KernelError, KernelResult};

/// An ioctl handler: raw request bytes in, raw response bytes out.
pub type IoctlHandler = Box<dyn Fn(&[u8]) -> KernelResult<Vec<u8>> + Send + Sync>;

/// Registry of character devices.
#[derive(Default)]
pub struct DevRegistry {
    devices: BTreeMap<String, IoctlHandler>,
}

impl DevRegistry {
    /// Empty registry.
    pub fn new() -> DevRegistry {
        DevRegistry::default()
    }

    /// Register a device node (e.g. `"/dev/carat"`). Panics on duplicate —
    /// device registration is programmer-controlled, not input-driven.
    pub fn register(&mut self, path: impl Into<String>, handler: IoctlHandler) {
        let path = path.into();
        assert!(
            !self.devices.contains_key(&path),
            "device {path} already registered"
        );
        self.devices.insert(path, handler);
    }

    /// Unregister a device node; returns whether it existed.
    pub fn unregister(&mut self, path: &str) -> bool {
        self.devices.remove(path).is_some()
    }

    /// Issue an ioctl to a device node.
    pub fn ioctl(&self, path: &str, request: &[u8]) -> KernelResult<Vec<u8>> {
        let handler = self
            .devices
            .get(path)
            .ok_or_else(|| KernelError::NoSuchDevice(path.to_string()))?;
        handler(request)
    }

    /// Registered device paths.
    pub fn paths(&self) -> Vec<&str> {
        self.devices.keys().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_ioctl() {
        let mut reg = DevRegistry::new();
        reg.register(
            "/dev/echo",
            Box::new(|req| Ok(req.iter().rev().copied().collect())),
        );
        assert_eq!(reg.ioctl("/dev/echo", &[1, 2, 3]).unwrap(), vec![3, 2, 1]);
        assert_eq!(reg.paths(), vec!["/dev/echo"]);
    }

    #[test]
    fn missing_device_errors() {
        let reg = DevRegistry::new();
        assert!(matches!(
            reg.ioctl("/dev/nope", &[]).unwrap_err(),
            KernelError::NoSuchDevice(_)
        ));
    }

    #[test]
    fn unregister() {
        let mut reg = DevRegistry::new();
        reg.register("/dev/x", Box::new(|_| Ok(vec![])));
        assert!(reg.unregister("/dev/x"));
        assert!(!reg.unregister("/dev/x"));
        assert!(reg.ioctl("/dev/x", &[]).is_err());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_registration_panics() {
        let mut reg = DevRegistry::new();
        reg.register("/dev/x", Box::new(|_| Ok(vec![])));
        reg.register("/dev/x", Box::new(|_| Ok(vec![])));
    }

    #[test]
    fn handler_errors_propagate() {
        let mut reg = DevRegistry::new();
        reg.register(
            "/dev/fail",
            Box::new(|_| Err(KernelError::BadIoctl("nope".into()))),
        );
        assert!(matches!(
            reg.ioctl("/dev/fail", &[]).unwrap_err(),
            KernelError::BadIoctl(_)
        ));
    }
}
