//! # kop-kernel — the simulated monolithic kernel substrate
//!
//! CARAT KOP operationalizes its guards *"within the Linux kernel"*: the
//! policy module is inserted into the kernel, protected modules are
//! validated and linked at insertion time, and a root user drives the
//! policy through `ioctl /dev/carat` (paper §3, Figure 1). This crate is
//! that substrate, simulated:
//!
//! * [`mem`] — a sparse simulated physical/virtual memory with page
//!   permissions (module text is mapped read-only, §2) and MMIO dispatch
//!   to device models,
//! * [`symbols`] — the kernel's exported-symbol table, including the
//!   *private* export of `carat_guard`,
//! * [`loader`] — `insmod`/`rmmod`: signature verification against the
//!   trusted compiler keys, IR re-verification, import resolution, module
//!   memory layout, and global initialization,
//! * [`chardev`] — character devices with ioctl dispatch; `/dev/carat` is
//!   registered at boot and speaks the `kop-policy` manager protocol,
//! * [`kernel`] — the [`kernel::Kernel`] object tying it all together,
//!   including the kernel log (`dmesg`) and the panic model (panics are
//!   values, so tests can assert the paper's "log and panic" behaviour).

#![warn(missing_docs)]

pub mod chardev;
pub mod kernel;
pub mod lifecycle;
pub mod loader;
pub mod mem;
pub mod objects;
pub mod symbols;

pub use kernel::{Kernel, KernelConfig, QuarantineRecord, Verification, TRACE_DEV};
pub use lifecycle::{LifecycleState, ModuleLifecycle};
pub use loader::{
    LoadedModule, LoweredModule, ModuleImage, ModuleLayout, ModuleReservation, ModuleStager,
    StageError, StagedModule,
};
pub use mem::{FaultHook, MmioDevice, SimMemory};
pub use objects::{FileHandle, QueueHandle};
pub use symbols::{Symbol, SymbolKind, SymbolTable, Visibility};
