//! Kernel objects the §5 extension protects: file-system metadata
//! (inodes) and IPC message queues.
//!
//! From the paper: *"CARAT KOP's memory guarding mechanism could be
//! extended to restrict kernel module access to files by safeguarding
//! memory regions associated with file system metadata or inodes ...
//! Similarly, for inter-process communication (IPC), the system could
//! enforce policies by guarding memory regions linked to IPC mechanisms,
//! such as message queues or shared memory segments."*
//!
//! The key design point (also from §5): this requires **no new
//! mechanism** — inodes and queues are ordinary kernel objects at known
//! addresses in the direct map, so protecting them is just more firewall
//! rules. The structs below are laid out in *simulated kernel memory*
//! (not Rust-side state), so a module's guarded loads/stores against them
//! are policed exactly like any other access.

use kop_core::{KernelError, KernelResult, Size, VAddr};

use crate::kernel::Kernel;

/// In-memory inode layout (all fields 8 bytes for simplicity):
/// `{ mode, uid, size, data_ptr }`.
pub const INODE_SIZE: u64 = 32;
/// Offset of the mode field.
pub const INODE_MODE_OFF: u64 = 0;
/// Offset of the owner uid field.
pub const INODE_UID_OFF: u64 = 8;
/// Offset of the file-size field.
pub const INODE_SIZE_OFF: u64 = 16;
/// Offset of the data-pointer field.
pub const INODE_DATA_OFF: u64 = 24;

/// Message-queue header layout: `{ capacity, head, tail, elem_size }`,
/// followed by `capacity * elem_size` bytes of slots.
pub const MQ_HEADER_SIZE: u64 = 32;

/// A file registered in the simulated VFS.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileHandle {
    /// File name.
    pub name: String,
    /// Address of the inode structure in kernel memory.
    pub inode: VAddr,
}

/// An IPC message queue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueueHandle {
    /// Queue name.
    pub name: String,
    /// Address of the queue header in kernel memory.
    pub header: VAddr,
    /// Element size in bytes.
    pub elem_size: u64,
    /// Capacity in elements.
    pub capacity: u64,
}

impl Kernel {
    /// Create a file: allocates an inode (and a data block) in kernel
    /// memory and registers it. Returns the handle whose `inode` address
    /// policies can guard.
    pub fn vfs_create(&mut self, name: &str, mode: u64, uid: u64) -> KernelResult<FileHandle> {
        if self.vfs_lookup(name).is_some() {
            return Err(KernelError::InvalidArgument(format!(
                "file '{name}' already exists"
            )));
        }
        let inode = self.kmalloc(INODE_SIZE)?;
        let data = self.kmalloc(4096)?;
        self.mem.write_uint(inode + INODE_MODE_OFF, Size(8), mode)?;
        self.mem.write_uint(inode + INODE_UID_OFF, Size(8), uid)?;
        self.mem.write_uint(inode + INODE_SIZE_OFF, Size(8), 0)?;
        self.mem
            .write_uint(inode + INODE_DATA_OFF, Size(8), data.raw())?;
        let handle = FileHandle {
            name: name.to_string(),
            inode,
        };
        self.files.push(handle.clone());
        self.printk(&format!("vfs: created '{name}' inode at {inode}"));
        Ok(handle)
    }

    /// Look up a file by name.
    pub fn vfs_lookup(&self, name: &str) -> Option<&FileHandle> {
        self.files.iter().find(|f| f.name == name)
    }

    /// Read a file's mode bits from its in-memory inode.
    pub fn vfs_mode(&mut self, name: &str) -> KernelResult<u64> {
        let inode = self
            .vfs_lookup(name)
            .ok_or_else(|| KernelError::InvalidArgument(format!("no file '{name}'")))?
            .inode;
        self.mem.read_uint(inode + INODE_MODE_OFF, Size(8))
    }

    /// The kernel's own (trusted, unguarded) chmod path.
    pub fn vfs_chmod(&mut self, name: &str, mode: u64) -> KernelResult<()> {
        let inode = self
            .vfs_lookup(name)
            .ok_or_else(|| KernelError::InvalidArgument(format!("no file '{name}'")))?
            .inode;
        self.mem.write_uint(inode + INODE_MODE_OFF, Size(8), mode)
    }

    /// Create an IPC message queue in kernel memory.
    pub fn ipc_create(
        &mut self,
        name: &str,
        capacity: u64,
        elem_size: u64,
    ) -> KernelResult<QueueHandle> {
        if self.queues.iter().any(|q| q.name == name) {
            return Err(KernelError::InvalidArgument(format!(
                "queue '{name}' already exists"
            )));
        }
        let header = self.kmalloc(MQ_HEADER_SIZE + capacity * elem_size)?;
        self.mem.write_uint(header, Size(8), capacity)?;
        self.mem.write_uint(header + 8, Size(8), 0)?; // head
        self.mem.write_uint(header + 16, Size(8), 0)?; // tail
        self.mem.write_uint(header + 24, Size(8), elem_size)?;
        let handle = QueueHandle {
            name: name.to_string(),
            header,
            elem_size,
            capacity,
        };
        self.queues.push(handle.clone());
        self.printk(&format!("ipc: created queue '{name}' at {header}"));
        Ok(handle)
    }

    /// Look up a queue by name.
    pub fn ipc_lookup(&self, name: &str) -> Option<&QueueHandle> {
        self.queues.iter().find(|q| q.name == name)
    }

    /// Kernel-side (trusted) send: enqueue one element.
    pub fn ipc_send(&mut self, name: &str, payload: &[u8]) -> KernelResult<()> {
        let q = self
            .ipc_lookup(name)
            .cloned()
            .ok_or_else(|| KernelError::InvalidArgument(format!("no queue '{name}'")))?;
        if payload.len() as u64 > q.elem_size {
            return Err(KernelError::InvalidArgument("payload too big".into()));
        }
        let head = self.mem.read_uint(q.header + 8, Size(8))?;
        let tail = self.mem.read_uint(q.header + 16, Size(8))?;
        if tail - head >= q.capacity {
            return Err(KernelError::NoMemory(format!("queue '{name}' full")));
        }
        let slot = q.header + MQ_HEADER_SIZE + (tail % q.capacity) * q.elem_size;
        self.mem.write_bytes(slot, payload)?;
        self.mem.write_uint(q.header + 16, Size(8), tail + 1)?;
        Ok(())
    }

    /// Kernel-side (trusted) receive: dequeue one element.
    pub fn ipc_recv(&mut self, name: &str) -> KernelResult<Vec<u8>> {
        let q = self
            .ipc_lookup(name)
            .cloned()
            .ok_or_else(|| KernelError::InvalidArgument(format!("no queue '{name}'")))?;
        let head = self.mem.read_uint(q.header + 8, Size(8))?;
        let tail = self.mem.read_uint(q.header + 16, Size(8))?;
        if head == tail {
            return Err(KernelError::InvalidArgument(format!(
                "queue '{name}' empty"
            )));
        }
        let slot = q.header + MQ_HEADER_SIZE + (head % q.capacity) * q.elem_size;
        let mut buf = vec![0u8; q.elem_size as usize];
        self.mem.read_bytes(slot, &mut buf)?;
        self.mem.write_uint(q.header + 8, Size(8), head + 1)?;
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vfs_create_lookup_chmod() {
        let (mut kernel, _) = Kernel::boot_default();
        let f = kernel.vfs_create("/etc/shadow", 0o600, 0).unwrap();
        assert!(f.inode.is_kernel_half());
        assert_eq!(kernel.vfs_mode("/etc/shadow").unwrap(), 0o600);
        kernel.vfs_chmod("/etc/shadow", 0o644).unwrap();
        assert_eq!(kernel.vfs_mode("/etc/shadow").unwrap(), 0o644);
        assert!(kernel.vfs_lookup("/etc/shadow").is_some());
        assert!(kernel.vfs_lookup("/nope").is_none());
        assert!(kernel.vfs_create("/etc/shadow", 0, 0).is_err());
        assert!(kernel.vfs_mode("/nope").is_err());
    }

    #[test]
    fn inode_fields_live_in_simulated_memory() {
        // The whole point: the inode is bytes in kernel memory that
        // guarded module accesses would hit.
        let (mut kernel, _) = Kernel::boot_default();
        let f = kernel.vfs_create("/data", 0o644, 1000).unwrap();
        assert_eq!(
            kernel
                .mem
                .read_uint(f.inode + INODE_UID_OFF, Size(8))
                .unwrap(),
            1000
        );
        // Direct memory tamper is visible through the VFS API.
        kernel
            .mem
            .write_uint(f.inode + INODE_MODE_OFF, Size(8), 0o777)
            .unwrap();
        assert_eq!(kernel.vfs_mode("/data").unwrap(), 0o777);
    }

    #[test]
    fn ipc_send_recv_roundtrip() {
        let (mut kernel, _) = Kernel::boot_default();
        kernel.ipc_create("events", 4, 16).unwrap();
        kernel.ipc_send("events", b"msg-one").unwrap();
        kernel.ipc_send("events", b"msg-two").unwrap();
        let m1 = kernel.ipc_recv("events").unwrap();
        assert_eq!(&m1[..7], b"msg-one");
        let m2 = kernel.ipc_recv("events").unwrap();
        assert_eq!(&m2[..7], b"msg-two");
        assert!(kernel.ipc_recv("events").is_err(), "empty");
    }

    #[test]
    fn ipc_capacity_enforced() {
        let (mut kernel, _) = Kernel::boot_default();
        kernel.ipc_create("small", 2, 8).unwrap();
        kernel.ipc_send("small", b"a").unwrap();
        kernel.ipc_send("small", b"b").unwrap();
        assert!(matches!(
            kernel.ipc_send("small", b"c").unwrap_err(),
            KernelError::NoMemory(_)
        ));
        kernel.ipc_recv("small").unwrap();
        kernel.ipc_send("small", b"c").unwrap();
    }

    #[test]
    fn ipc_payload_size_checked() {
        let (mut kernel, _) = Kernel::boot_default();
        kernel.ipc_create("q", 2, 4).unwrap();
        assert!(kernel.ipc_send("q", b"way too long").is_err());
    }
}
