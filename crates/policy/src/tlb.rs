//! The per-site guard TLB — memoizing `(region, generation)` per call
//! site so the steady-state TX loop pays one atomic load and one
//! cache-line compare per guard.
//!
//! A guarded driver hits the same few call sites with addresses that land
//! in the same few policy regions, millions of times. [`GuardTlb`] is a
//! small direct-mapped cache keyed by the guard's site id (the same
//! per-site identity the PR-3 tracer uses): each entry remembers the
//! region that granted the site's last access and the store generation it
//! was granted under. A hit revalidates locally — generation compare plus
//! [`Region::permits`] against the *cached* region — and skips the policy
//! module entirely. Any table write bumps the generation
//! ([`crate::snapshot::SnapshotStore`]), which invalidates every entry in
//! every TLB at once; the next check misses and refills from the
//! lock-free snapshot path.
//!
//! Only **region grants** are cached. Denials are never cached (a denial
//! must reach the policy module for stats/log/enforcement), and neither
//! are default-action allows (flipping the default action does not bump
//! the generation, so caching them would be unsound; a cached region
//! grant stays sound because any covering, granting region wins
//! regardless of the default action).
//!
//! The TLB is intentionally **not** `Sync`: it models a per-thread /
//! per-simulated-CPU structure (entries are `Cell`s). Give each worker
//! its own instance — see [`TlbPolicy`] — and distinct counter prefixes
//! so per-queue hit/miss cells can be summed for reconciliation:
//! `hits + misses == guard calls` by construction.

use std::cell::Cell;
use std::sync::Arc;

use kop_core::{AccessFlags, Protection, Region, Size, VAddr, Violation};
use kop_trace::{Counter, CounterRegistry};

use crate::module::PolicyModule;
use crate::store::Lookup;
use crate::PolicyCheck;

/// Number of direct-mapped TLB entries (power of two).
pub const TLB_WAYS: usize = 16;

#[derive(Clone, Copy)]
struct TlbEntry {
    /// Generation the grant was observed under; 0 = invalid (the
    /// snapshot store's generations start at 1). Per-namespace: another
    /// tenant's publish does not move this policy's generation.
    gen: u64,
    /// Namespace the granting policy was bound to when cached — a policy
    /// re-registered under a fresh namespace id never matches old entries.
    ns: u64,
    /// Revocation epoch observed when cached; a fleet-wide revoke bumps
    /// every policy's epoch, invalidating all entries without any
    /// generation churn.
    epoch: u64,
    site: u32,
    region: Region,
}

impl TlbEntry {
    fn invalid() -> TlbEntry {
        TlbEntry {
            gen: 0,
            ns: 0,
            epoch: 0,
            site: 0,
            region: Region::new(VAddr(0), Size(0), Protection::NONE).expect("empty region"),
        }
    }
}

/// A per-thread direct-mapped cache of `(site → region, generation)`.
pub struct GuardTlb {
    entries: [Cell<TlbEntry>; TLB_WAYS],
    hits: Counter,
    misses: Counter,
    preseeded: Counter,
}

impl GuardTlb {
    /// A TLB whose counters are named `policy.tlb.hits` / `.misses`.
    pub fn new() -> GuardTlb {
        GuardTlb::with_prefix("policy.tlb")
    }

    /// A TLB with counters `"<prefix>.hits"` / `"<prefix>.misses"` — use
    /// distinct prefixes (e.g. `policy.tlb.q3`) when several TLBs
    /// register into one counter registry.
    pub fn with_prefix(prefix: &str) -> GuardTlb {
        GuardTlb {
            entries: std::array::from_fn(|_| Cell::new(TlbEntry::invalid())),
            hits: Counter::new(format!("{prefix}.hits")),
            misses: Counter::new(format!("{prefix}.misses")),
            preseeded: Counter::new(format!("{prefix}.preseeded")),
        }
    }

    /// Warm one entry ahead of traffic: classify a representative access
    /// for `site` against the *current* snapshot and, if a region grants
    /// it, install the grant exactly as a miss refill would — but without
    /// touching the hit/miss cells or the policy's check stats (nothing
    /// was guarded; reconciliation must not see a phantom check). Returns
    /// whether an entry was seeded. Used on promotion/restart so the
    /// first post-invalidation packet burst doesn't pay a full-TLB miss
    /// storm.
    pub fn preseed(
        &self,
        policy: &PolicyModule,
        site: u32,
        addr: VAddr,
        size: Size,
        flags: AccessFlags,
    ) -> bool {
        // Tag fields read BEFORE the snapshot: if a revoke or re-bind
        // races past between here and the install, the tag is already
        // stale and the entry just misses — never the other way around.
        let ns = policy.namespace();
        let epoch = policy.revocation_epoch();
        let snap = policy.policy_snapshot();
        if let Lookup::Permitted(region) = snap.lookup(addr, size, flags) {
            self.entries[site as usize & (TLB_WAYS - 1)].set(TlbEntry {
                gen: snap.generation(),
                ns,
                epoch,
                site,
                region,
            });
            self.preseeded.inc();
            true
        } else {
            false
        }
    }

    /// Guard an access attributed to `site`.
    ///
    /// Hit path: one `SeqCst` generation load plus a compare against the
    /// cached entry. Miss path: the policy module's full lock-free check;
    /// a region grant refills the entry tagged with the generation of the
    /// snapshot that granted it (if a publish raced in between, the tag
    /// is already stale and the next check re-misses — never the other
    /// way around).
    #[inline]
    pub fn check(
        &self,
        policy: &PolicyModule,
        site: u32,
        addr: VAddr,
        size: Size,
        flags: AccessFlags,
    ) -> Result<(), Violation> {
        let slot = &self.entries[site as usize & (TLB_WAYS - 1)];
        let e = slot.get();
        if e.gen != 0
            && e.site == site
            && e.ns == policy.namespace()
            && e.epoch == policy.revocation_epoch()
            && e.gen == policy.store_generation()
            && e.region.permits(addr, size, flags)
        {
            self.hits.inc();
            return Ok(());
        }
        self.misses.inc();
        // Tag fields read BEFORE the classified check: a revoke or
        // namespace re-bind racing past the lookup leaves the installed
        // entry already-stale (harmless re-miss), never falsely fresh.
        let ns = policy.namespace();
        let epoch = policy.revocation_epoch();
        let out = policy.check_classified(addr, size, flags);
        if let Some((region, gen)) = out.grant {
            slot.set(TlbEntry {
                gen,
                ns,
                epoch,
                site,
                region,
            });
        }
        out.result
    }

    /// Drop every cached entry (e.g. when re-homing the TLB to another
    /// policy module).
    pub fn flush(&self) {
        for e in &self.entries {
            e.set(TlbEntry::invalid());
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// The live hit counter cell.
    pub fn hit_counter(&self) -> &Counter {
        &self.hits
    }

    /// The live miss counter cell.
    pub fn miss_counter(&self) -> &Counter {
        &self.misses
    }

    /// Entries installed by [`Self::preseed`] so far.
    pub fn preseeded(&self) -> u64 {
        self.preseeded.get()
    }

    /// The live preseed counter cell.
    pub fn preseed_counter(&self) -> &Counter {
        &self.preseeded
    }

    /// Register the hit/miss/preseed cells into a counter registry (the
    /// tracer's unified registry, so `/dev/trace counters` shows them).
    pub fn register_into(&self, registry: &CounterRegistry) {
        registry.register(&self.hits);
        registry.register(&self.misses);
        registry.register(&self.preseeded);
    }
}

impl Default for GuardTlb {
    fn default() -> Self {
        GuardTlb::new()
    }
}

/// Maps guarded addresses to site ids — how a native (non-interpreted)
/// build recovers the per-site identity the compiler pass would have
/// assigned. Ranges are checked in insertion order; unmatched addresses
/// get the fallback site.
#[derive(Clone, Debug)]
pub struct SiteMap {
    /// `(start, end_exclusive, site)` triples.
    ranges: Vec<(u64, u64, u32)>,
    fallback: u32,
}

impl SiteMap {
    /// An empty map classifying everything as `fallback`.
    pub fn new(fallback: u32) -> SiteMap {
        SiteMap {
            ranges: Vec::new(),
            fallback,
        }
    }

    /// Add a `[start, end)` → `site` range (builder style).
    pub fn range(mut self, start: u64, end: u64, site: u32) -> SiteMap {
        self.ranges.push((start, end, site));
        self
    }

    /// Classify an address.
    #[inline]
    pub fn classify(&self, addr: u64) -> u32 {
        for &(start, end, site) in &self.ranges {
            if addr >= start && addr < end {
                return site;
            }
        }
        self.fallback
    }
}

/// A [`PolicyCheck`] front that routes every guard through a private
/// [`GuardTlb`], classifying addresses to sites with a [`SiteMap`]. One
/// instance per worker thread; all instances share the same
/// [`PolicyModule`].
pub struct TlbPolicy {
    policy: Arc<PolicyModule>,
    map: SiteMap,
    tlb: GuardTlb,
}

impl TlbPolicy {
    /// Wrap `policy` with a per-thread TLB.
    pub fn new(policy: Arc<PolicyModule>, map: SiteMap, tlb: GuardTlb) -> TlbPolicy {
        TlbPolicy { policy, map, tlb }
    }

    /// Like [`Self::new`], but warm: pre-seed one TLB entry per seed
    /// `(site, addr, size, flags)` — a representative access the site is
    /// about to issue — so the first packet burst starts on the hit path
    /// instead of paying a cold-TLB miss per site. Seeds nothing covers
    /// are skipped (the site just misses as before).
    pub fn warmed(
        policy: Arc<PolicyModule>,
        map: SiteMap,
        tlb: GuardTlb,
        seeds: &[(u32, u64, u64, AccessFlags)],
    ) -> TlbPolicy {
        for &(site, addr, size, flags) in seeds {
            tlb.preseed(&policy, site, VAddr(addr), Size(size), flags);
        }
        TlbPolicy { policy, map, tlb }
    }

    /// The TLB (e.g. to read hit/miss counters).
    pub fn tlb(&self) -> &GuardTlb {
        &self.tlb
    }

    /// The shared policy module.
    pub fn policy(&self) -> &Arc<PolicyModule> {
        &self.policy
    }
}

impl PolicyCheck for TlbPolicy {
    #[inline]
    fn carat_guard(&self, addr: VAddr, size: Size, flags: AccessFlags) -> Result<(), Violation> {
        let site = self.map.classify(addr.raw());
        self.tlb.check(&self.policy, site, addr, size, flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DefaultAction;

    fn pm_with_region(base: u64, len: u64) -> Arc<PolicyModule> {
        let pm = Arc::new(PolicyModule::new());
        pm.add_region(Region::new(VAddr(base), Size(len), Protection::READ_WRITE).unwrap())
            .unwrap();
        pm
    }

    #[test]
    fn steady_state_hits_after_one_miss() {
        let pm = pm_with_region(0x1000, 0x1000);
        let tlb = GuardTlb::new();
        for _ in 0..100 {
            tlb.check(&pm, 3, VAddr(0x1800), Size(8), AccessFlags::RW)
                .unwrap();
        }
        assert_eq!(tlb.misses(), 1);
        assert_eq!(tlb.hits(), 99);
        // Only the one miss reached the policy module.
        assert_eq!(pm.stats().checks, 1);
    }

    #[test]
    fn table_write_invalidates_cached_grants() {
        let pm = pm_with_region(0x1000, 0x1000);
        let tlb = GuardTlb::new();
        tlb.check(&pm, 0, VAddr(0x1800), Size(8), AccessFlags::RW)
            .unwrap();
        assert_eq!(tlb.hits(), 0);
        pm.remove_region(VAddr(0x1000)).unwrap();
        // Revoked: the cached grant's generation is stale, so the check
        // misses, consults the new table, and denies.
        assert!(tlb
            .check(&pm, 0, VAddr(0x1800), Size(8), AccessFlags::RW)
            .is_err());
        assert_eq!(tlb.hits(), 0);
        assert_eq!(tlb.misses(), 2);
    }

    #[test]
    fn denials_and_default_allows_are_never_cached() {
        let pm = Arc::new(PolicyModule::new());
        pm.set_default_action(DefaultAction::Allow);
        let tlb = GuardTlb::new();
        for _ in 0..5 {
            // Permitted by default action only — must not populate the TLB.
            tlb.check(&pm, 1, VAddr(0x9000), Size(8), AccessFlags::READ)
                .unwrap();
        }
        assert_eq!(tlb.hits(), 0);
        assert_eq!(tlb.misses(), 5);
        // Flipping the default back is honoured immediately (nothing was
        // cached).
        pm.set_default_action(DefaultAction::Deny);
        assert!(tlb
            .check(&pm, 1, VAddr(0x9000), Size(8), AccessFlags::READ)
            .is_err());
    }

    #[test]
    fn cached_region_is_revalidated_per_access() {
        let pm = pm_with_region(0x1000, 0x1000);
        let tlb = GuardTlb::new();
        tlb.check(&pm, 2, VAddr(0x1000), Size(8), AccessFlags::RW)
            .unwrap();
        // Same site, address outside the cached region: the cached entry
        // cannot vouch for it, so this goes to the policy (and denies).
        assert!(tlb
            .check(&pm, 2, VAddr(0x5000), Size(8), AccessFlags::RW)
            .is_err());
        // Same site, insufficient permission: likewise a miss + denial.
        assert!(tlb
            .check(&pm, 2, VAddr(0x1000), Size(8), AccessFlags::EXEC)
            .is_err());
    }

    #[test]
    fn reconciliation_hits_plus_misses_equals_checks() {
        let pm = pm_with_region(0x1000, 0x1000);
        let tlb = GuardTlb::new();
        let total = 1234u64;
        for i in 0..total {
            let _ = tlb.check(
                &pm,
                (i % 4) as u32,
                VAddr(0x1000 + (i % 0x800)),
                Size(8),
                AccessFlags::RW,
            );
        }
        assert_eq!(tlb.hits() + tlb.misses(), total);
    }

    #[test]
    fn tlb_policy_classifies_and_caches() {
        let pm = pm_with_region(0x1000, 0x2000);
        let map = SiteMap::new(7)
            .range(0x1000, 0x2000, 0)
            .range(0x2000, 0x3000, 1);
        let tp = TlbPolicy::new(Arc::clone(&pm), map, GuardTlb::new());
        tp.carat_guard(VAddr(0x1100), Size(8), AccessFlags::READ)
            .unwrap();
        tp.carat_guard(VAddr(0x2100), Size(8), AccessFlags::READ)
            .unwrap();
        tp.carat_guard(VAddr(0x1100), Size(8), AccessFlags::READ)
            .unwrap();
        assert_eq!(tp.tlb().misses(), 2, "one miss per site");
        assert_eq!(tp.tlb().hits(), 1);
    }

    #[test]
    fn preseeded_entry_hits_without_a_policy_check() {
        let pm = pm_with_region(0x1000, 0x1000);
        let tlb = GuardTlb::new();
        assert!(tlb.preseed(&pm, 3, VAddr(0x1800), Size(8), AccessFlags::RW));
        assert_eq!(tlb.preseeded(), 1);
        // Seeding consumed no check: reconciliation stays exact.
        assert_eq!(pm.stats().checks, 0);
        tlb.check(&pm, 3, VAddr(0x1800), Size(8), AccessFlags::RW)
            .unwrap();
        assert_eq!(tlb.hits(), 1, "first real check is already a hit");
        assert_eq!(tlb.misses(), 0);
        assert_eq!(pm.stats().checks, 0);
        // A seed nothing covers is refused.
        assert!(!tlb.preseed(&pm, 4, VAddr(0x9000), Size(8), AccessFlags::RW));
        assert_eq!(tlb.preseeded(), 1);
        // A table write after seeding still invalidates the seeded grant.
        pm.remove_region(VAddr(0x1000)).unwrap();
        assert!(tlb
            .check(&pm, 3, VAddr(0x1800), Size(8), AccessFlags::RW)
            .is_err());
    }

    #[test]
    fn warmed_tlb_policy_skips_cold_misses() {
        let pm = pm_with_region(0x1000, 0x2000);
        let map = SiteMap::new(7).range(0x1000, 0x3000, 0);
        let tp = TlbPolicy::warmed(
            Arc::clone(&pm),
            map,
            GuardTlb::new(),
            &[(0, 0x1000, 8, AccessFlags::READ)],
        );
        tp.carat_guard(VAddr(0x1100), Size(8), AccessFlags::READ)
            .unwrap();
        assert_eq!(tp.tlb().misses(), 0);
        assert_eq!(tp.tlb().hits(), 1);
        assert_eq!(tp.tlb().preseeded(), 1);
    }

    #[test]
    fn revocation_epoch_invalidates_without_generation_churn() {
        let pm = pm_with_region(0x1000, 0x1000);
        let tlb = GuardTlb::new();
        tlb.check(&pm, 0, VAddr(0x1800), Size(8), AccessFlags::RW)
            .unwrap();
        let gen = pm.store_generation();
        pm.bump_revocation();
        assert_eq!(pm.store_generation(), gen, "no publish happened");
        // The cached grant's epoch is stale: next check must miss and
        // refill from the (unchanged) snapshot.
        tlb.check(&pm, 0, VAddr(0x1800), Size(8), AccessFlags::RW)
            .unwrap();
        assert_eq!(tlb.misses(), 2);
        // The refill carries the new epoch, so it hits again.
        tlb.check(&pm, 0, VAddr(0x1800), Size(8), AccessFlags::RW)
            .unwrap();
        assert_eq!(tlb.hits(), 1);
    }

    #[test]
    fn namespace_rebind_invalidates_cached_grants() {
        let pm = pm_with_region(0x1000, 0x1000);
        let tlb = GuardTlb::new();
        tlb.check(&pm, 0, VAddr(0x1800), Size(8), AccessFlags::RW)
            .unwrap();
        pm.set_namespace(42);
        tlb.check(&pm, 0, VAddr(0x1800), Size(8), AccessFlags::RW)
            .unwrap();
        assert_eq!(tlb.misses(), 2, "rebind forced a re-miss");
    }

    #[test]
    fn flush_forces_refill() {
        let pm = pm_with_region(0x1000, 0x1000);
        let tlb = GuardTlb::new();
        tlb.check(&pm, 0, VAddr(0x1800), Size(8), AccessFlags::RW)
            .unwrap();
        tlb.flush();
        tlb.check(&pm, 0, VAddr(0x1800), Size(8), AccessFlags::RW)
            .unwrap();
        assert_eq!(tlb.misses(), 2);
    }
}
