//! The paper's policy structure: a fixed 64-entry region table with linear
//! scan.
//!
//! §3.1: *"We use a table describing a maximum of 64 memory regions and
//! thus a permissions check has O(n) time complexity. A table was chosen in
//! order to minimize pointer chasing, lending speedup over other
//! implementations like the Linux kernel's red-black tree ... Each entry
//! stores a region's lower bound, length, and protection flags. When the
//! guard function is invoked, the policy module then simply walks the
//! region table and checks if the access should be permitted."*
//!
//! The table *does* support overlapping rules (unlike the tree structures);
//! an access is permitted if **any** rule covers it entirely and grants the
//! intent.

use kop_core::{AccessFlags, Region, Size, VAddr};

use crate::store::{validate_region, Lookup, PolicyError, RegionStore, StoreKind};

/// Maximum number of regions in the paper's table.
pub const MAX_REGIONS: usize = 64;

/// Fixed-capacity region table, scanned linearly.
///
/// Entries are stored in a flat array (no pointer chasing); the scan visits
/// entries in insertion order, which makes the *position* of the matching
/// rule the dominant cost — the Figure 5 experiment ("carat64") measures
/// exactly that.
#[derive(Clone, Debug)]
pub struct RegionTable {
    entries: [Option<Region>; MAX_REGIONS],
    len: usize,
    capacity: usize,
}

impl Default for RegionTable {
    fn default() -> Self {
        Self::new()
    }
}

impl RegionTable {
    /// A table with the paper's capacity of 64.
    pub fn new() -> RegionTable {
        Self::with_capacity(MAX_REGIONS)
    }

    /// A table with reduced capacity (still backed by the fixed array; the
    /// capacity only limits how many rules may be inserted).
    pub fn with_capacity(capacity: usize) -> RegionTable {
        assert!(capacity <= MAX_REGIONS, "table capacity is at most 64");
        RegionTable {
            entries: [None; MAX_REGIONS],
            len: 0,
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterate over live entries in scan order.
    pub fn iter(&self) -> impl Iterator<Item = &Region> {
        self.entries.iter().take(self.len).flatten()
    }
}

impl RegionStore for RegionTable {
    fn kind(&self) -> StoreKind {
        StoreKind::Table
    }

    fn insert(&mut self, region: Region) -> Result<(), PolicyError> {
        validate_region(&region)?;
        // Bases key removal, so duplicates are rejected uniformly across
        // all stores (overlap *acceptance* still differs by structure).
        if let Some(existing) = self.iter().find(|r| r.base == region.base) {
            return Err(PolicyError::DuplicateBase {
                existing: *existing,
            });
        }
        if self.len >= self.capacity {
            return Err(PolicyError::TableFull {
                capacity: self.capacity,
            });
        }
        // Compact invariant: entries[0..len] are Some, rest None.
        self.entries[self.len] = Some(region);
        self.len += 1;
        Ok(())
    }

    fn remove(&mut self, base: VAddr) -> Result<Region, PolicyError> {
        let idx = (0..self.len)
            .find(|&i| self.entries[i].map(|r| r.base) == Some(base))
            .ok_or(PolicyError::NoSuchRegion { base })?;
        let removed = self.entries[idx].take().expect("live entry");
        // Keep the prefix compact: shift the tail left (the kernel table
        // does the same; removal is rare and off the fast path).
        for i in idx..self.len - 1 {
            self.entries[i] = self.entries[i + 1];
        }
        self.entries[self.len - 1] = None;
        self.len -= 1;
        Ok(removed)
    }

    fn clear(&mut self) {
        self.entries = [None; MAX_REGIONS];
        self.len = 0;
    }

    fn len(&self) -> usize {
        self.len
    }

    fn snapshot(&self) -> Vec<Region> {
        self.iter().copied().collect()
    }

    #[inline]
    fn lookup(&mut self, addr: VAddr, size: Size, flags: AccessFlags) -> Lookup {
        // The fast path the paper measures: a forward scan over a compact
        // array, one branch per entry in the common (covered + permitted)
        // case.
        let mut covering: Option<Region> = None;
        for i in 0..self.len {
            // Safety of unwrap: compact invariant.
            let r = self.entries[i].expect("compact prefix");
            if r.covers(addr, size) {
                if r.prot.allows(flags) {
                    return Lookup::Permitted(r);
                }
                covering.get_or_insert(r);
            }
        }
        match covering {
            Some(r) => Lookup::Forbidden(r),
            None => Lookup::NoMatch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_core::Protection;

    fn r(base: u64, len: u64, prot: Protection) -> Region {
        Region::new(VAddr(base), Size(len), prot).unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = RegionTable::new();
        t.insert(r(0x1000, 0x1000, Protection::READ_WRITE)).unwrap();
        assert_eq!(t.len(), 1);
        assert!(matches!(
            t.lookup(VAddr(0x1800), Size(8), AccessFlags::RW),
            Lookup::Permitted(_)
        ));
        assert!(matches!(
            t.lookup(VAddr(0x2000), Size(8), AccessFlags::READ),
            Lookup::NoMatch
        ));
    }

    #[test]
    fn forbidden_when_covered_but_not_granted() {
        let mut t = RegionTable::new();
        t.insert(r(0x1000, 0x1000, Protection::READ_ONLY)).unwrap();
        assert!(matches!(
            t.lookup(VAddr(0x1000), Size(8), AccessFlags::WRITE),
            Lookup::Forbidden(_)
        ));
        assert!(matches!(
            t.lookup(VAddr(0x1000), Size(8), AccessFlags::READ),
            Lookup::Permitted(_)
        ));
    }

    #[test]
    fn overlapping_rules_any_grant_wins() {
        // A read-only blanket rule plus a small read-write window inside it.
        let mut t = RegionTable::new();
        t.insert(r(0x1000, 0x10000, Protection::READ_ONLY)).unwrap();
        t.insert(r(0x4000, 0x1000, Protection::READ_WRITE)).unwrap();
        assert!(matches!(
            t.lookup(VAddr(0x4800), Size(8), AccessFlags::WRITE),
            Lookup::Permitted(_)
        ));
        assert!(matches!(
            t.lookup(VAddr(0x2000), Size(8), AccessFlags::WRITE),
            Lookup::Forbidden(_)
        ));
    }

    #[test]
    fn access_straddling_region_end_denied() {
        let mut t = RegionTable::new();
        t.insert(r(0x1000, 0x100, Protection::ALL)).unwrap();
        // Last byte in range: ok.
        assert!(matches!(
            t.lookup(VAddr(0x10f8), Size(8), AccessFlags::READ),
            Lookup::Permitted(_)
        ));
        // One byte past: straddles out.
        assert!(matches!(
            t.lookup(VAddr(0x10f9), Size(8), AccessFlags::READ),
            Lookup::NoMatch
        ));
    }

    #[test]
    fn access_straddling_two_adjacent_regions_denied() {
        // Adjacent rules do not merge: an access must be covered by a
        // single rule. (Documented behaviour; a firewall would write one
        // rule for the union.)
        let mut t = RegionTable::new();
        t.insert(r(0x1000, 0x100, Protection::ALL)).unwrap();
        t.insert(r(0x1100, 0x100, Protection::ALL)).unwrap();
        assert!(matches!(
            t.lookup(VAddr(0x10fc), Size(8), AccessFlags::READ),
            Lookup::NoMatch
        ));
    }

    #[test]
    fn capacity_enforced_at_64() {
        let mut t = RegionTable::new();
        for i in 0..MAX_REGIONS as u64 {
            t.insert(r(i * 0x1000, 0x800, Protection::ALL)).unwrap();
        }
        let err = t.insert(r(0x100_0000, 0x800, Protection::ALL)).unwrap_err();
        assert_eq!(err, PolicyError::TableFull { capacity: 64 });
        assert_eq!(t.len(), 64);
    }

    #[test]
    fn remove_compacts_and_preserves_order() {
        let mut t = RegionTable::new();
        t.insert(r(0x1000, 0x100, Protection::ALL)).unwrap();
        t.insert(r(0x2000, 0x100, Protection::ALL)).unwrap();
        t.insert(r(0x3000, 0x100, Protection::ALL)).unwrap();
        let removed = t.remove(VAddr(0x2000)).unwrap();
        assert_eq!(removed.base, VAddr(0x2000));
        assert_eq!(t.len(), 2);
        let snap = t.snapshot();
        assert_eq!(snap[0].base, VAddr(0x1000));
        assert_eq!(snap[1].base, VAddr(0x3000));
        assert_eq!(
            t.remove(VAddr(0x2000)).unwrap_err(),
            PolicyError::NoSuchRegion {
                base: VAddr(0x2000)
            }
        );
    }

    #[test]
    fn clear_empties() {
        let mut t = RegionTable::new();
        t.insert(r(0, 0x100, Protection::ALL)).unwrap();
        t.clear();
        assert!(t.is_empty());
        assert!(matches!(
            t.lookup(VAddr(0), Size(1), AccessFlags::READ),
            Lookup::NoMatch
        ));
    }

    #[test]
    fn scan_order_is_insertion_order() {
        // Both rules cover the address; the permitted one is found even
        // though the forbidden one is first (scan continues past
        // insufficient rules). Distinct bases: duplicate bases are
        // rejected uniformly across stores.
        let mut t = RegionTable::new();
        t.insert(r(0x0800, 0x2000, Protection::NONE)).unwrap();
        t.insert(r(0x1000, 0x1000, Protection::ALL)).unwrap();
        assert!(matches!(
            t.lookup(VAddr(0x1500), Size(4), AccessFlags::RW),
            Lookup::Permitted(_)
        ));
    }

    #[test]
    fn duplicate_base_rejected() {
        let mut t = RegionTable::new();
        t.insert(r(0x1000, 0x1000, Protection::NONE)).unwrap();
        let err = t.insert(r(0x1000, 0x2000, Protection::ALL)).unwrap_err();
        assert!(matches!(err, PolicyError::DuplicateBase { existing } if existing.base == VAddr(0x1000)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn reduced_capacity_table() {
        let mut t = RegionTable::with_capacity(2);
        t.insert(r(0x1000, 0x100, Protection::ALL)).unwrap();
        t.insert(r(0x2000, 0x100, Protection::ALL)).unwrap();
        assert_eq!(
            t.insert(r(0x3000, 0x100, Protection::ALL)).unwrap_err(),
            PolicyError::TableFull { capacity: 2 }
        );
    }
}
