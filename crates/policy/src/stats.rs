//! Guard statistics — what the policy module reports through the
//! `Stats` ioctl.
//!
//! Since the kop-trace subsystem landed, the cells behind these counters
//! are [`kop_trace::Counter`]s rather than bare atomics: the update path
//! costs the same (one relaxed `fetch_add` per cell), but the policy can
//! [`GuardStats::register_into`] a tracer's [`kop_trace::CounterRegistry`]
//! so figures and the `/dev/trace` chardev read the *same cells* as the
//! `Stats` ioctl — one registry instead of three bespoke structs.

use core::fmt;

use kop_trace::{Counter, CounterRegistry};

/// Counters maintained by the policy module across guard invocations.
///
/// Counters are atomics so the guard path can update them from concurrent
/// driver contexts without taking the policy lock.
#[derive(Debug)]
pub struct GuardStats {
    checks: Counter,
    permitted: Counter,
    denied_no_match: Counter,
    denied_insufficient: Counter,
    denied_malformed: Counter,
}

impl Default for GuardStats {
    fn default() -> GuardStats {
        GuardStats {
            checks: Counter::new("policy.checks"),
            permitted: Counter::new("policy.permitted"),
            denied_no_match: Counter::new("policy.denied_no_match"),
            denied_insufficient: Counter::new("policy.denied_insufficient"),
            denied_malformed: Counter::new("policy.denied_malformed"),
        }
    }
}

/// A plain snapshot of [`GuardStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GuardStatsSnapshot {
    /// Total guard invocations.
    pub checks: u64,
    /// Accesses permitted.
    pub permitted: u64,
    /// Denied: no region covered the access.
    pub denied_no_match: u64,
    /// Denied: covered but intent not granted.
    pub denied_insufficient: u64,
    /// Denied: malformed guard call (zero size / empty intent).
    pub denied_malformed: u64,
}

impl GuardStats {
    /// Fresh zeroed counters.
    pub fn new() -> GuardStats {
        GuardStats::default()
    }

    /// Share these counter cells with `registry` (idempotent per name;
    /// first registration wins, which keeps live counts intact).
    pub fn register_into(&self, registry: &CounterRegistry) {
        for c in [
            &self.checks,
            &self.permitted,
            &self.denied_no_match,
            &self.denied_insufficient,
            &self.denied_malformed,
        ] {
            registry.register(c);
        }
    }

    /// Record a permitted access.
    #[inline]
    pub fn record_permitted(&self) {
        self.checks.inc();
        self.permitted.inc();
    }

    /// Record `n` permitted accesses in one pair of counter updates — the
    /// flush half of a batching fast path that defers its accounting.
    #[inline]
    pub fn record_permitted_n(&self, n: u64) {
        self.checks.add(n);
        self.permitted.add(n);
    }

    /// Record a denial with no covering region.
    #[inline]
    pub fn record_no_match(&self) {
        self.checks.inc();
        self.denied_no_match.inc();
    }

    /// Record a denial with a covering region lacking the intent.
    #[inline]
    pub fn record_insufficient(&self) {
        self.checks.inc();
        self.denied_insufficient.inc();
    }

    /// Record a malformed guard call.
    #[inline]
    pub fn record_malformed(&self) {
        self.checks.inc();
        self.denied_malformed.inc();
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> GuardStatsSnapshot {
        GuardStatsSnapshot {
            checks: self.checks.get(),
            permitted: self.permitted.get(),
            denied_no_match: self.denied_no_match.get(),
            denied_insufficient: self.denied_insufficient.get(),
            denied_malformed: self.denied_malformed.get(),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.checks.reset();
        self.permitted.reset();
        self.denied_no_match.reset();
        self.denied_insufficient.reset();
        self.denied_malformed.reset();
    }
}

impl GuardStatsSnapshot {
    /// Total denials.
    pub fn denied(&self) -> u64 {
        self.denied_no_match + self.denied_insufficient + self.denied_malformed
    }
}

impl fmt::Display for GuardStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "checks={} permitted={} denied={} (no_match={}, insufficient={}, malformed={})",
            self.checks,
            self.permitted,
            self.denied(),
            self.denied_no_match,
            self.denied_insufficient,
            self.denied_malformed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let s = GuardStats::new();
        s.record_permitted();
        s.record_permitted();
        s.record_no_match();
        s.record_insufficient();
        s.record_malformed();
        let snap = s.snapshot();
        assert_eq!(snap.checks, 5);
        assert_eq!(snap.permitted, 2);
        assert_eq!(snap.denied(), 3);
        assert_eq!(snap.denied_no_match, 1);
        assert_eq!(snap.denied_insufficient, 1);
        assert_eq!(snap.denied_malformed, 1);
    }

    #[test]
    fn reset_zeroes() {
        let s = GuardStats::new();
        s.record_permitted();
        s.reset();
        assert_eq!(s.snapshot(), GuardStatsSnapshot::default());
    }

    #[test]
    fn concurrent_updates_dont_lose_counts() {
        use std::sync::Arc;
        let s = Arc::new(GuardStats::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    s.record_permitted();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().permitted, 80_000);
        assert_eq!(s.snapshot().checks, 80_000);
    }

    #[test]
    fn registered_registry_reads_the_live_cells() {
        let reg = CounterRegistry::new();
        let s = GuardStats::new();
        s.register_into(&reg);
        s.record_permitted();
        s.record_no_match();
        assert_eq!(reg.get("policy.checks").unwrap().get(), 2);
        assert_eq!(reg.get("policy.permitted").unwrap().get(), 1);
        assert_eq!(reg.get("policy.denied_no_match").unwrap().get(), 1);
        // The ioctl-side snapshot and the registry agree — same cells.
        assert_eq!(s.snapshot().checks, reg.get("policy.checks").unwrap().get());
    }
}
