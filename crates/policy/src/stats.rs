//! Guard statistics — what the policy module reports through the
//! `Stats` ioctl.

use core::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters maintained by the policy module across guard invocations.
///
/// Counters are atomics so the guard path can update them from concurrent
/// driver contexts without taking the policy lock.
#[derive(Debug, Default)]
pub struct GuardStats {
    checks: AtomicU64,
    permitted: AtomicU64,
    denied_no_match: AtomicU64,
    denied_insufficient: AtomicU64,
    denied_malformed: AtomicU64,
}

/// A plain snapshot of [`GuardStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GuardStatsSnapshot {
    /// Total guard invocations.
    pub checks: u64,
    /// Accesses permitted.
    pub permitted: u64,
    /// Denied: no region covered the access.
    pub denied_no_match: u64,
    /// Denied: covered but intent not granted.
    pub denied_insufficient: u64,
    /// Denied: malformed guard call (zero size / empty intent).
    pub denied_malformed: u64,
}

impl GuardStats {
    /// Fresh zeroed counters.
    pub fn new() -> GuardStats {
        GuardStats::default()
    }

    /// Record a permitted access.
    #[inline]
    pub fn record_permitted(&self) {
        self.checks.fetch_add(1, Ordering::Relaxed);
        self.permitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a denial with no covering region.
    #[inline]
    pub fn record_no_match(&self) {
        self.checks.fetch_add(1, Ordering::Relaxed);
        self.denied_no_match.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a denial with a covering region lacking the intent.
    #[inline]
    pub fn record_insufficient(&self) {
        self.checks.fetch_add(1, Ordering::Relaxed);
        self.denied_insufficient.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a malformed guard call.
    #[inline]
    pub fn record_malformed(&self) {
        self.checks.fetch_add(1, Ordering::Relaxed);
        self.denied_malformed.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> GuardStatsSnapshot {
        GuardStatsSnapshot {
            checks: self.checks.load(Ordering::Relaxed),
            permitted: self.permitted.load(Ordering::Relaxed),
            denied_no_match: self.denied_no_match.load(Ordering::Relaxed),
            denied_insufficient: self.denied_insufficient.load(Ordering::Relaxed),
            denied_malformed: self.denied_malformed.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.checks.store(0, Ordering::Relaxed);
        self.permitted.store(0, Ordering::Relaxed);
        self.denied_no_match.store(0, Ordering::Relaxed);
        self.denied_insufficient.store(0, Ordering::Relaxed);
        self.denied_malformed.store(0, Ordering::Relaxed);
    }
}

impl GuardStatsSnapshot {
    /// Total denials.
    pub fn denied(&self) -> u64 {
        self.denied_no_match + self.denied_insufficient + self.denied_malformed
    }
}

impl fmt::Display for GuardStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "checks={} permitted={} denied={} (no_match={}, insufficient={}, malformed={})",
            self.checks,
            self.permitted,
            self.denied(),
            self.denied_no_match,
            self.denied_insufficient,
            self.denied_malformed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let s = GuardStats::new();
        s.record_permitted();
        s.record_permitted();
        s.record_no_match();
        s.record_insufficient();
        s.record_malformed();
        let snap = s.snapshot();
        assert_eq!(snap.checks, 5);
        assert_eq!(snap.permitted, 2);
        assert_eq!(snap.denied(), 3);
        assert_eq!(snap.denied_no_match, 1);
        assert_eq!(snap.denied_insufficient, 1);
        assert_eq!(snap.denied_malformed, 1);
    }

    #[test]
    fn reset_zeroes() {
        let s = GuardStats::new();
        s.record_permitted();
        s.reset();
        assert_eq!(s.snapshot(), GuardStatsSnapshot::default());
    }

    #[test]
    fn concurrent_updates_dont_lose_counts() {
        use std::sync::Arc;
        let s = Arc::new(GuardStats::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    s.record_permitted();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().permitted, 80_000);
        assert_eq!(s.snapshot().checks, 80_000);
    }
}
