//! The policy module itself: a region store + default action + violation
//! action + statistics behind the `carat_guard` entry point.
//!
//! §3.1: *"this module is inserted into the kernel and provides a single
//! symbol, `carat_guard`, which is invoked by modules which have been
//! transformed by the compiler. This interface is general enough — and
//! simple enough — that potentially any memory policy system could be
//! built on top of it."*

use std::sync::Mutex as StdMutex;

use parking_lot::Mutex;

use kop_core::error::ViolationKind;
use kop_core::{AccessFlags, KernelError, Region, Size, VAddr, Violation};

use crate::intrinsics::IntrinsicPolicy;
use crate::stats::{GuardStats, GuardStatsSnapshot};
use crate::store::{make_store, Lookup, PolicyError, RegionStore, StoreKind};
use crate::PolicyCheck;

/// What happens when no region covers an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DefaultAction {
    /// Allow unmatched accesses (regions then act as deny/downgrade rules).
    Allow,
    /// Deny unmatched accesses (regions act as allow rules) — the safe
    /// default for firewalling a module.
    Deny,
}

/// What the policy module does when a check fails.
///
/// The paper (§3.1): forcibly unloading a running module is dangerous
/// (locks held, state shared), so CARAT KOP "log[s] that they occur and
/// cause[s] a kernel panic" — and argues a hard stop is the *right* call in
/// production HPC. The other actions exist for development and for the
/// survive-the-violation mode: [`ViolationAction::Quarantine`] hands the
/// violation to the kernel, which oopses and unloads *only* the offending
/// module (symbol unlink, policy revoke, budget accounting) while the rest
/// of the system keeps running — the posture MOAT and Rex argue for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationAction {
    /// Log and panic the (simulated) kernel — the paper's behaviour.
    Panic,
    /// Log and squash the access (like a page fault that skips the op).
    LogAndDeny,
    /// Log and let the access proceed (audit mode).
    LogAndAllow,
    /// Log, squash, and report the violation for module quarantine: the
    /// kernel charges it against the module's violation budget and
    /// force-unloads the module when the budget is exhausted.
    Quarantine,
}

/// Outcome of an enforced guard check.
#[derive(Debug)]
pub enum GuardOutcome {
    /// The access may proceed.
    Allowed,
    /// The access must be squashed; execution may continue.
    Denied(Violation),
    /// The access must be squashed **and** the violation charged against
    /// the offending module's quarantine budget by the caller.
    Quarantined(Violation),
    /// The kernel has panicked (the paper's configuration).
    Panicked(KernelError),
}

impl GuardOutcome {
    /// Whether the access may proceed.
    pub fn is_allowed(&self) -> bool {
        matches!(self, GuardOutcome::Allowed)
    }
}

/// Maximum violation log entries retained.
const LOG_CAP: usize = 1024;

/// The CARAT KOP policy module.
///
/// ```
/// use kop_core::{AccessFlags, Protection, Region, Size, VAddr};
/// use kop_policy::PolicyModule;
///
/// let pm = PolicyModule::new(); // default deny
/// pm.add_region(Region::new(VAddr(0x1000), Size(0x1000), Protection::READ_WRITE).unwrap())
///     .unwrap();
/// assert!(pm.check(VAddr(0x1800), Size(8), AccessFlags::RW).is_ok());
/// assert!(pm.check(VAddr(0x9000), Size(8), AccessFlags::READ).is_err());
/// ```
pub struct PolicyModule {
    store: Mutex<Box<dyn RegionStore + Send>>,
    intrinsics: Mutex<IntrinsicPolicy>,
    default_action: Mutex<DefaultAction>,
    violation_action: Mutex<ViolationAction>,
    stats: GuardStats,
    // Std mutex here: the log is cold and std's poisoning is irrelevant for
    // a Vec of strings.
    log: StdMutex<Vec<String>>,
}

impl PolicyModule {
    /// A policy module backed by the paper's 64-entry table, default deny,
    /// panic on violation.
    pub fn new() -> PolicyModule {
        Self::with_kind(StoreKind::Table)
    }

    /// A policy module backed by a chosen structure.
    pub fn with_kind(kind: StoreKind) -> PolicyModule {
        PolicyModule {
            store: Mutex::new(make_store(kind)),
            intrinsics: Mutex::new(IntrinsicPolicy::new()),
            default_action: Mutex::new(DefaultAction::Deny),
            violation_action: Mutex::new(ViolationAction::Panic),
            stats: GuardStats::new(),
            log: StdMutex::new(Vec::new()),
        }
    }

    /// The paper's two-region evaluation policy (§4.2, footnote 5): *"For
    /// two regions specifically, the policy rule is that kernel addresses
    /// (the 'high half') are allowed, but user addresses (the 'low half')
    /// are disallowed."*
    pub fn two_region_paper_policy() -> PolicyModule {
        use kop_core::layout::{KERNEL_HALF_BASE, USER_HALF_END};
        use kop_core::Protection;
        let pm = PolicyModule::new();
        // Rule 1: the whole kernel half, read-write.
        pm.add_region(
            Region::new(
                VAddr(KERNEL_HALF_BASE),
                Size(u64::MAX - KERNEL_HALF_BASE + 1),
                Protection::READ_WRITE,
            )
            .expect("kernel half region"),
        )
        .expect("insert kernel half");
        // Rule 2: the whole user half, no permissions (explicit deny).
        pm.add_region(
            Region::new(VAddr(0), Size(USER_HALF_END), Protection::NONE).expect("user half"),
        )
        .expect("insert user half");
        pm
    }

    /// Backing structure kind.
    pub fn store_kind(&self) -> StoreKind {
        self.store.lock().kind()
    }

    /// Add a firewall rule.
    pub fn add_region(&self, region: Region) -> Result<(), PolicyError> {
        self.store.lock().insert(region)
    }

    /// Remove the rule with this base address.
    pub fn remove_region(&self, base: VAddr) -> Result<Region, PolicyError> {
        self.store.lock().remove(base)
    }

    /// Drop all rules.
    pub fn clear_regions(&self) {
        self.store.lock().clear()
    }

    /// Number of rules.
    pub fn region_count(&self) -> usize {
        self.store.lock().len()
    }

    /// Snapshot of all rules.
    pub fn regions(&self) -> Vec<Region> {
        self.store.lock().snapshot()
    }

    /// Grant a privileged intrinsic (§5 extension).
    pub fn allow_intrinsic(&self, id: u32) {
        self.intrinsics.lock().allow(id);
    }

    /// Revoke a privileged intrinsic; returns whether it was granted.
    pub fn revoke_intrinsic(&self, id: u32) -> bool {
        self.intrinsics.lock().revoke(id)
    }

    /// The granted intrinsic ids.
    pub fn granted_intrinsics(&self) -> Vec<u32> {
        self.intrinsics.lock().granted()
    }

    /// The pure intrinsic check: classify, update stats, log violations.
    pub fn check_intrinsic(&self, id: u32) -> Result<(), Violation> {
        match self.intrinsics.lock().check(id) {
            Ok(()) => {
                self.stats.record_permitted();
                Ok(())
            }
            Err(v) => {
                self.stats.record_insufficient();
                self.log_violation(&v);
                Err(v)
            }
        }
    }

    /// Check an intrinsic and apply the configured violation action.
    pub fn enforce_intrinsic(&self, id: u32) -> GuardOutcome {
        match self.check_intrinsic(id) {
            Ok(()) => GuardOutcome::Allowed,
            Err(v) => match self.violation_action() {
                ViolationAction::Panic => GuardOutcome::Panicked(v.into()),
                ViolationAction::LogAndDeny => GuardOutcome::Denied(v),
                ViolationAction::LogAndAllow => GuardOutcome::Allowed,
                ViolationAction::Quarantine => GuardOutcome::Quarantined(v),
            },
        }
    }

    /// Set the default action.
    pub fn set_default_action(&self, action: DefaultAction) {
        *self.default_action.lock() = action;
    }

    /// Current default action.
    pub fn default_action(&self) -> DefaultAction {
        *self.default_action.lock()
    }

    /// Set the violation action.
    pub fn set_violation_action(&self, action: ViolationAction) {
        *self.violation_action.lock() = action;
    }

    /// Current violation action.
    pub fn violation_action(&self) -> ViolationAction {
        *self.violation_action.lock()
    }

    /// Guard statistics snapshot.
    pub fn stats(&self) -> GuardStatsSnapshot {
        self.stats.snapshot()
    }

    /// The live counter cells (e.g. to
    /// [`GuardStats::register_into`] a tracer's counter registry).
    pub fn guard_stats(&self) -> &GuardStats {
        &self.stats
    }

    /// Reset statistics.
    pub fn reset_stats(&self) {
        self.stats.reset()
    }

    /// The violation log (most recent last).
    pub fn violation_log(&self) -> Vec<String> {
        self.log.lock().expect("log lock").clone()
    }

    fn log_violation(&self, v: &Violation) {
        let mut log = self.log.lock().expect("log lock");
        if log.len() == LOG_CAP {
            log.remove(0);
        }
        log.push(v.to_string());
    }

    /// The pure check: classify the access, update stats, log violations.
    /// Does **not** apply the violation action — see [`Self::enforce`].
    pub fn check(&self, addr: VAddr, size: Size, flags: AccessFlags) -> Result<(), Violation> {
        if size.raw() == 0 || flags.is_empty() {
            let v = Violation::new(addr, size, flags, ViolationKind::MalformedAccess);
            self.stats.record_malformed();
            self.log_violation(&v);
            return Err(v);
        }
        if addr.checked_add(size.raw() - 1).is_none() {
            let v = Violation::new(addr, size, flags, ViolationKind::AddressOverflow);
            self.stats.record_malformed();
            self.log_violation(&v);
            return Err(v);
        }
        let lookup = self.store.lock().lookup(addr, size, flags);
        match lookup {
            Lookup::Permitted(_) => {
                self.stats.record_permitted();
                Ok(())
            }
            Lookup::Forbidden(_) => {
                let v = Violation::new(addr, size, flags, ViolationKind::InsufficientPermissions);
                self.stats.record_insufficient();
                self.log_violation(&v);
                Err(v)
            }
            Lookup::NoMatch => match self.default_action() {
                DefaultAction::Allow => {
                    self.stats.record_permitted();
                    Ok(())
                }
                DefaultAction::Deny => {
                    let v = Violation::new(addr, size, flags, ViolationKind::NoMatchingRegion);
                    self.stats.record_no_match();
                    self.log_violation(&v);
                    Err(v)
                }
            },
        }
    }

    /// Check and apply the configured violation action.
    pub fn enforce(&self, addr: VAddr, size: Size, flags: AccessFlags) -> GuardOutcome {
        match self.check(addr, size, flags) {
            Ok(()) => GuardOutcome::Allowed,
            Err(v) => match self.violation_action() {
                ViolationAction::Panic => GuardOutcome::Panicked(v.into()),
                ViolationAction::LogAndDeny => GuardOutcome::Denied(v),
                ViolationAction::LogAndAllow => GuardOutcome::Allowed,
                ViolationAction::Quarantine => GuardOutcome::Quarantined(v),
            },
        }
    }
}

impl Default for PolicyModule {
    fn default() -> Self {
        Self::new()
    }
}

impl PolicyCheck for PolicyModule {
    #[inline]
    fn carat_guard(&self, addr: VAddr, size: Size, flags: AccessFlags) -> Result<(), Violation> {
        self.check(addr, size, flags)
    }
}

impl PolicyCheck for &PolicyModule {
    #[inline]
    fn carat_guard(&self, addr: VAddr, size: Size, flags: AccessFlags) -> Result<(), Violation> {
        (*self).check(addr, size, flags)
    }
}

impl PolicyCheck for std::sync::Arc<PolicyModule> {
    #[inline]
    fn carat_guard(&self, addr: VAddr, size: Size, flags: AccessFlags) -> Result<(), Violation> {
        self.as_ref().check(addr, size, flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_core::layout::{DIRECT_MAP_BASE, KERNEL_HALF_BASE};
    use kop_core::Protection;

    #[test]
    fn two_region_paper_policy_semantics() {
        let pm = PolicyModule::two_region_paper_policy();
        assert_eq!(pm.region_count(), 2);
        // Kernel-half access allowed.
        assert!(pm
            .check(VAddr(DIRECT_MAP_BASE + 0x1000), Size(8), AccessFlags::RW)
            .is_ok());
        // User-half access denied with InsufficientPermissions (covered by
        // the explicit NONE rule).
        let v = pm
            .check(VAddr(0x40_0000), Size(8), AccessFlags::READ)
            .unwrap_err();
        assert_eq!(v.kind, ViolationKind::InsufficientPermissions);
        // Exec in the kernel half is not granted by the RW rule.
        let v = pm
            .check(VAddr(KERNEL_HALF_BASE), Size(1), AccessFlags::EXEC)
            .unwrap_err();
        assert_eq!(v.kind, ViolationKind::InsufficientPermissions);
    }

    #[test]
    fn default_allow_vs_deny() {
        let pm = PolicyModule::new();
        let addr = VAddr(0x1234_5678);
        // Default deny, empty policy: everything denied.
        let v = pm.check(addr, Size(4), AccessFlags::READ).unwrap_err();
        assert_eq!(v.kind, ViolationKind::NoMatchingRegion);
        // Flip to allow: everything permitted.
        pm.set_default_action(DefaultAction::Allow);
        assert!(pm.check(addr, Size(4), AccessFlags::READ).is_ok());
    }

    #[test]
    fn malformed_accesses_rejected() {
        let pm = PolicyModule::new();
        pm.set_default_action(DefaultAction::Allow);
        let v = pm
            .check(VAddr(0x1000), Size(0), AccessFlags::READ)
            .unwrap_err();
        assert_eq!(v.kind, ViolationKind::MalformedAccess);
        let v = pm
            .check(VAddr(0x1000), Size(8), AccessFlags::NONE)
            .unwrap_err();
        assert_eq!(v.kind, ViolationKind::MalformedAccess);
        let v = pm
            .check(VAddr(u64::MAX), Size(2), AccessFlags::READ)
            .unwrap_err();
        assert_eq!(v.kind, ViolationKind::AddressOverflow);
    }

    #[test]
    fn enforce_applies_violation_action() {
        let pm = PolicyModule::new(); // default deny + panic
        let addr = VAddr(0x1000);
        match pm.enforce(addr, Size(8), AccessFlags::READ) {
            GuardOutcome::Panicked(KernelError::Panic { violation, .. }) => {
                assert!(violation.is_some());
            }
            other => panic!("expected panic, got {other:?}"),
        }
        pm.set_violation_action(ViolationAction::LogAndDeny);
        assert!(matches!(
            pm.enforce(addr, Size(8), AccessFlags::READ),
            GuardOutcome::Denied(_)
        ));
        pm.set_violation_action(ViolationAction::LogAndAllow);
        assert!(pm.enforce(addr, Size(8), AccessFlags::READ).is_allowed());
        pm.set_violation_action(ViolationAction::Quarantine);
        match pm.enforce(addr, Size(8), AccessFlags::READ) {
            GuardOutcome::Quarantined(v) => {
                assert_eq!(v.kind, ViolationKind::NoMatchingRegion)
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
    }

    #[test]
    fn stats_and_log_track_checks() {
        let pm = PolicyModule::new();
        pm.add_region(Region::new(VAddr(0x1000), Size(0x1000), Protection::READ_WRITE).unwrap())
            .unwrap();
        assert!(pm.check(VAddr(0x1800), Size(8), AccessFlags::RW).is_ok());
        let _ = pm.check(VAddr(0x9000), Size(8), AccessFlags::RW);
        let s = pm.stats();
        assert_eq!(s.checks, 2);
        assert_eq!(s.permitted, 1);
        assert_eq!(s.denied_no_match, 1);
        let log = pm.violation_log();
        assert_eq!(log.len(), 1);
        assert!(log[0].contains("no matching policy region"));
        pm.reset_stats();
        assert_eq!(pm.stats().checks, 0);
    }

    #[test]
    fn policy_mutable_at_runtime_without_reloading() {
        // §3.2: swapping the policy does not require recompiling the
        // guarded module — the module just calls carat_guard.
        let pm = PolicyModule::new();
        let addr = VAddr(0xffff_8880_0000_1000);
        assert!(pm.check(addr, Size(8), AccessFlags::READ).is_err());
        pm.add_region(
            Region::new(
                VAddr(0xffff_8880_0000_0000),
                Size(1 << 30),
                Protection::READ_WRITE,
            )
            .unwrap(),
        )
        .unwrap();
        assert!(pm.check(addr, Size(8), AccessFlags::READ).is_ok());
        pm.remove_region(VAddr(0xffff_8880_0000_0000)).unwrap();
        assert!(pm.check(addr, Size(8), AccessFlags::READ).is_err());
    }

    #[test]
    fn works_with_every_store_kind() {
        for kind in StoreKind::ALL {
            let pm = PolicyModule::with_kind(kind);
            assert_eq!(pm.store_kind(), kind);
            pm.add_region(
                Region::new(VAddr(0x10_0000), Size(0x1000), Protection::READ_WRITE).unwrap(),
            )
            .unwrap();
            assert!(
                pm.check(VAddr(0x10_0800), Size(8), AccessFlags::RW).is_ok(),
                "{kind} should permit"
            );
            assert!(
                pm.check(VAddr(0x20_0000), Size(8), AccessFlags::RW)
                    .is_err(),
                "{kind} should deny"
            );
        }
    }

    #[test]
    fn log_capped() {
        let pm = PolicyModule::new();
        for i in 0..(LOG_CAP + 10) {
            let _ = pm.check(VAddr(i as u64 * 8), Size(8), AccessFlags::READ);
        }
        assert_eq!(pm.violation_log().len(), LOG_CAP);
    }
}
