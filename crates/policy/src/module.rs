//! The policy module itself: a region store + default action + violation
//! action + statistics behind the `carat_guard` entry point.
//!
//! §3.1: *"this module is inserted into the kernel and provides a single
//! symbol, `carat_guard`, which is invoked by modules which have been
//! transformed by the compiler. This interface is general enough — and
//! simple enough — that potentially any memory policy system could be
//! built on top of it."*
//!
//! # SMP structure
//!
//! The check path is read-mostly, so it is split RCU-style (DESIGN
//! §3.13): mutations go through a mutex-protected authoritative
//! [`RegionStore`] and republish an immutable [`PolicySnapshot`]; checks
//! default to the lock-free snapshot path ([`CheckPath::Snapshot`]) and
//! touch no lock at all. Default/violation actions and the intrinsic
//! table are atomics/published snapshots for the same reason. The
//! pre-SMP behaviour is still available as [`CheckPath::MutexStore`]
//! (it is the baseline the `reproduce smp` figure measures against, and
//! the only path that exercises self-adjusting stores' read-side
//! reorganization).

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use arc_swap::ArcSwap;
use parking_lot::Mutex;

use kop_core::error::ViolationKind;
use kop_core::{AccessFlags, KernelError, Region, Size, VAddr, Violation};

use kop_trace::CounterRegistry;

use crate::intrinsics::IntrinsicPolicy;
use crate::snapshot::{PolicySnapshot, SnapshotStore};
use crate::stats::{GuardStats, GuardStatsSnapshot};
use crate::store::{make_store, Lookup, PolicyError, RegionStore, StoreKind};
use crate::vlog::ViolationLog;
use crate::PolicyCheck;

/// The memory geometry of one NIC datapath, in the driver's virtual
/// address space, used by [`PolicyModule::datapath_policy`] to build a
/// least-privilege rule set. Each window is `(base, len)`; zero-length
/// windows are skipped.
#[derive(Clone, Debug, Default)]
pub struct DatapathGeometry {
    /// Control structures the CPU reads and writes: descriptor rings,
    /// stats scratch.
    pub control: Vec<(u64, u64)>,
    /// Transmit payload buffers — the CPU writes frames here for the
    /// device to DMA out (read-write).
    pub tx_buffers: (u64, u64),
    /// Receive payload buffers — the *device* writes these via DMA
    /// (below the guards); the CPU only ever reads them (read-only).
    pub rx_buffers: (u64, u64),
    /// The device's MMIO BAR window (read-write).
    pub mmio: (u64, u64),
}

/// What happens when no region covers an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DefaultAction {
    /// Allow unmatched accesses (regions then act as deny/downgrade rules).
    Allow,
    /// Deny unmatched accesses (regions act as allow rules) — the safe
    /// default for firewalling a module.
    Deny,
}

impl DefaultAction {
    fn to_u8(self) -> u8 {
        match self {
            DefaultAction::Allow => 0,
            DefaultAction::Deny => 1,
        }
    }

    fn from_u8(v: u8) -> DefaultAction {
        match v {
            0 => DefaultAction::Allow,
            _ => DefaultAction::Deny,
        }
    }
}

/// What the policy module does when a check fails.
///
/// The paper (§3.1): forcibly unloading a running module is dangerous
/// (locks held, state shared), so CARAT KOP "log[s] that they occur and
/// cause[s] a kernel panic" — and argues a hard stop is the *right* call in
/// production HPC. The other actions exist for development and for the
/// survive-the-violation mode: [`ViolationAction::Quarantine`] hands the
/// violation to the kernel, which oopses and unloads *only* the offending
/// module (symbol unlink, policy revoke, budget accounting) while the rest
/// of the system keeps running — the posture MOAT and Rex argue for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationAction {
    /// Log and panic the (simulated) kernel — the paper's behaviour.
    Panic,
    /// Log and squash the access (like a page fault that skips the op).
    LogAndDeny,
    /// Log and let the access proceed (audit mode).
    LogAndAllow,
    /// Log, squash, and report the violation for module quarantine: the
    /// kernel charges it against the module's violation budget and
    /// force-unloads the module when the budget is exhausted.
    Quarantine,
}

impl ViolationAction {
    fn to_u8(self) -> u8 {
        match self {
            ViolationAction::Panic => 0,
            ViolationAction::LogAndDeny => 1,
            ViolationAction::LogAndAllow => 2,
            ViolationAction::Quarantine => 3,
        }
    }

    fn from_u8(v: u8) -> ViolationAction {
        match v {
            1 => ViolationAction::LogAndDeny,
            2 => ViolationAction::LogAndAllow,
            3 => ViolationAction::Quarantine,
            _ => ViolationAction::Panic,
        }
    }
}

/// Which lookup path [`PolicyModule::check`] takes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckPath {
    /// The pre-SMP path: every check locks the authoritative store. Kept
    /// as the measured baseline, and because self-adjusting stores
    /// (splay, cached) only reorganize on this path.
    MutexStore,
    /// The lock-free path: checks read the published snapshot (default).
    Snapshot,
}

/// Outcome of an enforced guard check.
#[derive(Debug)]
pub enum GuardOutcome {
    /// The access may proceed.
    Allowed,
    /// The access must be squashed; execution may continue.
    Denied(Violation),
    /// The access must be squashed **and** the violation charged against
    /// the offending module's quarantine budget by the caller.
    Quarantined(Violation),
    /// The kernel has panicked (the paper's configuration).
    Panicked(KernelError),
}

impl GuardOutcome {
    /// Whether the access may proceed.
    pub fn is_allowed(&self) -> bool {
        matches!(self, GuardOutcome::Allowed)
    }
}

/// A classified check: the result plus, when a region grant permitted it
/// via the snapshot path, the granting region and the generation it was
/// observed under — what the guard TLB memoizes.
pub struct ClassifiedCheck {
    /// The check result, identical to [`PolicyModule::check`]'s.
    pub result: Result<(), Violation>,
    /// `Some((region, generation))` only for region-grant permits;
    /// default-action allows and all denials yield `None` (they must not
    /// be cached — see [`crate::tlb`]).
    pub grant: Option<(Region, u64)>,
}

/// Maximum violation log entries retained.
const LOG_CAP: usize = 1024;

/// The intrinsic table published for lock-free checks: sorted grant ids
/// plus the default-allow flag.
struct IntrinsicSnapshot {
    allowed: Vec<u32>,
    default_allow: bool,
}

/// The CARAT KOP policy module.
///
/// ```
/// use kop_core::{AccessFlags, Protection, Region, Size, VAddr};
/// use kop_policy::PolicyModule;
///
/// let pm = PolicyModule::new(); // default deny
/// pm.add_region(Region::new(VAddr(0x1000), Size(0x1000), Protection::READ_WRITE).unwrap())
///     .unwrap();
/// assert!(pm.check(VAddr(0x1800), Size(8), AccessFlags::RW).is_ok());
/// assert!(pm.check(VAddr(0x9000), Size(8), AccessFlags::READ).is_err());
/// ```
pub struct PolicyModule {
    /// Authoritative store — mutations only (plus the MutexStore check
    /// path). Every mutation republishes `snapshot` before releasing the
    /// lock, so generation order matches mutation order.
    store: Mutex<Box<dyn RegionStore + Send + Sync>>,
    /// The published lock-free read path.
    snapshot: SnapshotStore,
    check_path: AtomicU8,
    /// Authoritative intrinsic table (mutations only).
    intrinsics: Mutex<IntrinsicPolicy>,
    /// Published intrinsic table for lock-free checks.
    intrinsic_snap: ArcSwap<IntrinsicSnapshot>,
    default_action: AtomicU8,
    violation_action: AtomicU8,
    stats: GuardStats,
    log: ViolationLog,
    /// Namespace id assigned by the [`crate::namespace::NamespaceStore`]
    /// this policy is registered in (0 = unbound). Cache tiers key their
    /// entries by `(namespace, generation)` so a policy swapped out of a
    /// namespace can never satisfy a stale cached grant.
    ns: AtomicU64,
    /// The fleet-wide revocation epoch this policy last observed. Bumped
    /// by [`Self::bump_revocation`] (fanned out by
    /// `NamespaceStore::revoke_all`); cache tiers tag entries with it so
    /// one revocation invalidates every cached grant without touching
    /// any per-namespace generation. Starts at 1 so 0 can mean "no
    /// cached entry".
    revocation: AtomicU64,
}

impl PolicyModule {
    /// A policy module backed by the paper's 64-entry table, default deny,
    /// panic on violation.
    pub fn new() -> PolicyModule {
        Self::with_kind(StoreKind::Table)
    }

    /// A policy module backed by a chosen structure.
    pub fn with_kind(kind: StoreKind) -> PolicyModule {
        PolicyModule {
            store: Mutex::new(make_store(kind)),
            snapshot: SnapshotStore::new(kind),
            check_path: AtomicU8::new(1), // Snapshot
            intrinsics: Mutex::new(IntrinsicPolicy::new()),
            intrinsic_snap: ArcSwap::from_pointee(IntrinsicSnapshot {
                allowed: Vec::new(),
                default_allow: false,
            }),
            default_action: AtomicU8::new(DefaultAction::Deny.to_u8()),
            violation_action: AtomicU8::new(ViolationAction::Panic.to_u8()),
            stats: GuardStats::new(),
            log: ViolationLog::new(LOG_CAP),
            ns: AtomicU64::new(0),
            revocation: AtomicU64::new(1),
        }
    }

    /// The paper's two-region evaluation policy (§4.2, footnote 5): *"For
    /// two regions specifically, the policy rule is that kernel addresses
    /// (the 'high half') are allowed, but user addresses (the 'low half')
    /// are disallowed."*
    pub fn two_region_paper_policy() -> PolicyModule {
        use kop_core::layout::{KERNEL_HALF_BASE, USER_HALF_END};
        use kop_core::Protection;
        let pm = PolicyModule::new();
        // Rule 1: the whole kernel half, read-write.
        pm.add_region(
            Region::new(
                VAddr(KERNEL_HALF_BASE),
                Size(u64::MAX - KERNEL_HALF_BASE + 1),
                Protection::READ_WRITE,
            )
            .expect("kernel half region"),
        )
        .expect("insert kernel half");
        // Rule 2: the whole user half, no permissions (explicit deny).
        pm.add_region(
            Region::new(VAddr(0), Size(USER_HALF_END), Protection::NONE).expect("user half"),
        )
        .expect("insert user half");
        pm
    }

    /// A least-privilege datapath policy built from a NIC driver's
    /// memory geometry, with the receive DMA buffers as a first-class
    /// region of their own.
    ///
    /// The paper's two-region policy admits the whole kernel half; a
    /// real deployment wants the module confined to exactly the memory
    /// its datapath touches. This constructor encodes that: descriptor
    /// rings, stats scratch, and transmit buffers are read-write (the
    /// CPU builds frames and recycles descriptors there), while the
    /// **receive buffers are CPU read-only** — the device's DMA engine
    /// fills them from the physical side, below the guards (§4 of the
    /// paper: DMA is unguarded), and the module is only ever allowed to
    /// *read* received data, never scribble into DMA-owned memory. The
    /// MMIO window is read-write. Everything else is default-deny.
    pub fn datapath_policy(geo: &DatapathGeometry) -> PolicyModule {
        use kop_core::Protection;
        let pm = PolicyModule::new();
        let add = |base: u64, len: u64, prot, what: &str| {
            if len == 0 {
                return;
            }
            pm.add_region(
                Region::new(VAddr(base), Size(len), prot)
                    .unwrap_or_else(|| panic!("bad {what} region")),
            )
            .unwrap_or_else(|_| panic!("insert {what} region"));
        };
        for &(base, len) in &geo.control {
            add(base, len, Protection::READ_WRITE, "control");
        }
        add(
            geo.tx_buffers.0,
            geo.tx_buffers.1,
            Protection::READ_WRITE,
            "tx buffer",
        );
        add(
            geo.rx_buffers.0,
            geo.rx_buffers.1,
            Protection::READ_ONLY,
            "rx buffer",
        );
        add(geo.mmio.0, geo.mmio.1, Protection::READ_WRITE, "mmio");
        pm
    }

    /// Backing structure kind.
    pub fn store_kind(&self) -> StoreKind {
        self.snapshot.load().kind()
    }

    /// Which lookup path [`Self::check`] takes.
    pub fn check_path(&self) -> CheckPath {
        match self.check_path.load(Ordering::Relaxed) {
            0 => CheckPath::MutexStore,
            _ => CheckPath::Snapshot,
        }
    }

    /// Select the lookup path (the SMP figure measures both).
    pub fn set_check_path(&self, path: CheckPath) {
        let v = match path {
            CheckPath::MutexStore => 0,
            CheckPath::Snapshot => 1,
        };
        self.check_path.store(v, Ordering::Relaxed);
    }

    /// Republish the snapshot from the locked authoritative store.
    fn republish(&self, store: &dyn RegionStore) {
        self.snapshot.publish(store.kind(), store.snapshot());
    }

    /// Add a firewall rule.
    pub fn add_region(&self, region: Region) -> Result<(), PolicyError> {
        let mut store = self.store.lock();
        store.insert(region)?;
        self.republish(&**store);
        Ok(())
    }

    /// Remove the rule with this base address.
    pub fn remove_region(&self, base: VAddr) -> Result<Region, PolicyError> {
        let mut store = self.store.lock();
        let removed = store.remove(base)?;
        self.republish(&**store);
        Ok(removed)
    }

    /// Drop all rules.
    pub fn clear_regions(&self) {
        let mut store = self.store.lock();
        store.clear();
        self.republish(&**store);
    }

    /// Atomically replace the whole rule set in one publish: readers see
    /// either the old set or the new set, never a half-built mixture
    /// (the "firewall ruleset reload" the torn-table test leans on).
    pub fn replace_regions(
        &self,
        regions: impl IntoIterator<Item = Region>,
    ) -> Result<(), PolicyError> {
        let mut store = self.store.lock();
        let mut fresh = make_store(store.kind());
        for r in regions {
            fresh.insert(r)?;
        }
        *store = fresh;
        self.republish(&**store);
        Ok(())
    }

    /// Force a revocation epoch: republish the (unchanged) rule set so the
    /// snapshot generation advances. Every guard TLB entry and inline
    /// cache tagged with an older generation becomes stale in this single
    /// publish — the live-upgrade swap uses this so no check can admit
    /// against a grant observed before the swap. Returns the new
    /// generation.
    pub fn bump_epoch(&self) -> u64 {
        let store = self.store.lock();
        self.republish(&**store);
        self.snapshot.generation()
    }

    /// The namespace id this policy is bound to (0 = unbound). One
    /// `SeqCst` load — part of every cache tier's validity tag.
    #[inline]
    pub fn namespace(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }

    /// Bind this policy to a namespace id. Called exactly once by the
    /// namespace store at registration; a fresh id retires any cache
    /// entry tagged with the previous binding.
    pub fn set_namespace(&self, ns: u64) {
        self.ns.store(ns, Ordering::SeqCst);
    }

    /// The revocation epoch this policy currently observes. One `SeqCst`
    /// load — the global half of every cache tier's validity tag (the
    /// per-namespace generation is the local half).
    #[inline]
    pub fn revocation_epoch(&self) -> u64 {
        self.revocation.load(Ordering::SeqCst)
    }

    /// Advance the revocation epoch: every guard TLB entry, hot slot,
    /// and promoted inline cache tagged with the old epoch goes stale in
    /// one atomic store, without republishing the (unchanged) rule set.
    /// Returns the new epoch. Fleet-wide revocation
    /// (`NamespaceStore::revoke_all`) fans out through here — the cold
    /// path pays O(policies), the hot path still pays one load.
    pub fn bump_revocation(&self) -> u64 {
        self.revocation.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Number of rules.
    pub fn region_count(&self) -> usize {
        self.snapshot.load().len()
    }

    /// Snapshot of all rules.
    pub fn regions(&self) -> Vec<Region> {
        self.snapshot.load().regions().to_vec()
    }

    /// The current published policy snapshot (lock-free).
    pub fn policy_snapshot(&self) -> Arc<PolicySnapshot> {
        self.snapshot.load_full()
    }

    /// The store generation: bumped by every table write. The guard
    /// TLB's validity tag.
    #[inline]
    pub fn store_generation(&self) -> u64 {
        self.snapshot.generation()
    }

    /// Total snapshot publishes so far.
    pub fn snapshot_publishes(&self) -> u64 {
        self.snapshot.publish_counter().get()
    }

    /// The regions the table held at `generation`, if that generation is
    /// still inside the bounded snapshot history
    /// ([`crate::snapshot::SNAPSHOT_HISTORY_CAP`] publishes). This is the
    /// grant oracle the translation validator uses to recompute inlined
    /// guard bounds against the generation a promoted trace cites.
    pub fn regions_at(&self, generation: u64) -> Option<Vec<Region>> {
        self.snapshot.regions_at(generation)
    }

    /// Register a callback fired after every snapshot publish with the
    /// new generation. Callbacks run on the publishing thread while
    /// publishes are still serialized, so they must **not** mutate this
    /// policy module — flip flags and bump atomics only. The promoted
    /// trace tier subscribes here to invalidate its inline caches
    /// promptly (soundness never depends on the callback: every inline
    /// admit re-checks its generation tag).
    pub fn subscribe_generation(&self, sub: crate::snapshot::GenerationSubscriber) {
        self.snapshot.subscribe(sub);
    }

    /// Account a guard admitted by a specialized fast path (inlined
    /// bounds baked from a region grant of the *current* generation)
    /// without re-running the lookup. Keeps `stats.checks` equal to the
    /// number of guard invocations even when a hot tier answers most of
    /// them, so per-site trace reconciliation stays exact.
    #[inline]
    pub fn record_fast_permit(&self) {
        self.stats.record_permitted();
    }

    /// Batched form of [`Self::record_fast_permit`]: account `n` fast
    /// admits with one pair of counter updates. Callers that defer their
    /// accounting (per-thread hot tiers) flush through here before any
    /// reader can observe the stats.
    #[inline]
    pub fn record_fast_permits(&self, n: u64) {
        if n > 0 {
            self.stats.record_permitted_n(n);
        }
    }

    fn publish_intrinsics(&self, table: &IntrinsicPolicy) {
        self.intrinsic_snap.store(Arc::new(IntrinsicSnapshot {
            allowed: table.granted(), // sorted (BTreeSet order)
            default_allow: table.default_allow,
        }));
    }

    /// Grant a privileged intrinsic (§5 extension).
    pub fn allow_intrinsic(&self, id: u32) {
        let mut table = self.intrinsics.lock();
        table.allow(id);
        self.publish_intrinsics(&table);
    }

    /// Revoke a privileged intrinsic; returns whether it was granted.
    pub fn revoke_intrinsic(&self, id: u32) -> bool {
        let mut table = self.intrinsics.lock();
        let was = table.revoke(id);
        self.publish_intrinsics(&table);
        was
    }

    /// The granted intrinsic ids.
    pub fn granted_intrinsics(&self) -> Vec<u32> {
        self.intrinsic_snap.load().allowed.clone()
    }

    /// The pure intrinsic check: classify, update stats, log violations.
    /// Lock-free: consults the published intrinsic table.
    pub fn check_intrinsic(&self, id: u32) -> Result<(), Violation> {
        let table = self.intrinsic_snap.load();
        if table.default_allow || table.allowed.binary_search(&id).is_ok() {
            self.stats.record_permitted();
            Ok(())
        } else {
            // Same violation shape as IntrinsicPolicy::check: the
            // "address" carries the intrinsic id, size 0, EXEC intent.
            let v = Violation::new(
                VAddr(id as u64),
                Size(0),
                AccessFlags::EXEC,
                ViolationKind::ForbiddenIntrinsic,
            );
            self.stats.record_insufficient();
            self.log.push(v);
            Err(v)
        }
    }

    /// Check an intrinsic and apply the configured violation action.
    pub fn enforce_intrinsic(&self, id: u32) -> GuardOutcome {
        match self.check_intrinsic(id) {
            Ok(()) => GuardOutcome::Allowed,
            Err(v) => match self.violation_action() {
                ViolationAction::Panic => GuardOutcome::Panicked(v.into()),
                ViolationAction::LogAndDeny => GuardOutcome::Denied(v),
                ViolationAction::LogAndAllow => GuardOutcome::Allowed,
                ViolationAction::Quarantine => GuardOutcome::Quarantined(v),
            },
        }
    }

    /// Set the default action.
    pub fn set_default_action(&self, action: DefaultAction) {
        self.default_action.store(action.to_u8(), Ordering::SeqCst);
    }

    /// Current default action (one atomic load).
    pub fn default_action(&self) -> DefaultAction {
        DefaultAction::from_u8(self.default_action.load(Ordering::SeqCst))
    }

    /// Set the violation action.
    pub fn set_violation_action(&self, action: ViolationAction) {
        self.violation_action
            .store(action.to_u8(), Ordering::SeqCst);
    }

    /// Current violation action (one atomic load).
    pub fn violation_action(&self) -> ViolationAction {
        ViolationAction::from_u8(self.violation_action.load(Ordering::SeqCst))
    }

    /// Guard statistics snapshot.
    pub fn stats(&self) -> GuardStatsSnapshot {
        self.stats.snapshot()
    }

    /// The live counter cells (e.g. to
    /// [`GuardStats::register_into`] a tracer's counter registry).
    pub fn guard_stats(&self) -> &GuardStats {
        &self.stats
    }

    /// Register every policy counter — guard stats, snapshot publishes,
    /// dropped log entries — into a counter registry (the tracer's, so
    /// `/dev/trace counters` shows them).
    pub fn register_counters(&self, registry: &CounterRegistry) {
        self.stats.register_into(registry);
        registry.register(self.snapshot.publish_counter());
        registry.register(self.log.dropped_counter());
    }

    /// Reset statistics.
    pub fn reset_stats(&self) {
        self.stats.reset()
    }

    /// The violation log (most recent last), rendered. Formatting costs
    /// are paid here — at read time — not on the denial path.
    pub fn violation_log(&self) -> Vec<String> {
        self.log.rendered()
    }

    /// The raw retained violations (most recent last).
    pub fn violations(&self) -> Vec<Violation> {
        self.log.entries()
    }

    /// How many violation log entries were overwritten by the bounded
    /// ring.
    pub fn violations_dropped(&self) -> u64 {
        self.log.dropped()
    }

    /// Whether this access is the vacuous empty interval a coalesced
    /// range guard produces on a zero-trip loop (`n == 0` ⇒ byte count
    /// 0): nothing will be touched, so nothing needs permission. Intent
    /// flags must still be present — a size-0 *and* flag-less check
    /// remains malformed.
    #[inline]
    fn vacuous(&self, size: Size, flags: AccessFlags) -> bool {
        size.raw() == 0 && !flags.is_empty()
    }

    /// Reject malformed accesses before any lookup. Returns the violation
    /// to report, if any.
    #[inline]
    fn precheck(&self, addr: VAddr, size: Size, flags: AccessFlags) -> Option<Violation> {
        if size.raw() == 0 || flags.is_empty() {
            return Some(Violation::new(
                addr,
                size,
                flags,
                ViolationKind::MalformedAccess,
            ));
        }
        if addr.checked_add(size.raw() - 1).is_none() {
            return Some(Violation::new(
                addr,
                size,
                flags,
                ViolationKind::AddressOverflow,
            ));
        }
        None
    }

    /// Record a lookup outcome: stats + log, returning the check result.
    #[inline]
    fn settle(
        &self,
        addr: VAddr,
        size: Size,
        flags: AccessFlags,
        lookup: Lookup,
    ) -> Result<(), Violation> {
        match lookup {
            Lookup::Permitted(_) => {
                self.stats.record_permitted();
                Ok(())
            }
            Lookup::Forbidden(_) => {
                let v = Violation::new(addr, size, flags, ViolationKind::InsufficientPermissions);
                self.stats.record_insufficient();
                self.log.push(v);
                Err(v)
            }
            Lookup::NoMatch => match self.default_action() {
                DefaultAction::Allow => {
                    self.stats.record_permitted();
                    Ok(())
                }
                DefaultAction::Deny => {
                    let v = Violation::new(addr, size, flags, ViolationKind::NoMatchingRegion);
                    self.stats.record_no_match();
                    self.log.push(v);
                    Err(v)
                }
            },
        }
    }

    /// The pure check: classify the access, update stats, log violations.
    /// Does **not** apply the violation action — see [`Self::enforce`].
    ///
    /// On the default [`CheckPath::Snapshot`] this takes **no lock**:
    /// one pinned snapshot load, a frozen-table lookup, and relaxed
    /// counter updates (the denial paths additionally take the cold log
    /// mutex).
    pub fn check(&self, addr: VAddr, size: Size, flags: AccessFlags) -> Result<(), Violation> {
        if self.vacuous(size, flags) {
            self.stats.record_permitted();
            return Ok(());
        }
        if let Some(v) = self.precheck(addr, size, flags) {
            self.stats.record_malformed();
            self.log.push(v);
            return Err(v);
        }
        let lookup = match self.check_path() {
            CheckPath::Snapshot => self.snapshot.load().lookup(addr, size, flags),
            CheckPath::MutexStore => self.store.lock().lookup(addr, size, flags),
        };
        self.settle(addr, size, flags, lookup)
    }

    /// The check the guard TLB uses: always the lock-free snapshot path,
    /// and reports which region granted a permit (plus the generation it
    /// was observed under) so the caller may memoize it.
    pub fn check_classified(&self, addr: VAddr, size: Size, flags: AccessFlags) -> ClassifiedCheck {
        if self.vacuous(size, flags) {
            self.stats.record_permitted();
            return ClassifiedCheck {
                result: Ok(()),
                grant: None, // empty interval: nothing to memoize
            };
        }
        if let Some(v) = self.precheck(addr, size, flags) {
            self.stats.record_malformed();
            self.log.push(v);
            return ClassifiedCheck {
                result: Err(v),
                grant: None,
            };
        }
        let snap = self.snapshot.load();
        let lookup = snap.lookup(addr, size, flags);
        let grant = match lookup {
            Lookup::Permitted(r) => Some((r, snap.generation())),
            _ => None,
        };
        ClassifiedCheck {
            result: self.settle(addr, size, flags, lookup),
            grant,
        }
    }

    /// Check and apply the configured violation action.
    pub fn enforce(&self, addr: VAddr, size: Size, flags: AccessFlags) -> GuardOutcome {
        match self.check(addr, size, flags) {
            Ok(()) => GuardOutcome::Allowed,
            Err(v) => match self.violation_action() {
                ViolationAction::Panic => GuardOutcome::Panicked(v.into()),
                ViolationAction::LogAndDeny => GuardOutcome::Denied(v),
                ViolationAction::LogAndAllow => GuardOutcome::Allowed,
                ViolationAction::Quarantine => GuardOutcome::Quarantined(v),
            },
        }
    }
}

impl Default for PolicyModule {
    fn default() -> Self {
        Self::new()
    }
}

impl PolicyCheck for PolicyModule {
    #[inline]
    fn carat_guard(&self, addr: VAddr, size: Size, flags: AccessFlags) -> Result<(), Violation> {
        self.check(addr, size, flags)
    }
}

impl PolicyCheck for &PolicyModule {
    #[inline]
    fn carat_guard(&self, addr: VAddr, size: Size, flags: AccessFlags) -> Result<(), Violation> {
        (*self).check(addr, size, flags)
    }
}

impl PolicyCheck for std::sync::Arc<PolicyModule> {
    #[inline]
    fn carat_guard(&self, addr: VAddr, size: Size, flags: AccessFlags) -> Result<(), Violation> {
        self.as_ref().check(addr, size, flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_core::layout::{DIRECT_MAP_BASE, KERNEL_HALF_BASE};
    use kop_core::Protection;

    #[test]
    fn datapath_policy_makes_rx_buffers_read_only() {
        let geo = DatapathGeometry {
            control: vec![(0x1000, 0x1000), (0x3000, 0x800)],
            tx_buffers: (0x10_000, 0x80_000),
            rx_buffers: (0x90_000, 0x40_000),
            mmio: (0xf000_0000, 0x2_0000),
        };
        let pm = PolicyModule::datapath_policy(&geo);
        assert_eq!(pm.region_count(), 5);
        // Control and TX windows are read-write.
        assert!(pm.check(VAddr(0x1008), Size(8), AccessFlags::RW).is_ok());
        assert!(pm.check(VAddr(0x10_100), Size(8), AccessFlags::RW).is_ok());
        // RX buffers: reads fine, writes are a violation — DMA fills
        // them from below the guards, the CPU must not.
        assert!(pm
            .check(VAddr(0x90_010), Size(8), AccessFlags::READ)
            .is_ok());
        let v = pm
            .check(VAddr(0x90_010), Size(8), AccessFlags::WRITE)
            .unwrap_err();
        assert_eq!(v.kind, ViolationKind::InsufficientPermissions);
        // MMIO read-write; everything uncovered is default-deny.
        assert!(pm
            .check(VAddr(0xf000_0100), Size(4), AccessFlags::RW)
            .is_ok());
        assert!(pm.check(VAddr(0x8000), Size(8), AccessFlags::READ).is_err());
    }

    #[test]
    fn two_region_paper_policy_semantics() {
        let pm = PolicyModule::two_region_paper_policy();
        assert_eq!(pm.region_count(), 2);
        // Kernel-half access allowed.
        assert!(pm
            .check(VAddr(DIRECT_MAP_BASE + 0x1000), Size(8), AccessFlags::RW)
            .is_ok());
        // User-half access denied with InsufficientPermissions (covered by
        // the explicit NONE rule).
        let v = pm
            .check(VAddr(0x40_0000), Size(8), AccessFlags::READ)
            .unwrap_err();
        assert_eq!(v.kind, ViolationKind::InsufficientPermissions);
        // Exec in the kernel half is not granted by the RW rule.
        let v = pm
            .check(VAddr(KERNEL_HALF_BASE), Size(1), AccessFlags::EXEC)
            .unwrap_err();
        assert_eq!(v.kind, ViolationKind::InsufficientPermissions);
    }

    #[test]
    fn default_allow_vs_deny() {
        let pm = PolicyModule::new();
        let addr = VAddr(0x1234_5678);
        // Default deny, empty policy: everything denied.
        let v = pm.check(addr, Size(4), AccessFlags::READ).unwrap_err();
        assert_eq!(v.kind, ViolationKind::NoMatchingRegion);
        // Flip to allow: everything permitted.
        pm.set_default_action(DefaultAction::Allow);
        assert!(pm.check(addr, Size(4), AccessFlags::READ).is_ok());
    }

    #[test]
    fn malformed_accesses_rejected() {
        let pm = PolicyModule::new();
        pm.set_default_action(DefaultAction::Allow);
        let v = pm
            .check(VAddr(0x1000), Size(8), AccessFlags::NONE)
            .unwrap_err();
        assert_eq!(v.kind, ViolationKind::MalformedAccess);
        let v = pm.check(VAddr(0), Size(0), AccessFlags::NONE).unwrap_err();
        assert_eq!(v.kind, ViolationKind::MalformedAccess);
        let v = pm
            .check(VAddr(u64::MAX), Size(2), AccessFlags::READ)
            .unwrap_err();
        assert_eq!(v.kind, ViolationKind::AddressOverflow);
    }

    #[test]
    fn zero_size_guard_with_intent_is_vacuously_allowed() {
        // A coalesced range guard over a zero-trip loop checks
        // `[base, base)` — the empty interval. Even under default-deny
        // with no regions at all, nothing will be accessed, so the check
        // passes; the flag-less variant above stays malformed.
        let pm = PolicyModule::new(); // default deny, empty policy
        assert!(pm.check(VAddr(0x1000), Size(0), AccessFlags::READ).is_ok());
        assert!(pm.check(VAddr(0x1000), Size(0), AccessFlags::RW).is_ok());
        let c = pm.check_classified(VAddr(0x1000), Size(0), AccessFlags::READ);
        assert!(c.result.is_ok());
        assert!(c.grant.is_none(), "vacuous permits are not memoizable");
        assert_eq!(pm.stats().permitted, 3);
    }

    #[test]
    fn enforce_applies_violation_action() {
        let pm = PolicyModule::new(); // default deny + panic
        let addr = VAddr(0x1000);
        match pm.enforce(addr, Size(8), AccessFlags::READ) {
            GuardOutcome::Panicked(KernelError::Panic { violation, .. }) => {
                assert!(violation.is_some());
            }
            other => panic!("expected panic, got {other:?}"),
        }
        pm.set_violation_action(ViolationAction::LogAndDeny);
        assert!(matches!(
            pm.enforce(addr, Size(8), AccessFlags::READ),
            GuardOutcome::Denied(_)
        ));
        pm.set_violation_action(ViolationAction::LogAndAllow);
        assert!(pm.enforce(addr, Size(8), AccessFlags::READ).is_allowed());
        pm.set_violation_action(ViolationAction::Quarantine);
        match pm.enforce(addr, Size(8), AccessFlags::READ) {
            GuardOutcome::Quarantined(v) => {
                assert_eq!(v.kind, ViolationKind::NoMatchingRegion)
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
    }

    #[test]
    fn stats_and_log_track_checks() {
        let pm = PolicyModule::new();
        pm.add_region(Region::new(VAddr(0x1000), Size(0x1000), Protection::READ_WRITE).unwrap())
            .unwrap();
        assert!(pm.check(VAddr(0x1800), Size(8), AccessFlags::RW).is_ok());
        let _ = pm.check(VAddr(0x9000), Size(8), AccessFlags::RW);
        let s = pm.stats();
        assert_eq!(s.checks, 2);
        assert_eq!(s.permitted, 1);
        assert_eq!(s.denied_no_match, 1);
        let log = pm.violation_log();
        assert_eq!(log.len(), 1);
        assert!(log[0].contains("no matching policy region"));
        pm.reset_stats();
        assert_eq!(pm.stats().checks, 0);
    }

    #[test]
    fn policy_mutable_at_runtime_without_reloading() {
        // §3.2: swapping the policy does not require recompiling the
        // guarded module — the module just calls carat_guard.
        let pm = PolicyModule::new();
        let addr = VAddr(0xffff_8880_0000_1000);
        assert!(pm.check(addr, Size(8), AccessFlags::READ).is_err());
        pm.add_region(
            Region::new(
                VAddr(0xffff_8880_0000_0000),
                Size(1 << 30),
                Protection::READ_WRITE,
            )
            .unwrap(),
        )
        .unwrap();
        assert!(pm.check(addr, Size(8), AccessFlags::READ).is_ok());
        pm.remove_region(VAddr(0xffff_8880_0000_0000)).unwrap();
        assert!(pm.check(addr, Size(8), AccessFlags::READ).is_err());
    }

    #[test]
    fn works_with_every_store_kind() {
        for kind in StoreKind::ALL {
            let pm = PolicyModule::with_kind(kind);
            assert_eq!(pm.store_kind(), kind);
            pm.add_region(
                Region::new(VAddr(0x10_0000), Size(0x1000), Protection::READ_WRITE).unwrap(),
            )
            .unwrap();
            assert!(
                pm.check(VAddr(0x10_0800), Size(8), AccessFlags::RW).is_ok(),
                "{kind} should permit"
            );
            assert!(
                pm.check(VAddr(0x20_0000), Size(8), AccessFlags::RW)
                    .is_err(),
                "{kind} should deny"
            );
        }
    }

    #[test]
    fn both_check_paths_agree_for_every_store_kind() {
        for kind in StoreKind::ALL {
            let pm = PolicyModule::with_kind(kind);
            pm.add_region(
                Region::new(VAddr(0x10_0000), Size(0x1000), Protection::READ_ONLY).unwrap(),
            )
            .unwrap();
            for (addr, size, flags) in [
                (0x10_0800u64, 8u64, AccessFlags::READ),
                (0x10_0800, 8, AccessFlags::WRITE),
                (0x20_0000, 8, AccessFlags::READ),
                (0x10_0ff8, 16, AccessFlags::READ),
            ] {
                pm.set_check_path(CheckPath::Snapshot);
                let snap = pm.check(VAddr(addr), Size(size), flags).map_err(|v| v.kind);
                pm.set_check_path(CheckPath::MutexStore);
                let mutex = pm.check(VAddr(addr), Size(size), flags).map_err(|v| v.kind);
                assert_eq!(snap, mutex, "{kind} diverged at {addr:#x}");
            }
        }
    }

    #[test]
    fn log_capped() {
        let pm = PolicyModule::new();
        for i in 0..(LOG_CAP + 10) {
            let _ = pm.check(VAddr(i as u64 * 8), Size(8), AccessFlags::READ);
        }
        assert_eq!(pm.violation_log().len(), LOG_CAP);
        assert_eq!(pm.violations_dropped(), 10);
    }

    #[test]
    fn mutations_bump_generation_monotonically() {
        let pm = PolicyModule::new();
        let g0 = pm.store_generation();
        pm.add_region(Region::new(VAddr(0x1000), Size(0x1000), Protection::READ_WRITE).unwrap())
            .unwrap();
        let g1 = pm.store_generation();
        assert!(g1 > g0);
        pm.remove_region(VAddr(0x1000)).unwrap();
        let g2 = pm.store_generation();
        assert!(g2 > g1);
        pm.clear_regions();
        assert!(pm.store_generation() > g2);
        assert_eq!(pm.snapshot_publishes(), 3);
    }

    #[test]
    fn failed_mutations_do_not_publish() {
        let pm = PolicyModule::new();
        let before = pm.snapshot_publishes();
        assert!(pm.remove_region(VAddr(0xdead)).is_err());
        assert_eq!(pm.snapshot_publishes(), before);
    }

    #[test]
    fn replace_regions_is_one_publish() {
        let pm = PolicyModule::new();
        let before = pm.snapshot_publishes();
        pm.replace_regions([
            Region::new(VAddr(0x1000), Size(0x1000), Protection::READ_WRITE).unwrap(),
            Region::new(VAddr(0x3000), Size(0x1000), Protection::READ_ONLY).unwrap(),
        ])
        .unwrap();
        assert_eq!(pm.snapshot_publishes(), before + 1);
        assert_eq!(pm.region_count(), 2);
        assert!(pm.check(VAddr(0x1100), Size(8), AccessFlags::RW).is_ok());
    }

    #[test]
    fn check_classified_reports_grants_only_for_region_permits() {
        let pm = PolicyModule::new();
        pm.add_region(Region::new(VAddr(0x1000), Size(0x1000), Protection::READ_WRITE).unwrap())
            .unwrap();
        let c = pm.check_classified(VAddr(0x1100), Size(8), AccessFlags::RW);
        assert!(c.result.is_ok());
        let (region, gen) = c.grant.expect("region grant");
        assert_eq!(region.base, VAddr(0x1000));
        assert_eq!(gen, pm.store_generation());
        // Default-action allow: permitted but not memoizable.
        pm.set_default_action(DefaultAction::Allow);
        let c = pm.check_classified(VAddr(0x9000), Size(8), AccessFlags::RW);
        assert!(c.result.is_ok());
        assert!(c.grant.is_none());
        // Denial: no grant.
        pm.set_default_action(DefaultAction::Deny);
        let c = pm.check_classified(VAddr(0x9000), Size(8), AccessFlags::RW);
        assert!(c.result.is_err());
        assert!(c.grant.is_none());
    }
}
