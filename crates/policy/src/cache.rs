//! Last-hit cache over the region table — "a simple cache over the region
//! data structure (as done in CARAT CAKE)" (paper §4.2).
//!
//! The guard's common case is that consecutive accesses land in the same
//! policy region (the driver hammers its descriptor ring and MMIO block).
//! A one-entry cache in front of the table turns the O(n) scan into a
//! single compare on that path. The cache entry is invalidated on any
//! mutation.

use kop_core::{AccessFlags, Region, Size, VAddr};

use crate::store::{Lookup, PolicyError, RegionStore, StoreKind};
use crate::table::RegionTable;

/// Region table with a single-entry most-recently-hit cache.
#[derive(Clone, Debug, Default)]
pub struct CachedTable {
    table: RegionTable,
    /// The region that satisfied the previous lookup, if any.
    hot: Option<Region>,
    hits: u64,
    misses: u64,
}

impl CachedTable {
    /// An empty store.
    pub fn new() -> CachedTable {
        CachedTable::default()
    }

    /// Cache hits since creation.
    pub fn cache_hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (table walks) since creation.
    pub fn cache_misses(&self) -> u64 {
        self.misses
    }
}

impl RegionStore for CachedTable {
    fn kind(&self) -> StoreKind {
        StoreKind::Cached
    }

    fn insert(&mut self, region: Region) -> Result<(), PolicyError> {
        self.hot = None;
        self.table.insert(region)
    }

    fn remove(&mut self, base: VAddr) -> Result<Region, PolicyError> {
        self.hot = None;
        self.table.remove(base)
    }

    fn clear(&mut self) {
        self.hot = None;
        self.table.clear();
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn snapshot(&self) -> Vec<Region> {
        self.table.snapshot()
    }

    #[inline]
    fn lookup(&mut self, addr: VAddr, size: Size, flags: AccessFlags) -> Lookup {
        if let Some(hot) = self.hot {
            if hot.permits(addr, size, flags) {
                self.hits += 1;
                return Lookup::Permitted(hot);
            }
        }
        self.misses += 1;
        let result = self.table.lookup(addr, size, flags);
        if let Lookup::Permitted(r) = result {
            self.hot = Some(r);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_core::Protection;

    fn r(base: u64, len: u64) -> Region {
        Region::new(VAddr(base), Size(len), Protection::READ_WRITE).unwrap()
    }

    #[test]
    fn repeated_hits_use_cache() {
        let mut t = CachedTable::new();
        for i in 0..32u64 {
            t.insert(r(i * 0x1000, 0x800)).unwrap();
        }
        let addr = VAddr(31 * 0x1000 + 8);
        for _ in 0..100 {
            assert!(matches!(
                t.lookup(addr, Size(8), AccessFlags::RW),
                Lookup::Permitted(_)
            ));
        }
        assert_eq!(t.cache_misses(), 1);
        assert_eq!(t.cache_hits(), 99);
    }

    #[test]
    fn cache_invalidated_on_mutation() {
        let mut t = CachedTable::new();
        t.insert(r(0x1000, 0x800)).unwrap();
        assert!(matches!(
            t.lookup(VAddr(0x1000), Size(8), AccessFlags::READ),
            Lookup::Permitted(_)
        ));
        // Remove the region; the cached entry must not survive.
        t.remove(VAddr(0x1000)).unwrap();
        assert_eq!(
            t.lookup(VAddr(0x1000), Size(8), AccessFlags::READ),
            Lookup::NoMatch
        );
    }

    #[test]
    fn cache_not_used_across_regions() {
        let mut t = CachedTable::new();
        t.insert(r(0x1000, 0x800)).unwrap();
        t.insert(r(0x9000, 0x800)).unwrap();
        let _ = t.lookup(VAddr(0x1000), Size(8), AccessFlags::READ);
        let result = t.lookup(VAddr(0x9000), Size(8), AccessFlags::READ);
        assert!(matches!(result, Lookup::Permitted(reg) if reg.base == VAddr(0x9000)));
    }

    #[test]
    fn forbidden_not_cached() {
        let mut t = CachedTable::new();
        t.insert(Region::new(VAddr(0x1000), Size(0x800), Protection::READ_ONLY).unwrap())
            .unwrap();
        assert!(matches!(
            t.lookup(VAddr(0x1000), Size(8), AccessFlags::WRITE),
            Lookup::Forbidden(_)
        ));
        // A subsequent read must be permitted (the forbidden outcome must
        // not have poisoned the cache).
        assert!(matches!(
            t.lookup(VAddr(0x1000), Size(8), AccessFlags::READ),
            Lookup::Permitted(_)
        ));
        // And a repeat write is still forbidden, not served stale from
        // the (read) cache entry.
        assert!(matches!(
            t.lookup(VAddr(0x1000), Size(8), AccessFlags::WRITE),
            Lookup::Forbidden(_)
        ));
    }
}
