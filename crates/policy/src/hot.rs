//! The promoted hot tier for the native datapath: per-site guard bounds
//! baked as immediate compares.
//!
//! The guard TLB ([`crate::tlb`]) already memoizes `(region, generation)`
//! per site, but a hit still walks a direct-mapped array, re-derives the
//! slot, and revalidates against a cached [`Region`] struct. The profile
//! -directed tier goes one step further, the way an inline cache does: at
//! *promotion* time it looks up the region that grants a hot site's
//! observed address envelope and bakes the region's `[lo, hi)` bound and
//! permission set into a per-site slot as plain integers. The steady-state
//! admit is then a generation compare plus two immediate bound compares —
//! no region lookup of any kind.
//!
//! Soundness is carried entirely by the generation tag: a slot admits
//! only while its baked generation equals the policy's current store
//! generation ([`crate::snapshot::SnapshotStore`] publishes snapshot
//! first, generation second, both `SeqCst`). Any table write — grant,
//! revoke, `bump_epoch` — makes every baked slot stale in one atomic
//! store, and the next check at that site **deopts** to the general
//! policy path. A stale admit is impossible by construction; deopted
//! sites are lazily re-promoted via [`HotPolicy::repromote`] once the
//! caller decides they are hot again.
//!
//! Fast admits still account, but *batched*: the admit path bumps plain
//! per-thread cells and [`HotPolicy::flush`] (run by every accessor and
//! on drop) drains them into the same (striped) `policy.checks`/
//! `policy.permitted` cells the general path uses — so `checks == guard
//! calls` reconciliation holds for any observer, while the steady-state
//! admit pays zero striped-counter round-trips.
//!
//! Like the TLB, a [`HotPolicy`] is per-thread (slots are `Cell`s): give
//! each worker its own instance over the shared [`PolicyModule`].

use std::cell::Cell;
use std::sync::Arc;

use kop_core::{AccessFlags, Protection, Size, VAddr, Violation};
use kop_trace::{Counter, CounterRegistry};

use crate::module::PolicyModule;
use crate::store::Lookup;
use crate::tlb::SiteMap;
use crate::PolicyCheck;

/// What a promotion request asks for: bake the region granting this
/// site's observed address envelope `[lo, hi)` for accesses with `flags`
/// intent. Envelopes come from the tracer's per-site profiles
/// (`SiteProfile::envelope`).
#[derive(Clone, Copy, Debug)]
pub struct HotSite {
    /// The guard site id (the [`SiteMap`] must classify the site's
    /// addresses to this id).
    pub site: u32,
    /// Lowest address the site was observed to touch.
    pub lo: u64,
    /// One past the highest byte the site was observed to touch.
    pub hi: u64,
    /// The access intent the site issues.
    pub flags: AccessFlags,
}

/// One baked slot: the inlined bound. `gen == 0` means "not promoted"
/// (store generations start at 1).
#[derive(Clone, Copy)]
struct HotSlot {
    gen: u64,
    /// Revocation epoch the bound was baked under: a fleet-wide revoke
    /// stales every slot without any generation churn.
    epoch: u64,
    lo: u64,
    hi: u64,
    prot: Protection,
}

impl HotSlot {
    fn cold() -> HotSlot {
        HotSlot {
            gen: 0,
            epoch: 0,
            lo: 0,
            hi: 0,
            prot: Protection::NONE,
        }
    }
}

/// A [`PolicyCheck`] front whose promoted sites admit via inlined
/// immediate bounds; everything else (and every deopt) takes the general
/// policy path.
pub struct HotPolicy {
    policy: Arc<PolicyModule>,
    map: SiteMap,
    /// The promotion requests, kept so [`Self::repromote`] can re-bake
    /// after an invalidating publish.
    requests: Vec<HotSite>,
    /// Dense by site id; sites beyond the table always take the general
    /// path.
    slots: Vec<Cell<HotSlot>>,
    admits: Counter,
    deopts: Counter,
    promotions: Counter,
    /// Fast-path accounting is *batched*: the admit path bumps these
    /// plain per-thread cells (this struct is per-thread by design) and
    /// [`Self::flush`] drains them into the shared striped counters —
    /// one counted add instead of three TLS round-trips per guard.
    /// Every read path (accessors, drop) flushes first, so no reader
    /// can observe a deficit.
    pending_admits: Cell<u64>,
    pending_deopts: Cell<u64>,
}

impl HotPolicy {
    /// Promote `sites` against the current policy snapshot, with counters
    /// named `jit.inline_admits` / `jit.deopts` / `jit.promotions`.
    pub fn promote(policy: Arc<PolicyModule>, map: SiteMap, sites: Vec<HotSite>) -> HotPolicy {
        Self::promote_prefixed("jit", policy, map, sites)
    }

    /// Like [`Self::promote`] with counters under `"<prefix>."` — use
    /// distinct prefixes (e.g. `jit.q3`) when several per-thread
    /// instances register into one counter registry.
    pub fn promote_prefixed(
        prefix: &str,
        policy: Arc<PolicyModule>,
        map: SiteMap,
        sites: Vec<HotSite>,
    ) -> HotPolicy {
        let n_slots = sites.iter().map(|s| s.site as usize + 1).max().unwrap_or(0);
        let hp = HotPolicy {
            policy,
            map,
            requests: sites,
            slots: (0..n_slots).map(|_| Cell::new(HotSlot::cold())).collect(),
            admits: Counter::new(format!("{prefix}.inline_admits")),
            deopts: Counter::new(format!("{prefix}.deopts")),
            promotions: Counter::new(format!("{prefix}.promotions")),
            pending_admits: Cell::new(0),
            pending_deopts: Cell::new(0),
        };
        hp.repromote();
        hp
    }

    /// Re-bake every requested site against the *current* snapshot;
    /// returns how many sites came out promoted. A request whose envelope
    /// no single region grants any more is left cold (its checks simply
    /// take the general path — never a fabricated bound).
    pub fn repromote(&self) -> usize {
        // Epoch read BEFORE the snapshot: a revoke racing past the bake
        // leaves the slot already-stale, never falsely fresh.
        let epoch = self.policy.revocation_epoch();
        let snap = self.policy.policy_snapshot();
        let mut promoted = 0;
        for req in &self.requests {
            let slot = &self.slots[req.site as usize];
            let len = req.hi.saturating_sub(req.lo);
            if len == 0 {
                slot.set(HotSlot::cold());
                continue;
            }
            match snap.lookup(VAddr(req.lo), Size(len), req.flags) {
                Lookup::Permitted(r) => {
                    slot.set(HotSlot {
                        gen: snap.generation(),
                        epoch,
                        lo: r.base.raw(),
                        hi: r.base.raw().saturating_add(r.len.raw()),
                        prot: r.prot,
                    });
                    promoted += 1;
                    self.promotions.inc();
                }
                _ => slot.set(HotSlot::cold()),
            }
        }
        promoted
    }

    /// Sites currently holding a baked (possibly stale) bound.
    pub fn promoted_count(&self) -> usize {
        self.slots.iter().filter(|s| s.get().gen != 0).count()
    }

    /// Drain the batched fast-path accounting into the shared counters:
    /// the admit/deopt cells and the policy's `checks`/`permitted` cells
    /// (via [`PolicyModule::record_fast_permits`]), so reconciliation
    /// (`checks == guard calls`) holds for any observer from here on.
    pub fn flush(&self) {
        let a = self.pending_admits.replace(0);
        if a > 0 {
            self.admits.add(a);
            self.policy.record_fast_permits(a);
        }
        let d = self.pending_deopts.replace(0);
        if d > 0 {
            self.deopts.add(d);
        }
    }

    /// Fast-path admits so far.
    pub fn admits(&self) -> u64 {
        self.flush();
        self.admits.get()
    }

    /// Deopts to the general path so far (a promoted site whose slot
    /// could not vouch for the access: stale generation, out-of-bounds
    /// address, or insufficient permission).
    pub fn deopts(&self) -> u64 {
        self.flush();
        self.deopts.get()
    }

    /// Successful site promotions so far (counting re-promotions).
    pub fn promotions(&self) -> u64 {
        self.promotions.get()
    }

    /// Register the admit/deopt/promotion cells into a counter registry.
    pub fn register_into(&self, registry: &CounterRegistry) {
        registry.register(&self.admits);
        registry.register(&self.deopts);
        registry.register(&self.promotions);
    }

    /// The shared policy module.
    pub fn policy(&self) -> &Arc<PolicyModule> {
        &self.policy
    }
}

impl Drop for HotPolicy {
    fn drop(&mut self) {
        // Whatever the owning thread accumulated lands in the shared
        // cells before the instance disappears.
        self.flush();
    }
}

impl PolicyCheck for HotPolicy {
    #[inline]
    fn carat_guard(&self, addr: VAddr, size: Size, flags: AccessFlags) -> Result<(), Violation> {
        let site = self.map.classify(addr.raw());
        if let Some(slot) = self.slots.get(site as usize) {
            let e = slot.get();
            if e.gen != 0 {
                // The inlined compare sequence a re-lowered trace would
                // carry: generation tag, then immediate bounds, then the
                // baked permission mask. Malformed shapes (size 0, empty
                // intent, wrapping end) fall through to the general path,
                // which classifies them exactly as before.
                if let Some(end) = addr.raw().checked_add(size.raw()) {
                    if size.raw() > 0
                        && !flags.is_empty()
                        && e.gen == self.policy.store_generation()
                        && e.epoch == self.policy.revocation_epoch()
                        && e.lo <= addr.raw()
                        && end <= e.hi
                        && e.prot.allows(flags)
                    {
                        self.pending_admits.set(self.pending_admits.get() + 1);
                        return Ok(());
                    }
                }
                self.pending_deopts.set(self.pending_deopts.get() + 1);
            }
        }
        self.policy.check(addr, size, flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_core::Region;

    fn setup() -> (Arc<PolicyModule>, HotPolicy) {
        let pm = Arc::new(PolicyModule::new());
        pm.add_region(Region::new(VAddr(0x1000), Size(0x1000), Protection::READ_WRITE).unwrap())
            .unwrap();
        let map = SiteMap::new(9).range(0x1000, 0x2000, 0);
        let hp = HotPolicy::promote(
            Arc::clone(&pm),
            map,
            vec![HotSite {
                site: 0,
                lo: 0x1000,
                hi: 0x1100,
                flags: AccessFlags::RW,
            }],
        );
        (pm, hp)
    }

    #[test]
    fn promoted_site_admits_inline_and_still_accounts() {
        let (pm, hp) = setup();
        assert_eq!(hp.promoted_count(), 1);
        for _ in 0..100 {
            hp.carat_guard(VAddr(0x1800), Size(8), AccessFlags::RW)
                .unwrap();
        }
        assert_eq!(hp.admits(), 100);
        assert_eq!(hp.deopts(), 0);
        // Every fast admit was accounted: reconciliation stays exact.
        let s = pm.stats();
        assert_eq!(s.checks, 100);
        assert_eq!(s.permitted, 100);
    }

    #[test]
    fn generation_bump_deopts_then_repromote_recovers() {
        let (pm, hp) = setup();
        hp.carat_guard(VAddr(0x1800), Size(8), AccessFlags::RW)
            .unwrap();
        pm.bump_epoch();
        // Stale tag: the check still allows (general path) but deopts.
        hp.carat_guard(VAddr(0x1800), Size(8), AccessFlags::RW)
            .unwrap();
        assert_eq!(hp.admits(), 1);
        assert_eq!(hp.deopts(), 1);
        assert_eq!(hp.repromote(), 1);
        hp.carat_guard(VAddr(0x1800), Size(8), AccessFlags::RW)
            .unwrap();
        assert_eq!(hp.admits(), 2);
        assert_eq!(hp.promotions(), 2);
    }

    #[test]
    fn revocation_is_honoured_not_just_deopted() {
        let (pm, hp) = setup();
        hp.carat_guard(VAddr(0x1800), Size(8), AccessFlags::RW)
            .unwrap();
        pm.remove_region(VAddr(0x1000)).unwrap();
        // The baked bound still names the old region, but the generation
        // tag is stale: the access reaches the general path and denies.
        assert!(hp
            .carat_guard(VAddr(0x1800), Size(8), AccessFlags::RW)
            .is_err());
        assert_eq!(hp.deopts(), 1);
        // And re-promotion of a revoked envelope refuses to bake.
        assert_eq!(hp.repromote(), 0);
        assert_eq!(hp.promoted_count(), 0);
    }

    #[test]
    fn out_of_bounds_and_permission_misses_take_the_general_path() {
        let (pm, hp) = setup();
        // Outside the baked [lo, hi): general path, default deny.
        assert!(hp
            .carat_guard(VAddr(0x0900), Size(8), AccessFlags::RW)
            .is_err());
        // In bounds but asking for EXEC the baked prot lacks.
        assert!(hp
            .carat_guard(VAddr(0x1800), Size(8), AccessFlags::EXEC)
            .is_err());
        assert_eq!(hp.admits(), 0);
        // The EXEC probe was classified to the promoted site → deopt; the
        // 0x0900 probe classified to the fallback site (no slot).
        assert_eq!(hp.deopts(), 1);
        // Malformed shapes are never inline-admitted.
        assert!(hp
            .carat_guard(VAddr(0x1800), Size(8), AccessFlags::NONE)
            .is_err());
        assert!(hp
            .carat_guard(VAddr(u64::MAX), Size(2), AccessFlags::READ)
            .is_err());
        assert_eq!(hp.admits(), 0);
        let _ = pm;
    }

    #[test]
    fn revocation_epoch_deopts_baked_slots() {
        let (pm, hp) = setup();
        hp.carat_guard(VAddr(0x1800), Size(8), AccessFlags::RW)
            .unwrap();
        let gen = pm.store_generation();
        pm.bump_revocation();
        assert_eq!(pm.store_generation(), gen, "revoke is epoch-only");
        // Stale epoch: the access deopts to the general path (which still
        // allows — the ruleset is unchanged).
        hp.carat_guard(VAddr(0x1800), Size(8), AccessFlags::RW)
            .unwrap();
        assert_eq!(hp.admits(), 1);
        assert_eq!(hp.deopts(), 1);
        // Re-baking under the new epoch restores the fast path.
        assert_eq!(hp.repromote(), 1);
        hp.carat_guard(VAddr(0x1800), Size(8), AccessFlags::RW)
            .unwrap();
        assert_eq!(hp.admits(), 2);
    }

    #[test]
    fn unpromotable_envelope_stays_cold() {
        let pm = Arc::new(PolicyModule::new());
        pm.add_region(Region::new(VAddr(0x1000), Size(0x100), Protection::READ_WRITE).unwrap())
            .unwrap();
        // Envelope spans beyond the region: no single grant covers it.
        let hp = HotPolicy::promote(
            Arc::clone(&pm),
            SiteMap::new(9).range(0x1000, 0x2000, 0),
            vec![HotSite {
                site: 0,
                lo: 0x1000,
                hi: 0x1200,
                flags: AccessFlags::RW,
            }],
        );
        assert_eq!(hp.promoted_count(), 0);
        // Checks inside the region still allow via the general path.
        hp.carat_guard(VAddr(0x1080), Size(8), AccessFlags::RW)
            .unwrap();
        assert_eq!(hp.admits(), 0);
        assert_eq!(hp.deopts(), 0);
    }
}
