//! Cuckoo-filter front over the region table — the second AMQ family the
//! paper cites (§3.1 references Fan et al.'s cuckoo filters and Wang et
//! al.'s vacuum filters alongside Bloom filters).
//!
//! Versus the Bloom front ([`crate::bloom`]), a cuckoo filter supports
//! **deletion**: removing a policy rule removes its page fingerprints
//! directly instead of rebuilding the whole filter. The soundness
//! argument is identical — "definitely not present" short-circuits to
//! the default action; "possibly present" falls through to the
//! authoritative table, so false positives only cost time, never safety.

use kop_core::layout::PAGE_SHIFT;
use kop_core::{AccessFlags, Region, Size, VAddr};

use crate::store::{Lookup, PolicyError, RegionStore, StoreKind};
use crate::table::RegionTable;

const BUCKETS: usize = 1 << 12;
const SLOTS: usize = 4;
const MAX_KICKS: usize = 256;

/// A 4-way bucketed cuckoo filter over page numbers with 8-bit
/// fingerprints (0 = empty).
#[derive(Clone)]
struct CuckooFilter {
    slots: Vec<[u8; SLOTS]>,
    /// Fingerprints evicted past MAX_KICKS land here (rare); kept so
    /// deletion stays exact. A non-empty stash also answers "maybe".
    stash: Vec<(usize, u8)>,
    /// Deterministic kick selector (no RNG dependency in the hot path).
    kick_seq: u32,
}

fn hash64(x: u64, salt: u64) -> u64 {
    let mut v = x.wrapping_add(salt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    v ^= v >> 29;
    v = v.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    v ^= v >> 32;
    v
}

impl CuckooFilter {
    fn new() -> CuckooFilter {
        CuckooFilter {
            slots: vec![[0u8; SLOTS]; BUCKETS],
            stash: Vec::new(),
            kick_seq: 0,
        }
    }

    fn fingerprint(page: u64) -> u8 {
        let f = (hash64(page, 0xfee1) & 0xff) as u8;
        if f == 0 {
            1
        } else {
            f
        }
    }

    fn index1(page: u64) -> usize {
        (hash64(page, 0x1d) as usize) % BUCKETS
    }

    fn index2(i1: usize, fp: u8) -> usize {
        (i1 ^ (hash64(fp as u64, 0x2d) as usize)) % BUCKETS
    }

    fn insert(&mut self, page: u64) {
        let fp = Self::fingerprint(page);
        let i1 = Self::index1(page);
        let i2 = Self::index2(i1, fp);
        for idx in [i1, i2] {
            for s in &mut self.slots[idx] {
                if *s == 0 {
                    *s = fp;
                    return;
                }
            }
        }
        // Kick loop.
        let mut idx = if self.kick_seq & 1 == 0 { i1 } else { i2 };
        let mut fp = fp;
        for _ in 0..MAX_KICKS {
            self.kick_seq = self.kick_seq.wrapping_add(1);
            let victim_slot = (self.kick_seq as usize) % SLOTS;
            std::mem::swap(&mut fp, &mut self.slots[idx][victim_slot]);
            idx = Self::index2(idx, fp);
            for s in &mut self.slots[idx] {
                if *s == 0 {
                    *s = fp;
                    return;
                }
            }
        }
        self.stash.push((idx, fp));
    }

    fn remove(&mut self, page: u64) -> bool {
        let fp = Self::fingerprint(page);
        let i1 = Self::index1(page);
        let i2 = Self::index2(i1, fp);
        for idx in [i1, i2] {
            for s in &mut self.slots[idx] {
                if *s == fp {
                    *s = 0;
                    return true;
                }
            }
        }
        // The kick loop may have parked the fingerprint anywhere; fall
        // back to scanning the stash, then give up conservatively (a
        // stale fingerprint is safe — it only costs a table walk).
        if let Some(pos) = self.stash.iter().position(|&(_, f)| f == fp) {
            self.stash.remove(pos);
            return true;
        }
        false
    }

    fn maybe_contains(&self, page: u64) -> bool {
        let fp = Self::fingerprint(page);
        let i1 = Self::index1(page);
        let i2 = Self::index2(i1, fp);
        self.slots[i1].contains(&fp)
            || self.slots[i2].contains(&fp)
            || self.stash.iter().any(|&(_, f)| f == fp)
    }
}

/// Cuckoo-filter front + authoritative region table.
#[derive(Clone)]
pub struct CuckooFrontTable {
    filter: CuckooFilter,
    table: RegionTable,
}

impl Default for CuckooFrontTable {
    fn default() -> Self {
        Self::new()
    }
}

impl CuckooFrontTable {
    /// An empty store.
    pub fn new() -> CuckooFrontTable {
        CuckooFrontTable {
            filter: CuckooFilter::new(),
            table: RegionTable::new(),
        }
    }

    fn pages(r: &Region) -> impl Iterator<Item = u64> {
        let first = r.base.raw() >> PAGE_SHIFT;
        let last = r.last().expect("validated non-empty").raw() >> PAGE_SHIFT;
        first..=last
    }
}

impl RegionStore for CuckooFrontTable {
    fn kind(&self) -> StoreKind {
        StoreKind::CuckooFront
    }

    fn insert(&mut self, region: Region) -> Result<(), PolicyError> {
        self.table.insert(region)?;
        for page in Self::pages(&region) {
            self.filter.insert(page);
        }
        Ok(())
    }

    fn remove(&mut self, base: VAddr) -> Result<Region, PolicyError> {
        let removed = self.table.remove(base)?;
        // Exact deletion — the cuckoo filter's advantage over the Bloom
        // front's full rebuild. Pages shared with other regions may lose
        // their fingerprint only if fingerprints collide; stale entries
        // are safe, missing entries are not, so re-insert pages still
        // covered by remaining rules.
        for page in Self::pages(&removed) {
            self.filter.remove(page);
        }
        for r in self.table.snapshot() {
            for page in Self::pages(&r) {
                if !self.filter.maybe_contains(page) {
                    self.filter.insert(page);
                }
            }
        }
        Ok(removed)
    }

    fn clear(&mut self) {
        self.table.clear();
        self.filter = CuckooFilter::new();
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn snapshot(&self) -> Vec<Region> {
        self.table.snapshot()
    }

    #[inline]
    fn lookup(&mut self, addr: VAddr, size: Size, flags: AccessFlags) -> Lookup {
        let page = addr.raw() >> PAGE_SHIFT;
        if !self.filter.maybe_contains(page) {
            return Lookup::NoMatch;
        }
        self.table.lookup(addr, size, flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_core::Protection;

    fn r(base: u64, len: u64) -> Region {
        Region::new(VAddr(base), Size(len), Protection::READ_WRITE).unwrap()
    }

    #[test]
    fn agrees_with_plain_table() {
        let mut cuckoo = CuckooFrontTable::new();
        let mut table = RegionTable::new();
        for i in 0..32u64 {
            let reg = r(0x10_0000 + i * 0x10_000, 0x1000);
            cuckoo.insert(reg).unwrap();
            table.insert(reg).unwrap();
        }
        for probe in (0u64..0x40_0000).step_by(0x777) {
            let a = VAddr(0x10_0000 + probe);
            assert_eq!(
                cuckoo.lookup(a, Size(8), AccessFlags::RW),
                table.lookup(a, Size(8), AccessFlags::RW),
                "disagreement at {a}"
            );
        }
    }

    #[test]
    fn deletion_without_rebuild() {
        let mut cuckoo = CuckooFrontTable::new();
        cuckoo.insert(r(0x10_0000, 0x1000)).unwrap();
        cuckoo.insert(r(0x20_0000, 0x1000)).unwrap();
        cuckoo.remove(VAddr(0x10_0000)).unwrap();
        assert_eq!(
            cuckoo.lookup(VAddr(0x10_0000), Size(8), AccessFlags::READ),
            Lookup::NoMatch
        );
        assert!(matches!(
            cuckoo.lookup(VAddr(0x20_0000), Size(8), AccessFlags::READ),
            Lookup::Permitted(_)
        ));
    }

    #[test]
    fn shared_page_survives_removal_of_one_rule() {
        // Two rules on the same 4 KiB page: removing one must not hide
        // the other.
        let mut cuckoo = CuckooFrontTable::new();
        cuckoo.insert(r(0x30_0000, 0x100)).unwrap();
        cuckoo.insert(r(0x30_0800, 0x100)).unwrap();
        cuckoo.remove(VAddr(0x30_0000)).unwrap();
        assert!(matches!(
            cuckoo.lookup(VAddr(0x30_0800), Size(8), AccessFlags::RW),
            Lookup::Permitted(_)
        ));
    }

    #[test]
    fn filter_fill_and_kick_paths() {
        // Enough multi-page regions to force kicks; correctness must hold.
        let mut cuckoo = CuckooFrontTable::new();
        for i in 0..64u64 {
            cuckoo
                .insert(r(0x100_0000 + i * 0x80_000, 0x40_000))
                .unwrap(); // 64 pages each
        }
        for i in 0..64u64 {
            let a = VAddr(0x100_0000 + i * 0x80_000 + 0x2_0000);
            assert!(
                matches!(
                    cuckoo.lookup(a, Size(8), AccessFlags::RW),
                    Lookup::Permitted(_)
                ),
                "region {i} lost"
            );
        }
        // Definite misses still short-circuit.
        assert_eq!(
            cuckoo.lookup(VAddr(0xdead_dead_0000), Size(8), AccessFlags::RW),
            Lookup::NoMatch
        );
    }
}
