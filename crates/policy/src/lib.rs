//! # kop-policy — the CARAT KOP policy module
//!
//! The paper's policy module (§3.1) exports a single symbol,
//! `carat_guard(void* addr, size_t size, int access_flags)`, backed by a
//! 64-entry table of memory regions that a root user configures through
//! `ioctl /dev/carat` — "what amount to firewall rules".
//!
//! This crate implements:
//!
//! * [`store::RegionStore`] — the interface every policy data structure
//!   implements,
//! * [`table::RegionTable`] — the paper's structure: a fixed 64-entry array
//!   searched linearly (O(n), cache-friendly, supports overlapping rules),
//! * the alternatives the paper sketches for future work (§3.1, §4.2):
//!   [`sorted::SortedRegionTable`] (binary search),
//!   [`splay::SplayRegionTree`] (popularity-adaptive),
//!   [`interval::IntervalTree`] (the "Linux rbtree" comparator),
//!   [`bloom::BloomFrontTable`] and [`cuckoo::CuckooFrontTable`] (AMQ
//!   filter fronts — Bloom and deletable cuckoo, both cited in §3.1), and
//!   [`cache::CachedTable`] (last-hit cache, CARAT CAKE style),
//! * [`module::PolicyModule`] — the loadable policy module itself: a
//!   store + default action + violation action + statistics, exposing the
//!   `carat_guard` entry point,
//! * [`manager::PolicyCmd`] — the binary ioctl protocol spoken by the
//!   `policy-manager` user-space tool,
//! * the SMP guard path (DESIGN §3.13): [`snapshot::SnapshotStore`]
//!   (RCU-style published tables — the lock-free check path),
//!   [`tlb::GuardTlb`] (a per-thread, per-site grant cache invalidated by
//!   generation bump), and [`vlog::ViolationLog`] (bounded violation ring
//!   with a dropped counter, formatting deferred to read time).

#![warn(missing_docs)]

pub mod bloom;
pub mod cache;
pub mod cuckoo;
pub mod frozen;
pub mod hot;
pub mod interval;
pub mod intrinsics;
pub mod manager;
pub mod module;
pub mod namespace;
pub mod snapshot;
pub mod sorted;
pub mod splay;
pub mod stats;
pub mod store;
pub mod table;
pub mod tlb;
pub mod vlog;

pub use frozen::{FrozenKind, FrozenStore};
pub use hot::{HotPolicy, HotSite};
pub use intrinsics::IntrinsicPolicy;
pub use manager::{PolicyCmd, PolicyCmdError, PolicyResponse};
pub use module::{
    CheckPath, ClassifiedCheck, DatapathGeometry, DefaultAction, GuardOutcome, PolicyModule,
    ViolationAction,
};
pub use namespace::{NamespaceStore, GLOBAL_NAMESPACE, NAMESPACE_SHARDS};
pub use snapshot::{GenerationSubscriber, PolicySnapshot, SnapshotStore, SNAPSHOT_HISTORY_CAP};
pub use stats::GuardStats;
pub use store::{PolicyError, RegionStore, StoreKind};
pub use table::{RegionTable, MAX_REGIONS};
pub use tlb::{GuardTlb, SiteMap, TlbPolicy, TLB_WAYS};
pub use vlog::ViolationLog;

use kop_core::{AccessFlags, Size, VAddr, Violation};

/// The guard check interface — what a protected module calls before every
/// memory access. Implemented by [`module::PolicyModule`] and by the
/// zero-cost [`NoopPolicy`] used for baseline measurements.
pub trait PolicyCheck {
    /// Check an access; `Ok(())` means permitted.
    fn carat_guard(&self, addr: VAddr, size: Size, flags: AccessFlags) -> Result<(), Violation>;
}

/// A policy that allows everything — the baseline configuration in which
/// the guard call itself is compiled away (monomorphized to nothing).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopPolicy;

impl PolicyCheck for NoopPolicy {
    #[inline(always)]
    fn carat_guard(&self, _: VAddr, _: Size, _: AccessFlags) -> Result<(), Violation> {
        Ok(())
    }
}
