//! Sorted region table with binary search — the paper's first suggested
//! scaling step (§4.2): *"The first of these would be simply to sort the
//! regions in the policy in order, and then do a binary search over the
//! table instead of a linear scan."*
//!
//! Sorting requires non-overlapping regions (the tradeoff the paper calls
//! out in §3.1): overlapping inserts are rejected.

use kop_core::{AccessFlags, Region, Size, VAddr};

use crate::store::{validate_region, Lookup, PolicyError, RegionStore, StoreKind};

/// Regions sorted by base address; lookup is a binary search.
#[derive(Clone, Debug, Default)]
pub struct SortedRegionTable {
    regions: Vec<Region>,
}

impl SortedRegionTable {
    /// An empty table.
    pub fn new() -> SortedRegionTable {
        SortedRegionTable::default()
    }

    /// Index of the candidate region for `addr`: the last region with
    /// `base <= addr`.
    fn candidate(&self, addr: VAddr) -> Option<usize> {
        // partition_point returns the count of regions with base <= addr.
        let n = self.regions.partition_point(|r| r.base <= addr);
        n.checked_sub(1)
    }
}

impl RegionStore for SortedRegionTable {
    fn kind(&self) -> StoreKind {
        StoreKind::Sorted
    }

    fn insert(&mut self, region: Region) -> Result<(), PolicyError> {
        validate_region(&region)?;
        let pos = self.regions.partition_point(|r| r.base < region.base);
        // Duplicate bases are rejected before any overlap classification so
        // every store reports the same error for the same degenerate input.
        if pos < self.regions.len() && self.regions[pos].base == region.base {
            return Err(PolicyError::DuplicateBase {
                existing: self.regions[pos],
            });
        }
        // Overlap can only involve the immediate neighbours in sorted order.
        if pos > 0 && self.regions[pos - 1].overlaps(&region) {
            return Err(PolicyError::Overlap {
                existing: self.regions[pos - 1],
            });
        }
        if pos < self.regions.len() && self.regions[pos].overlaps(&region) {
            return Err(PolicyError::Overlap {
                existing: self.regions[pos],
            });
        }
        self.regions.insert(pos, region);
        Ok(())
    }

    fn remove(&mut self, base: VAddr) -> Result<Region, PolicyError> {
        match self.regions.binary_search_by(|r| r.base.cmp(&base)) {
            Ok(idx) => Ok(self.regions.remove(idx)),
            Err(_) => Err(PolicyError::NoSuchRegion { base }),
        }
    }

    fn clear(&mut self) {
        self.regions.clear();
    }

    fn len(&self) -> usize {
        self.regions.len()
    }

    fn snapshot(&self) -> Vec<Region> {
        self.regions.clone()
    }

    #[inline]
    fn lookup(&mut self, addr: VAddr, size: Size, flags: AccessFlags) -> Lookup {
        let Some(idx) = self.candidate(addr) else {
            return Lookup::NoMatch;
        };
        let r = self.regions[idx];
        if r.covers(addr, size) {
            if r.prot.allows(flags) {
                Lookup::Permitted(r)
            } else {
                Lookup::Forbidden(r)
            }
        } else {
            Lookup::NoMatch
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_core::Protection;

    fn r(base: u64, len: u64) -> Region {
        Region::new(VAddr(base), Size(len), Protection::READ_WRITE).unwrap()
    }

    #[test]
    fn sorted_insert_and_lookup() {
        let mut t = SortedRegionTable::new();
        // Insert out of order.
        t.insert(r(0x3000, 0x100)).unwrap();
        t.insert(r(0x1000, 0x100)).unwrap();
        t.insert(r(0x2000, 0x100)).unwrap();
        let snap = t.snapshot();
        assert_eq!(
            snap.iter().map(|x| x.base.raw()).collect::<Vec<_>>(),
            vec![0x1000, 0x2000, 0x3000]
        );
        assert!(matches!(
            t.lookup(VAddr(0x2080), Size(8), AccessFlags::READ),
            Lookup::Permitted(_)
        ));
        assert!(matches!(
            t.lookup(VAddr(0x2100), Size(8), AccessFlags::READ),
            Lookup::NoMatch
        ));
        assert!(matches!(
            t.lookup(VAddr(0x800), Size(8), AccessFlags::READ),
            Lookup::NoMatch
        ));
    }

    #[test]
    fn overlap_rejected() {
        let mut t = SortedRegionTable::new();
        t.insert(r(0x1000, 0x1000)).unwrap();
        let err = t.insert(r(0x1800, 0x1000)).unwrap_err();
        assert!(matches!(err, PolicyError::Overlap { .. }));
        // Adjacent (non-overlapping) is fine.
        t.insert(r(0x2000, 0x1000)).unwrap();
        assert_eq!(t.len(), 2);
        // Overlap with successor also detected.
        let err = t.insert(r(0x0800, 0x900)).unwrap_err();
        assert!(matches!(err, PolicyError::Overlap { .. }));
    }

    #[test]
    fn remove_by_base() {
        let mut t = SortedRegionTable::new();
        t.insert(r(0x1000, 0x100)).unwrap();
        t.insert(r(0x2000, 0x100)).unwrap();
        assert_eq!(t.remove(VAddr(0x1000)).unwrap().base, VAddr(0x1000));
        assert_eq!(t.len(), 1);
        assert!(t.remove(VAddr(0x1000)).is_err());
    }

    #[test]
    fn forbidden_classification() {
        let mut t = SortedRegionTable::new();
        t.insert(Region::new(VAddr(0x1000), Size(0x100), Protection::READ_ONLY).unwrap())
            .unwrap();
        assert!(matches!(
            t.lookup(VAddr(0x1000), Size(4), AccessFlags::WRITE),
            Lookup::Forbidden(_)
        ));
    }

    #[test]
    fn straddle_denied() {
        let mut t = SortedRegionTable::new();
        t.insert(r(0x1000, 0x100)).unwrap();
        t.insert(r(0x1100, 0x100)).unwrap();
        assert!(matches!(
            t.lookup(VAddr(0x10fc), Size(8), AccessFlags::READ),
            Lookup::NoMatch
        ));
    }
}
