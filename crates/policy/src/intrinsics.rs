//! The intrinsic policy table — "a different policy table could be
//! consulted to determine if a given kernel module has access to a
//! privileged intrinsic" (paper §5).
//!
//! Where the region table answers "may this module touch these bytes?",
//! the intrinsic table answers "may this module execute this privileged
//! operation?" — e.g. a performance-monitoring module may be granted
//! `__rdmsr`/`__wrmsr` but not `__cli`.

use std::collections::BTreeSet;

use kop_core::error::ViolationKind;
use kop_core::{AccessFlags, Size, VAddr, Violation};

/// A set of permitted privileged-intrinsic ids.
#[derive(Clone, Debug, Default)]
pub struct IntrinsicPolicy {
    allowed: BTreeSet<u32>,
    /// When true, unlisted intrinsics are permitted (audit-style); default
    /// is deny.
    pub default_allow: bool,
}

impl IntrinsicPolicy {
    /// An empty, default-deny table.
    pub fn new() -> IntrinsicPolicy {
        IntrinsicPolicy::default()
    }

    /// Grant an intrinsic id.
    pub fn allow(&mut self, id: u32) {
        self.allowed.insert(id);
    }

    /// Revoke an intrinsic id. Returns whether it was granted.
    pub fn revoke(&mut self, id: u32) -> bool {
        self.allowed.remove(&id)
    }

    /// Clear all grants.
    pub fn clear(&mut self) {
        self.allowed.clear();
        self.default_allow = false;
    }

    /// The granted ids in order.
    pub fn granted(&self) -> Vec<u32> {
        self.allowed.iter().copied().collect()
    }

    /// Classify an invocation of intrinsic `id`.
    pub fn check(&self, id: u32) -> Result<(), Violation> {
        if self.allowed.contains(&id) || self.default_allow {
            Ok(())
        } else {
            // The violation record reuses the memory-violation shape: the
            // "address" carries the intrinsic id, size 0, EXEC intent.
            Err(Violation::new(
                VAddr(id as u64),
                Size(0),
                AccessFlags::EXEC,
                ViolationKind::ForbiddenIntrinsic,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_deny() {
        let p = IntrinsicPolicy::new();
        let v = p.check(0).unwrap_err();
        assert_eq!(v.kind, ViolationKind::ForbiddenIntrinsic);
        assert_eq!(v.addr, VAddr(0));
    }

    #[test]
    fn allow_and_revoke() {
        let mut p = IntrinsicPolicy::new();
        p.allow(1);
        p.allow(3);
        assert!(p.check(1).is_ok());
        assert!(p.check(3).is_ok());
        assert!(p.check(2).is_err());
        assert_eq!(p.granted(), vec![1, 3]);
        assert!(p.revoke(1));
        assert!(!p.revoke(1));
        assert!(p.check(1).is_err());
    }

    #[test]
    fn default_allow_mode() {
        let mut p = IntrinsicPolicy::new();
        p.default_allow = true;
        assert!(p.check(42).is_ok());
        p.clear();
        assert!(p.check(42).is_err());
    }
}
