//! RCU-style published snapshots of the region store — the lock-free
//! guard read path.
//!
//! The region table is textbook read-mostly state: writes happen at
//! insmod/rmmod and grant/revoke rates, reads on *every* module load and
//! store. [`SnapshotStore`] therefore keeps an immutable
//! [`PolicySnapshot`] behind an `arc-swap` atomic pointer: readers load
//! the snapshot and run `lookup` with zero locks; writers rebuild a fresh
//! snapshot from the authoritative (mutex-protected) store and publish it
//! whole. A reader mid-check keeps the snapshot it pinned alive — it can
//! never observe a torn table — and reclamation of the old snapshot is
//! deferred until the last reader drops it.
//!
//! Every publish bumps a monotonic **generation**. The generation is the
//! invalidation signal for the per-site guard TLB
//! ([`crate::tlb::GuardTlb`]): a cached grant is valid only while its
//! recorded generation equals the store's current one, so any table write
//! — grant, revoke, wholesale replace — flushes every TLB at the cost of
//! one atomic store.
//!
//! Memory-ordering argument (revoke → publish → reader-miss): the writer
//! installs the new snapshot pointer *before* it stores the new
//! generation, and both are `SeqCst`. A revoke therefore does not return
//! until the shrunken table is the published one. Any reader that starts
//! a check after revoke returns (i.e. observes any effect ordered after
//! it) loads either the new generation — forcing a TLB miss and a lookup
//! in the new snapshot — or the new snapshot directly. A TLB entry tagged
//! with the old generation can never match again.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use arc_swap::ArcSwap;
use parking_lot::Mutex;

use kop_core::{AccessFlags, Region, Size, VAddr};
use kop_trace::Counter;

use crate::frozen::{FrozenKind, FrozenStore};
use crate::store::{Lookup, StoreKind};

/// How many `(generation, regions)` pairs the store retains for
/// [`SnapshotStore::regions_at`]. The translation validator re-derives
/// inlined guard bounds from the grant a *cited* generation held; eight
/// generations of history comfortably covers a promote → validate window
/// while bounding memory on churn-heavy workloads.
pub const SNAPSHOT_HISTORY_CAP: usize = 8;

/// A callback invoked after every snapshot publish with the new
/// generation. Used by the promoted-trace tier to invalidate eagerly
/// (the generation tag check makes invalidation correct even without the
/// callback; the callback just makes it prompt).
pub type GenerationSubscriber = Box<dyn Fn(u64) + Send + Sync>;

/// An immutable, self-contained copy of the policy at one generation.
///
/// Lookup semantics replicate the paper's table exactly: an access is
/// permitted if **any** covering region grants the intent; otherwise the
/// first covering region makes it [`Lookup::Forbidden`]; otherwise
/// [`Lookup::NoMatch`]. Lookups are served by a [`FrozenStore`] built at
/// publish time: a one-probe sorted array when the regions are disjoint,
/// an augmented interval tree when they overlap — O(log n) either way,
/// with bit-exact flat-scan semantics (store-order any-grant-wins).
pub struct PolicySnapshot {
    generation: u64,
    kind: StoreKind,
    /// The frozen index (also owns the store-order region list).
    frozen: FrozenStore,
}

impl PolicySnapshot {
    /// Build a snapshot over `regions` (in the authoritative store's
    /// snapshot order) at `generation`.
    pub fn build(kind: StoreKind, regions: Vec<Region>, generation: u64) -> PolicySnapshot {
        PolicySnapshot {
            generation,
            kind,
            frozen: FrozenStore::build(regions),
        }
    }

    /// The generation this snapshot was published at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The kind of the authoritative store this snapshot was built from.
    pub fn kind(&self) -> StoreKind {
        self.kind
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.frozen.len()
    }

    /// Whether the snapshot holds no regions.
    pub fn is_empty(&self) -> bool {
        self.frozen.is_empty()
    }

    /// The regions, in the authoritative store's order.
    pub fn regions(&self) -> &[Region] {
        self.frozen.regions()
    }

    /// The frozen index serving this snapshot's lookups.
    pub fn frozen(&self) -> &FrozenStore {
        &self.frozen
    }

    /// Which frozen index this snapshot built (sorted vs interval).
    pub fn frozen_kind(&self) -> FrozenKind {
        self.frozen.kind()
    }

    /// Classify an access against this frozen table. Pure: no locks, no
    /// mutation, callable from any thread.
    #[inline]
    pub fn lookup(&self, addr: VAddr, size: Size, flags: AccessFlags) -> Lookup {
        self.frozen.lookup_frozen(addr, size, flags)
    }
}

impl std::fmt::Debug for PolicySnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicySnapshot")
            .field("generation", &self.generation)
            .field("kind", &self.kind)
            .field("regions", &self.frozen.len())
            .field("frozen", &self.frozen.kind())
            .finish()
    }
}

/// The epoch/RCU cell: current snapshot + generation + publish counter.
///
/// Writers must be externally serialized (the policy module publishes
/// while holding its store mutex); readers are lock-free.
pub struct SnapshotStore {
    current: ArcSwap<PolicySnapshot>,
    /// Stored *after* the snapshot pointer on publish; the TLB validity
    /// tag. Starts at 1 so 0 can mean "no cached entry".
    generation: AtomicU64,
    publishes: Counter,
    /// Bounded `(generation, regions)` history for the validator's grant
    /// oracle; never read on the guard path.
    history: Mutex<VecDeque<(u64, Vec<Region>)>>,
    /// Publish subscribers. Fired while the writer still serializes
    /// publishes, so callbacks must not mutate the policy (deadlock) —
    /// they should only flip flags / bump atomics.
    subscribers: Mutex<Vec<GenerationSubscriber>>,
}

impl SnapshotStore {
    /// An empty store of the given kind at generation 1.
    pub fn new(kind: StoreKind) -> SnapshotStore {
        let mut history = VecDeque::with_capacity(SNAPSHOT_HISTORY_CAP);
        history.push_back((1, Vec::new()));
        SnapshotStore {
            current: ArcSwap::from_pointee(PolicySnapshot::build(kind, Vec::new(), 1)),
            generation: AtomicU64::new(1),
            publishes: Counter::new("policy.snapshot_publishes"),
            history: Mutex::new(history),
            subscribers: Mutex::new(Vec::new()),
        }
    }

    /// The current generation. `SeqCst` so that a generation observed
    /// after a publish implies the published snapshot is visible too.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Pin and borrow the current snapshot (lock-free).
    #[inline]
    pub fn load(&self) -> arc_swap::Guard<'_, PolicySnapshot> {
        self.current.load()
    }

    /// Clone out the current snapshot.
    pub fn load_full(&self) -> Arc<PolicySnapshot> {
        self.current.load_full()
    }

    /// Rebuild and publish a new snapshot; returns the new generation.
    /// Callers serialize publishes (the policy module holds its store
    /// mutex across mutate + publish, so generation order matches
    /// mutation order).
    pub fn publish(&self, kind: StoreKind, regions: Vec<Region>) -> u64 {
        let gen = self.generation.load(Ordering::SeqCst) + 1;
        {
            let mut history = self.history.lock();
            history.push_back((gen, regions.clone()));
            while history.len() > SNAPSHOT_HISTORY_CAP {
                history.pop_front();
            }
        }
        self.current
            .store(Arc::new(PolicySnapshot::build(kind, regions, gen)));
        // Snapshot first, generation second: a TLB that sees the new
        // generation is guaranteed the new snapshot is already live.
        self.generation.store(gen, Ordering::SeqCst);
        self.publishes.inc();
        for sub in self.subscribers.lock().iter() {
            sub(gen);
        }
        gen
    }

    /// The regions the table held at `generation`, if still retained
    /// (last [`SNAPSHOT_HISTORY_CAP`] publishes). The validator's grant
    /// oracle: lets it recompute what an inlined bound *should* have been
    /// at the generation a promoted trace cites.
    pub fn regions_at(&self, generation: u64) -> Option<Vec<Region>> {
        self.history
            .lock()
            .iter()
            .find(|(g, _)| *g == generation)
            .map(|(_, regions)| regions.clone())
    }

    /// Register a publish subscriber (see [`GenerationSubscriber`]).
    pub fn subscribe(&self, sub: GenerationSubscriber) {
        self.subscribers.lock().push(sub);
    }

    /// The live publish counter cell (for registry registration).
    pub fn publish_counter(&self) -> &Counter {
        &self.publishes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_core::Protection;

    fn r(base: u64, len: u64, prot: Protection) -> Region {
        Region::new(VAddr(base), Size(len), prot).unwrap()
    }

    #[test]
    fn empty_snapshot_matches_nothing() {
        let s = SnapshotStore::new(StoreKind::Table);
        assert_eq!(s.generation(), 1);
        assert_eq!(
            s.load().lookup(VAddr(0x1000), Size(8), AccessFlags::READ),
            Lookup::NoMatch
        );
    }

    #[test]
    fn publish_bumps_generation_and_swaps_table() {
        let s = SnapshotStore::new(StoreKind::Table);
        let g = s.publish(
            StoreKind::Table,
            vec![r(0x1000, 0x1000, Protection::READ_WRITE)],
        );
        assert_eq!(g, 2);
        assert_eq!(s.generation(), 2);
        assert_eq!(s.publish_counter().get(), 1);
        assert!(matches!(
            s.load().lookup(VAddr(0x1800), Size(8), AccessFlags::RW),
            Lookup::Permitted(_)
        ));
        let g = s.publish(StoreKind::Table, Vec::new());
        assert_eq!(g, 3);
        assert_eq!(
            s.load().lookup(VAddr(0x1800), Size(8), AccessFlags::RW),
            Lookup::NoMatch
        );
    }

    #[test]
    fn history_answers_recent_generations_and_forgets_old_ones() {
        let s = SnapshotStore::new(StoreKind::Table);
        assert_eq!(s.regions_at(1), Some(Vec::new()));
        let region = r(0x1000, 0x1000, Protection::READ_WRITE);
        let g = s.publish(StoreKind::Table, vec![region]);
        assert_eq!(s.regions_at(g), Some(vec![region]));
        assert_eq!(s.regions_at(g + 1), None, "future generation unknown");
        // Push the first generation out of the bounded window.
        for _ in 0..SNAPSHOT_HISTORY_CAP {
            s.publish(StoreKind::Table, vec![region]);
        }
        assert_eq!(s.regions_at(1), None, "evicted from bounded history");
        assert_eq!(s.regions_at(s.generation()), Some(vec![region]));
    }

    #[test]
    fn subscribers_see_every_publish_in_order() {
        use std::sync::Mutex as StdMutex;
        let s = SnapshotStore::new(StoreKind::Table);
        let seen = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        s.subscribe(Box::new(move |gen| sink.lock().unwrap().push(gen)));
        s.publish(StoreKind::Table, Vec::new());
        s.publish(StoreKind::Table, Vec::new());
        assert_eq!(*seen.lock().unwrap(), vec![2, 3]);
    }

    #[test]
    fn disjoint_fast_path_agrees_with_scan() {
        // Same region set built both ways must classify identically.
        let disjoint = vec![
            r(0x1000, 0x1000, Protection::READ_WRITE),
            r(0x3000, 0x1000, Protection::READ_ONLY),
            r(0x8000, 0x100, Protection::NONE),
        ];
        let snap = PolicySnapshot::build(StoreKind::Table, disjoint.clone(), 1);
        assert_eq!(snap.frozen_kind(), FrozenKind::Sorted);
        let probes = [
            (0x1800u64, 8u64, AccessFlags::RW),
            (0x3000, 8, AccessFlags::READ),
            (0x3000, 8, AccessFlags::WRITE),
            (0x8000, 4, AccessFlags::READ),
            (0x2000, 8, AccessFlags::READ),
            (0x3ff8, 16, AccessFlags::READ), // straddles region end
        ];
        for (a, s, f) in probes {
            let mut first = None;
            let mut want = Lookup::NoMatch;
            for reg in &disjoint {
                if reg.covers(VAddr(a), Size(s)) {
                    if reg.prot.allows(f) {
                        want = Lookup::Permitted(*reg);
                        break;
                    }
                    if first.is_none() {
                        first = Some(*reg);
                    }
                }
            }
            if matches!(want, Lookup::NoMatch) {
                if let Some(reg) = first {
                    want = Lookup::Forbidden(reg);
                }
            }
            assert_eq!(snap.lookup(VAddr(a), Size(s), f), want, "probe {a:#x}");
        }
    }

    #[test]
    fn overlapping_regions_use_any_grant_wins() {
        // A NONE rule shadowed by a later RW rule over the same bytes:
        // table semantics say any granting cover wins.
        let regions = vec![
            r(0x1000, 0x1000, Protection::NONE),
            r(0x1000, 0x1000, Protection::READ_WRITE),
        ];
        let snap = PolicySnapshot::build(StoreKind::Table, regions, 1);
        assert_eq!(
            snap.frozen_kind(),
            FrozenKind::Interval,
            "overlap selects the interval index"
        );
        assert!(matches!(
            snap.lookup(VAddr(0x1400), Size(8), AccessFlags::RW),
            Lookup::Permitted(_)
        ));
        // EXEC is granted by neither: Forbidden, reported on the first
        // covering region.
        assert!(matches!(
            snap.lookup(VAddr(0x1400), Size(8), AccessFlags::EXEC),
            Lookup::Forbidden(_)
        ));
    }
}
