//! The [`RegionStore`] abstraction over policy data structures.
//!
//! The paper stresses that CARAT KOP "does not attempt to define an optimal
//! policy or method of policy checking, but provides the methodology to
//! easily iterate upon a simplistic structure, the 64-entry table". This
//! trait is that methodology: every structure (the table and all the
//! sketched alternatives) implements the same insert/remove/lookup surface,
//! and [`crate::module::PolicyModule`] is generic over it.

use core::fmt;

use kop_core::{AccessFlags, Region, Size, VAddr};

/// Errors raised by policy mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PolicyError {
    /// The structure's capacity is exhausted (the paper's table holds 64).
    TableFull {
        /// The capacity that was hit.
        capacity: usize,
    },
    /// This structure cannot hold overlapping regions (the paper notes this
    /// as "the primary tradeoff" of the non-table structures).
    Overlap {
        /// The existing region that overlaps the inserted one.
        existing: Region,
    },
    /// A rule with exactly this base address already exists. Bases key
    /// removal (`remove(base)`), so two rules sharing one base would make
    /// removal ambiguous; every store rejects them uniformly.
    DuplicateBase {
        /// The existing region with the same base.
        existing: Region,
    },
    /// Zero-length regions are meaningless firewall rules.
    ZeroLength,
    /// `base + len` would overflow the address space.
    Overflow,
    /// No region with the given base exists.
    NoSuchRegion {
        /// The base address requested.
        base: VAddr,
    },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::TableFull { capacity } => {
                write!(f, "policy table full ({capacity} regions)")
            }
            PolicyError::Overlap { existing } => {
                write!(f, "region overlaps existing rule {existing}")
            }
            PolicyError::DuplicateBase { existing } => {
                write!(f, "region duplicates base of existing rule {existing}")
            }
            PolicyError::ZeroLength => f.write_str("zero-length region"),
            PolicyError::Overflow => f.write_str("region overflows address space"),
            PolicyError::NoSuchRegion { base } => write!(f, "no region with base {base}"),
        }
    }
}

impl std::error::Error for PolicyError {}

/// Outcome of a region lookup for a specific access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// Some region covers the whole access and grants the intent.
    Permitted(Region),
    /// At least one region covers the whole access, but none grant the
    /// intent (e.g. a write to a read-only region).
    Forbidden(Region),
    /// No region covers the whole access — fall back to the default action.
    NoMatch,
}

/// A policy data structure: a set of regions with whole-access lookup.
///
/// `lookup` takes `&mut self` because self-adjusting structures (the splay
/// tree, the last-hit cache) reorganize on reads — precisely the behaviour
/// the paper speculates about in §4.2.
pub trait RegionStore {
    /// Structure name for reports.
    fn kind(&self) -> StoreKind;

    /// Add a rule. Structures differ in overlap/capacity behaviour.
    fn insert(&mut self, region: Region) -> Result<(), PolicyError>;

    /// Remove the rule with exactly this base address.
    fn remove(&mut self, base: VAddr) -> Result<Region, PolicyError>;

    /// Drop all rules.
    fn clear(&mut self);

    /// Number of rules.
    fn len(&self) -> usize;

    /// Whether the store holds no rules.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all rules (ordering is structure-specific).
    fn snapshot(&self) -> Vec<Region>;

    /// Classify an access.
    fn lookup(&mut self, addr: VAddr, size: Size, flags: AccessFlags) -> Lookup;
}

/// Which structure a store is — used in reports and the ioctl protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// The paper's 64-entry linear-scan table.
    Table,
    /// Sorted table with binary search (the paper's O(log n) suggestion).
    Sorted,
    /// Splay tree (popularity-adaptive).
    Splay,
    /// Augmented interval tree (the "Linux rbtree" comparator).
    Interval,
    /// Bloom/AMQ filter front over the table.
    BloomFront,
    /// Cuckoo-filter front over the table (deletable AMQ, also cited in
    /// §3.1).
    CuckooFront,
    /// Last-hit cache over the table (CARAT CAKE style).
    Cached,
}

impl StoreKind {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::Table => "table64",
            StoreKind::Sorted => "sorted",
            StoreKind::Splay => "splay",
            StoreKind::Interval => "interval",
            StoreKind::BloomFront => "bloom-front",
            StoreKind::CuckooFront => "cuckoo-front",
            StoreKind::Cached => "cached",
        }
    }

    /// All kinds (for sweeps in benches/tests).
    pub const ALL: [StoreKind; 7] = [
        StoreKind::Table,
        StoreKind::Sorted,
        StoreKind::Splay,
        StoreKind::Interval,
        StoreKind::BloomFront,
        StoreKind::CuckooFront,
        StoreKind::Cached,
    ];
}

impl fmt::Display for StoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Validate a region before insertion (shared by all stores).
pub(crate) fn validate_region(region: &Region) -> Result<(), PolicyError> {
    if region.len.raw() == 0 {
        return Err(PolicyError::ZeroLength);
    }
    if region.base.checked_add(region.len.raw() - 1).is_none() {
        return Err(PolicyError::Overflow);
    }
    Ok(())
}

/// Construct a boxed store of the given kind (table-backed hybrids use the
/// default table capacity).
pub fn make_store(kind: StoreKind) -> Box<dyn RegionStore + Send + Sync> {
    match kind {
        StoreKind::Table => Box::new(crate::table::RegionTable::new()),
        StoreKind::Sorted => Box::new(crate::sorted::SortedRegionTable::new()),
        StoreKind::Splay => Box::new(crate::splay::SplayRegionTree::new()),
        StoreKind::Interval => Box::new(crate::interval::IntervalTree::new()),
        StoreKind::BloomFront => Box::new(crate::bloom::BloomFrontTable::new()),
        StoreKind::CuckooFront => Box::new(crate::cuckoo::CuckooFrontTable::new()),
        StoreKind::Cached => Box::new(crate::cache::CachedTable::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_core::Protection;

    #[test]
    fn validate_rejects_degenerate_regions() {
        let zero = Region {
            base: VAddr(0x1000),
            len: Size(0),
            prot: Protection::ALL,
        };
        assert_eq!(validate_region(&zero), Err(PolicyError::ZeroLength));
        let ok = Region::new(VAddr(0x1000), Size(0x1000), Protection::ALL).unwrap();
        assert_eq!(validate_region(&ok), Ok(()));
    }

    #[test]
    fn kinds_have_distinct_names() {
        let names: std::collections::BTreeSet<&str> =
            StoreKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), StoreKind::ALL.len());
    }

    #[test]
    fn make_store_produces_matching_kind() {
        for kind in StoreKind::ALL {
            let s = make_store(kind);
            assert_eq!(s.kind(), kind);
            assert!(s.is_empty());
        }
    }
}
