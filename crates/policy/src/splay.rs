//! Splay-tree region store — the popularity-adaptive structure the paper
//! speculates about (§4.2): *"It also stands to reason that the regions of
//! a policy will vary in popularity. Consequently, with a large enough
//! number of regions, a popularity-based data structure such as a splay
//! tree ... might be able to do better than a logarithmic search in the
//! common case."*
//!
//! Nodes are keyed by region base (non-overlapping regions only). Every
//! lookup splays the matched (or nearest) node to the root, so repeatedly
//! hit regions are found in O(1) amortized.

use kop_core::{AccessFlags, Region, Size, VAddr};

use crate::store::{validate_region, Lookup, PolicyError, RegionStore, StoreKind};

const NIL: usize = usize::MAX;

#[derive(Clone, Debug)]
struct Node {
    region: Region,
    left: usize,
    right: usize,
    parent: usize,
}

/// A bottom-up splay tree of non-overlapping regions keyed by base address.
#[derive(Clone, Debug, Default)]
pub struct SplayRegionTree {
    nodes: Vec<Node>,
    root: usize,
    free: Vec<usize>,
    len: usize,
}

impl SplayRegionTree {
    /// An empty tree.
    pub fn new() -> SplayRegionTree {
        SplayRegionTree {
            nodes: Vec::new(),
            root: NIL,
            free: Vec::new(),
            len: 0,
        }
    }

    /// Depth of the node currently holding `base` (root = 0); testing aid
    /// for the splay property.
    pub fn depth_of(&self, base: VAddr) -> Option<usize> {
        let mut cur = self.root;
        let mut depth = 0;
        while cur != NIL {
            let n = &self.nodes[cur];
            if n.region.base == base {
                return Some(depth);
            }
            cur = if base < n.region.base {
                n.left
            } else {
                n.right
            };
            depth += 1;
        }
        None
    }

    fn alloc(&mut self, region: Region) -> usize {
        let node = Node {
            region,
            left: NIL,
            right: NIL,
            parent: NIL,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn rotate_up(&mut self, x: usize) {
        let p = self.nodes[x].parent;
        debug_assert_ne!(p, NIL);
        let g = self.nodes[p].parent;
        if self.nodes[p].left == x {
            // Right rotation.
            let b = self.nodes[x].right;
            self.nodes[p].left = b;
            if b != NIL {
                self.nodes[b].parent = p;
            }
            self.nodes[x].right = p;
        } else {
            // Left rotation.
            let b = self.nodes[x].left;
            self.nodes[p].right = b;
            if b != NIL {
                self.nodes[b].parent = p;
            }
            self.nodes[x].left = p;
        }
        self.nodes[p].parent = x;
        self.nodes[x].parent = g;
        if g == NIL {
            self.root = x;
        } else if self.nodes[g].left == p {
            self.nodes[g].left = x;
        } else {
            self.nodes[g].right = x;
        }
    }

    fn splay(&mut self, x: usize) {
        while self.nodes[x].parent != NIL {
            let p = self.nodes[x].parent;
            let g = self.nodes[p].parent;
            if g == NIL {
                // Zig.
                self.rotate_up(x);
            } else {
                let p_is_left = self.nodes[g].left == p;
                let x_is_left = self.nodes[p].left == x;
                if p_is_left == x_is_left {
                    // Zig-zig: rotate parent first.
                    self.rotate_up(p);
                    self.rotate_up(x);
                } else {
                    // Zig-zag.
                    self.rotate_up(x);
                    self.rotate_up(x);
                }
            }
        }
    }

    /// Find the node with the greatest base <= addr, without splaying.
    fn floor_node(&self, addr: VAddr) -> Option<usize> {
        let mut cur = self.root;
        let mut best = None;
        while cur != NIL {
            let n = &self.nodes[cur];
            if n.region.base <= addr {
                best = Some(cur);
                cur = n.right;
            } else {
                cur = n.left;
            }
        }
        best
    }
}

impl RegionStore for SplayRegionTree {
    fn kind(&self) -> StoreKind {
        StoreKind::Splay
    }

    fn insert(&mut self, region: Region) -> Result<(), PolicyError> {
        validate_region(&region)?;
        // Duplicate bases reported as such (not as Overlap) so every store
        // rejects the same degenerate input with the same error.
        if let Some(fl) = self.floor_node(region.base) {
            if self.nodes[fl].region.base == region.base {
                return Err(PolicyError::DuplicateBase {
                    existing: self.nodes[fl].region,
                });
            }
        }
        // Overlap check against floor and its successor.
        if let Some(fl) = self.floor_node(region.base) {
            if self.nodes[fl].region.overlaps(&region) {
                return Err(PolicyError::Overlap {
                    existing: self.nodes[fl].region,
                });
            }
        }
        if let Some(last) = region.last() {
            if let Some(fl_end) = self.floor_node(last) {
                if self.nodes[fl_end].region.overlaps(&region) {
                    return Err(PolicyError::Overlap {
                        existing: self.nodes[fl_end].region,
                    });
                }
            }
        }

        // BST insert by base.
        let idx = self.alloc(region);
        if self.root == NIL {
            self.root = idx;
        } else {
            let mut cur = self.root;
            loop {
                if region.base < self.nodes[cur].region.base {
                    if self.nodes[cur].left == NIL {
                        self.nodes[cur].left = idx;
                        self.nodes[idx].parent = cur;
                        break;
                    }
                    cur = self.nodes[cur].left;
                } else {
                    if self.nodes[cur].right == NIL {
                        self.nodes[cur].right = idx;
                        self.nodes[idx].parent = cur;
                        break;
                    }
                    cur = self.nodes[cur].right;
                }
            }
        }
        self.splay(idx);
        self.len += 1;
        Ok(())
    }

    fn remove(&mut self, base: VAddr) -> Result<Region, PolicyError> {
        // Find exact node.
        let mut cur = self.root;
        while cur != NIL {
            let b = self.nodes[cur].region.base;
            if b == base {
                break;
            }
            cur = if base < b {
                self.nodes[cur].left
            } else {
                self.nodes[cur].right
            };
        }
        if cur == NIL {
            return Err(PolicyError::NoSuchRegion { base });
        }
        self.splay(cur);
        let removed = self.nodes[cur].region;
        // Standard splay delete: join left and right subtrees.
        let left = self.nodes[cur].left;
        let right = self.nodes[cur].right;
        if left != NIL {
            self.nodes[left].parent = NIL;
        }
        if right != NIL {
            self.nodes[right].parent = NIL;
        }
        self.root = if left == NIL {
            right
        } else {
            // Splay max of left subtree to its root, then attach right.
            let mut m = left;
            while self.nodes[m].right != NIL {
                m = self.nodes[m].right;
            }
            self.root = left; // temporary so splay() updates root correctly
            self.splay(m);
            self.nodes[m].right = right;
            if right != NIL {
                self.nodes[right].parent = m;
            }
            m
        };
        self.free.push(cur);
        self.len -= 1;
        Ok(removed)
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
        self.len = 0;
    }

    fn len(&self) -> usize {
        self.len
    }

    fn snapshot(&self) -> Vec<Region> {
        // In-order walk.
        let mut out = Vec::with_capacity(self.len);
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NIL || !stack.is_empty() {
            while cur != NIL {
                stack.push(cur);
                cur = self.nodes[cur].left;
            }
            let n = stack.pop().expect("nonempty");
            out.push(self.nodes[n].region);
            cur = self.nodes[n].right;
        }
        out
    }

    #[inline]
    fn lookup(&mut self, addr: VAddr, size: Size, flags: AccessFlags) -> Lookup {
        let Some(idx) = self.floor_node(addr) else {
            return Lookup::NoMatch;
        };
        // Splay the touched node: this is the adaptivity the paper wants —
        // hot regions migrate to the root.
        self.splay(idx);
        let r = self.nodes[idx].region;
        if r.covers(addr, size) {
            if r.prot.allows(flags) {
                Lookup::Permitted(r)
            } else {
                Lookup::Forbidden(r)
            }
        } else {
            Lookup::NoMatch
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_core::Protection;

    fn r(base: u64, len: u64) -> Region {
        Region::new(VAddr(base), Size(len), Protection::READ_WRITE).unwrap()
    }

    #[test]
    fn insert_lookup_remove() {
        let mut t = SplayRegionTree::new();
        for i in 0..32u64 {
            t.insert(r(i * 0x1000, 0x800)).unwrap();
        }
        assert_eq!(t.len(), 32);
        assert!(matches!(
            t.lookup(VAddr(5 * 0x1000 + 0x10), Size(8), AccessFlags::READ),
            Lookup::Permitted(_)
        ));
        // Gap between regions.
        assert!(matches!(
            t.lookup(VAddr(5 * 0x1000 + 0x900), Size(8), AccessFlags::READ),
            Lookup::NoMatch
        ));
        let removed = t.remove(VAddr(5 * 0x1000)).unwrap();
        assert_eq!(removed.base, VAddr(5 * 0x1000));
        assert!(matches!(
            t.lookup(VAddr(5 * 0x1000 + 0x10), Size(8), AccessFlags::READ),
            Lookup::NoMatch
        ));
        assert_eq!(t.len(), 31);
    }

    #[test]
    fn snapshot_is_sorted() {
        let mut t = SplayRegionTree::new();
        for base in [0x5000u64, 0x1000, 0x9000, 0x3000, 0x7000] {
            t.insert(r(base, 0x100)).unwrap();
        }
        let snap = t.snapshot();
        let bases: Vec<u64> = snap.iter().map(|x| x.base.raw()).collect();
        assert_eq!(bases, vec![0x1000, 0x3000, 0x5000, 0x7000, 0x9000]);
    }

    #[test]
    fn lookup_splays_hot_region_to_root() {
        let mut t = SplayRegionTree::new();
        for i in 0..64u64 {
            t.insert(r(i * 0x1000, 0x800)).unwrap();
        }
        let hot = VAddr(17 * 0x1000);
        let _ = t.lookup(hot, Size(8), AccessFlags::READ);
        assert_eq!(t.depth_of(hot), Some(0), "hot region must be at the root");
        // Hit it again: still at root, O(1).
        let _ = t.lookup(hot, Size(8), AccessFlags::READ);
        assert_eq!(t.depth_of(hot), Some(0));
    }

    #[test]
    fn overlap_rejected() {
        let mut t = SplayRegionTree::new();
        t.insert(r(0x1000, 0x1000)).unwrap();
        assert!(matches!(
            t.insert(r(0x1800, 0x1000)).unwrap_err(),
            PolicyError::Overlap { .. }
        ));
        assert!(matches!(
            t.insert(r(0x0800, 0x900)).unwrap_err(),
            PolicyError::Overlap { .. }
        ));
        // Enclosing region also rejected.
        assert!(matches!(
            t.insert(r(0x0, 0x10000)).unwrap_err(),
            PolicyError::Overlap { .. }
        ));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_joins_subtrees_correctly() {
        let mut t = SplayRegionTree::new();
        for base in [0x4000u64, 0x2000, 0x6000, 0x1000, 0x3000, 0x5000, 0x7000] {
            t.insert(r(base, 0x100)).unwrap();
        }
        t.remove(VAddr(0x4000)).unwrap();
        let snap = t.snapshot();
        let bases: Vec<u64> = snap.iter().map(|x| x.base.raw()).collect();
        assert_eq!(bases, vec![0x1000, 0x2000, 0x3000, 0x5000, 0x6000, 0x7000]);
        // All remaining regions still reachable.
        for b in bases {
            assert!(matches!(
                t.lookup(VAddr(b), Size(1), AccessFlags::READ),
                Lookup::Permitted(_)
            ));
        }
    }

    #[test]
    fn node_reuse_after_remove() {
        let mut t = SplayRegionTree::new();
        t.insert(r(0x1000, 0x100)).unwrap();
        t.remove(VAddr(0x1000)).unwrap();
        t.insert(r(0x2000, 0x100)).unwrap();
        assert_eq!(t.nodes.len(), 1, "freed node must be reused");
        assert!(matches!(
            t.lookup(VAddr(0x2000), Size(1), AccessFlags::READ),
            Lookup::Permitted(_)
        ));
    }
}
