//! [`FrozenStore`] — the immutable snapshot-side region structure.
//!
//! Mutable stores ([`crate::store::RegionStore`]) keep `lookup(&mut self)`
//! because self-adjusting structures (splay, last-hit cache) reorganize on
//! reads. The *published* side must not: the SMP check path (DESIGN §3.13)
//! reads a snapshot concurrently from every core, so it needs a `&self`
//! lookup. Historically [`crate::snapshot::PolicySnapshot`] answered that
//! with a flat `Vec<Region>` scan — O(n) per check, which is exactly the
//! scaling wall the fleet experiment measures. `FrozenStore` is built once
//! at publish time from `RegionStore::snapshot()` and serves O(log n)
//! lookups with **bit-exact** flat-scan semantics:
//!
//! * Permitted(r) where `r` is the *first region in store order* that
//!   covers the whole access and grants the intent,
//! * else Forbidden(c) where `c` is the first covering region in store
//!   order,
//! * else NoMatch.
//!
//! Store order is whatever `RegionStore::snapshot()` returned (insertion
//! order for the table, base order for the trees) — the frozen index
//! remembers each region's position so the tiebreak is preserved even when
//! the search visits regions out of order.

use kop_core::{AccessFlags, Region, Size, VAddr};

use crate::store::Lookup;

/// How a [`FrozenStore`] indexes its regions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrozenKind {
    /// Linear scan over store order — the legacy structure, kept as the
    /// measured baseline and for tiny sets where a scan wins.
    Flat,
    /// Disjoint regions sorted by base: one `partition_point` probe.
    Sorted,
    /// Overlapping regions: layered decomposition — base-sorted regions
    /// greedily partitioned into pairwise-disjoint layers, one binary
    /// search per layer. O(L · log n) with L = max overlap depth, and
    /// every probe walks a contiguous array (no pointer chasing), so a
    /// fleet-shaped set (thousands of disjoint rules under a few shared
    /// windows) pays L = 2 cache-friendly searches.
    Interval,
}

impl FrozenKind {
    /// Name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FrozenKind::Flat => "flat",
            FrozenKind::Sorted => "frozen-sorted",
            FrozenKind::Interval => "frozen-interval",
        }
    }
}

/// One entry of a layer: a region plus its position in the original
/// store order (the tiebreak among overlapping candidates).
#[derive(Clone, Copy, Debug)]
struct Entry {
    region: Region,
    order: usize,
}

#[derive(Clone, Debug)]
enum Index {
    Flat,
    /// Base-sorted, pairwise-disjoint regions (store-order positions are
    /// irrelevant for disjoint sets: at most one region covers an access).
    Sorted(Vec<Region>),
    /// Layered decomposition: each layer is base-sorted and pairwise
    /// disjoint, so within a layer at most one region can cover an
    /// access — found with one `partition_point` probe. Every region
    /// lives in exactly one layer, so probing all layers visits every
    /// possible covering candidate.
    Interval(Vec<Vec<Entry>>),
}

/// Immutable region set with `&self` lookup, built at snapshot-publish
/// time. See the module docs for the exact semantics contract.
#[derive(Clone, Debug)]
pub struct FrozenStore {
    /// Regions in original store order (what `regions()` exposes).
    regions: Vec<Region>,
    index: Index,
}

impl FrozenStore {
    /// Build the best index for this region set: a one-probe sorted array
    /// when the set is pairwise disjoint, an augmented interval tree
    /// otherwise. `regions` is the store-order snapshot.
    pub fn build(regions: Vec<Region>) -> FrozenStore {
        let mut sorted: Vec<(usize, Region)> = regions.iter().copied().enumerate().collect();
        sorted.sort_by_key(|(_, r)| r.base);
        let disjoint = sorted.windows(2).all(|w| !w[0].1.overlaps(&w[1].1));
        let index = if disjoint {
            Index::Sorted(sorted.into_iter().map(|(_, r)| r).collect())
        } else {
            // Greedy interval partitioning in base order: each region
            // goes into the first layer whose most recent region it
            // does not overlap. Layers stay base-sorted and disjoint.
            let mut layers: Vec<Vec<Entry>> = Vec::new();
            'place: for (order, region) in sorted {
                let entry = Entry { region, order };
                for layer in &mut layers {
                    if !layer.last().is_some_and(|e| e.region.overlaps(&region)) {
                        layer.push(entry);
                        continue 'place;
                    }
                }
                layers.push(vec![entry]);
            }
            Index::Interval(layers)
        };
        FrozenStore { regions, index }
    }

    /// Build a flat-scan store over the same regions — the legacy baseline
    /// the `store_lookup` bench and the fleet figure measure against.
    pub fn flat(regions: Vec<Region>) -> FrozenStore {
        FrozenStore {
            regions,
            index: Index::Flat,
        }
    }

    /// Which index this store built.
    pub fn kind(&self) -> FrozenKind {
        match self.index {
            Index::Flat => FrozenKind::Flat,
            Index::Sorted(_) => FrozenKind::Sorted,
            Index::Interval(_) => FrozenKind::Interval,
        }
    }

    /// The regions in original store order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the store holds no regions.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Classify an access — immutable, safe to call concurrently from
    /// every core. Semantics are bit-exact with a forward linear scan of
    /// `regions()` (any-grant-wins, first in store order).
    #[inline]
    pub fn lookup_frozen(&self, addr: VAddr, size: Size, flags: AccessFlags) -> Lookup {
        match &self.index {
            Index::Flat => {
                let mut covering: Option<Region> = None;
                for r in &self.regions {
                    if r.covers(addr, size) {
                        if r.prot.allows(flags) {
                            return Lookup::Permitted(*r);
                        }
                        covering.get_or_insert(*r);
                    }
                }
                match covering {
                    Some(r) => Lookup::Forbidden(r),
                    None => Lookup::NoMatch,
                }
            }
            Index::Sorted(sorted) => {
                // Disjoint: the only candidate is the last region with
                // base <= addr.
                let n = sorted.partition_point(|r| r.base <= addr);
                let Some(r) = n.checked_sub(1).map(|i| sorted[i]) else {
                    return Lookup::NoMatch;
                };
                if !r.covers(addr, size) {
                    return Lookup::NoMatch;
                }
                if r.prot.allows(flags) {
                    Lookup::Permitted(r)
                } else {
                    Lookup::Forbidden(r)
                }
            }
            Index::Interval(layers) => {
                // One probe per layer: within a layer the only possible
                // coverer of `addr` is the last region with base <=
                // addr. Track the granting and covering candidates with
                // the smallest store-order index — no early exit, the
                // first-in-store-order grant may sit in any layer.
                let mut grant: Option<(usize, Region)> = None;
                let mut cover: Option<(usize, Region)> = None;
                for layer in layers {
                    let n = layer.partition_point(|e| e.region.base <= addr);
                    let Some(e) = n.checked_sub(1).map(|i| layer[i]) else {
                        continue;
                    };
                    if !e.region.covers(addr, size) {
                        continue;
                    }
                    if e.region.prot.allows(flags) {
                        if grant.is_none_or(|(o, _)| e.order < o) {
                            grant = Some((e.order, e.region));
                        }
                    } else if cover.is_none_or(|(o, _)| e.order < o) {
                        cover = Some((e.order, e.region));
                    }
                }
                if let Some((_, r)) = grant {
                    Lookup::Permitted(r)
                } else if let Some((_, r)) = cover {
                    Lookup::Forbidden(r)
                } else {
                    Lookup::NoMatch
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_core::Protection;

    fn r(base: u64, len: u64, prot: Protection) -> Region {
        Region::new(VAddr(base), Size(len), prot).unwrap()
    }

    fn scan(regions: &[Region], addr: VAddr, size: Size, flags: AccessFlags) -> Lookup {
        let mut covering: Option<Region> = None;
        for reg in regions {
            if reg.covers(addr, size) {
                if reg.prot.allows(flags) {
                    return Lookup::Permitted(*reg);
                }
                covering.get_or_insert(*reg);
            }
        }
        match covering {
            Some(reg) => Lookup::Forbidden(reg),
            None => Lookup::NoMatch,
        }
    }

    #[test]
    fn disjoint_set_builds_sorted_index() {
        let regions = vec![
            r(0x3000, 0x100, Protection::ALL),
            r(0x1000, 0x100, Protection::READ_ONLY),
        ];
        let f = FrozenStore::build(regions.clone());
        assert_eq!(f.kind(), FrozenKind::Sorted);
        for addr in [0x1000u64, 0x1080, 0x1100, 0x3000, 0x30f8, 0x5000] {
            for flags in [AccessFlags::READ, AccessFlags::WRITE, AccessFlags::RW] {
                assert_eq!(
                    f.lookup_frozen(VAddr(addr), Size(8), flags),
                    scan(&regions, VAddr(addr), Size(8), flags),
                    "addr {addr:#x} flags {flags:?}"
                );
            }
        }
    }

    #[test]
    fn overlapping_set_builds_interval_index() {
        // Blanket NONE first, inner ALL second: flat scan grants via the
        // second region; forbidden fallback reports the *first* covering.
        let regions = vec![
            r(0x1000, 0x10000, Protection::READ_ONLY),
            r(0x4000, 0x1000, Protection::READ_WRITE),
        ];
        let f = FrozenStore::build(regions.clone());
        assert_eq!(f.kind(), FrozenKind::Interval);
        for addr in (0x0800..0x12000u64).step_by(0x200) {
            for flags in [AccessFlags::READ, AccessFlags::WRITE, AccessFlags::RW] {
                assert_eq!(
                    f.lookup_frozen(VAddr(addr), Size(8), flags),
                    scan(&regions, VAddr(addr), Size(8), flags),
                    "addr {addr:#x} flags {flags:?}"
                );
            }
        }
    }

    #[test]
    fn store_order_tiebreak_preserved() {
        // Two overlapping regions both grant: flat scan returns the FIRST
        // in store order even though it sorts second by base.
        let regions = vec![
            r(0x2000, 0x2000, Protection::ALL),
            r(0x1000, 0x4000, Protection::ALL),
        ];
        let f = FrozenStore::build(regions.clone());
        let got = f.lookup_frozen(VAddr(0x2800), Size(8), AccessFlags::READ);
        assert_eq!(got, Lookup::Permitted(regions[0]));
        // Both cover but neither grants a write: Forbidden reports the
        // first covering in store order.
        let regions = vec![
            r(0x2000, 0x2000, Protection::READ_ONLY),
            r(0x1000, 0x4000, Protection::READ_ONLY),
        ];
        let f = FrozenStore::build(regions.clone());
        let got = f.lookup_frozen(VAddr(0x2800), Size(8), AccessFlags::WRITE);
        assert_eq!(got, Lookup::Forbidden(regions[0]));
    }

    #[test]
    fn flat_baseline_matches_build() {
        let regions = vec![
            r(0x0, 0x100000, Protection::NONE),
            r(0x10000, 0x10000, Protection::READ_ONLY),
            r(0x14000, 0x1000, Protection::READ_WRITE),
        ];
        let flat = FrozenStore::flat(regions.clone());
        let built = FrozenStore::build(regions);
        assert_eq!(flat.kind(), FrozenKind::Flat);
        for addr in (0u64..0x120000).step_by(0x1000) {
            for flags in [AccessFlags::READ, AccessFlags::WRITE] {
                assert_eq!(
                    flat.lookup_frozen(VAddr(addr), Size(8), flags),
                    built.lookup_frozen(VAddr(addr), Size(8), flags),
                );
            }
        }
    }

    #[test]
    fn empty_store_is_no_match() {
        let f = FrozenStore::build(Vec::new());
        assert!(f.is_empty());
        assert_eq!(
            f.lookup_frozen(VAddr(0x1000), Size(8), AccessFlags::READ),
            Lookup::NoMatch
        );
    }

    #[test]
    fn large_disjoint_set_probes_correctly() {
        let regions: Vec<Region> = (0..4096u64)
            .map(|i| r(i * 0x1000, 0x800, Protection::ALL))
            .collect();
        let f = FrozenStore::build(regions.clone());
        assert_eq!(f.kind(), FrozenKind::Sorted);
        assert!(matches!(
            f.lookup_frozen(VAddr(2048 * 0x1000 + 4), Size(8), AccessFlags::RW),
            Lookup::Permitted(_)
        ));
        assert_eq!(
            f.lookup_frozen(VAddr(2048 * 0x1000 + 0x800), Size(8), AccessFlags::RW),
            Lookup::NoMatch
        );
    }

    #[test]
    fn region_ending_at_address_space_top() {
        // last() is inclusive u64::MAX; end() would be None. The interval
        // augmentation must survive this.
        let regions = vec![
            r(0, u64::MAX, Protection::READ_ONLY),
            r(0x1000, 0x1000, Protection::ALL),
        ];
        let f = FrozenStore::build(regions.clone());
        assert_eq!(f.kind(), FrozenKind::Interval);
        for addr in [0u64, 0x1000, 0x1800, 0x2000, u64::MAX - 8] {
            for flags in [AccessFlags::READ, AccessFlags::WRITE] {
                assert_eq!(
                    f.lookup_frozen(VAddr(addr), Size(8), flags),
                    scan(&regions, VAddr(addr), Size(8), flags),
                    "addr {addr:#x}"
                );
            }
        }
    }
}
