//! [`NamespaceStore`] — sharded per-module policy namespaces.
//!
//! With one global policy, every tenant's ruleset churn bumps one shared
//! generation, flushing *every* module's guard TLB and hot tier; and the
//! check path scans one flat table holding every tenant's regions. The
//! namespace store splits both axes (DESIGN §3.19):
//!
//! * each module id maps to its **own** [`PolicyModule`], so a tenant's
//!   publish bumps only its own per-namespace generation — other tenants'
//!   cached grants stay warm;
//! * the map is sharded by module-id hash, so concurrent insmod of many
//!   tenants contends on different locks (and never on the check path,
//!   which holds only an `Arc` to its tenant's policy);
//! * the **revocation epoch** stays global in semantics but is fanned out
//!   to a per-policy atomic: [`NamespaceStore::revoke_all`] walks the
//!   registry once (cold path, O(tenants)) so the guard hot path pays one
//!   `SeqCst` load instead of a shared-cacheline hit on every check.
//!
//! Namespace ids are never reused: re-registering a module id assigns a
//! fresh id, so cache entries tagged with the old `(namespace,
//! generation)` pair can never match the replacement policy.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::module::PolicyModule;

/// Number of shards. A power of two well above typical core counts:
/// concurrent registration of distinct tenants almost never shares a
/// lock, and the per-shard maps stay tiny even at a 1000-module fleet.
pub const NAMESPACE_SHARDS: usize = 64;

/// FNV-1a — cheap, deterministic (no per-process seed), good enough to
/// spread module names across 64 shards.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h as usize) & (NAMESPACE_SHARDS - 1)
}

#[derive(Clone)]
struct Entry {
    ns: u64,
    policy: Arc<PolicyModule>,
}

/// Sharded module-id → policy namespace map. See the module docs.
pub struct NamespaceStore {
    shards: Vec<RwLock<HashMap<String, Entry>>>,
    /// Monotonic namespace id allocator. Starts at 2: id 1 is reserved
    /// for the kernel's global (default) policy, 0 means unbound.
    next_ns: AtomicU64,
    /// The fall-back policy for modules with no namespace of their own.
    global: Arc<PolicyModule>,
    /// Count of fleet-wide revocations (diagnostics; the authoritative
    /// epoch lives in each policy's atomic).
    revocations: AtomicU64,
}

/// Namespace id reserved for the global (default) policy.
pub const GLOBAL_NAMESPACE: u64 = 1;

impl NamespaceStore {
    /// A store whose fall-back is `global` (bound to namespace id 1).
    pub fn new(global: Arc<PolicyModule>) -> NamespaceStore {
        global.set_namespace(GLOBAL_NAMESPACE);
        NamespaceStore {
            shards: (0..NAMESPACE_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            next_ns: AtomicU64::new(GLOBAL_NAMESPACE + 1),
            global,
            revocations: AtomicU64::new(0),
        }
    }

    /// The global (fall-back) policy.
    pub fn global(&self) -> &Arc<PolicyModule> {
        &self.global
    }

    /// Register (or replace) the policy namespace for `module`. The
    /// policy is bound to a **fresh** namespace id either way — ids are
    /// never reused, so grants cached under a previous registration of
    /// the same module id can never satisfy checks against the new
    /// policy. Returns the assigned id.
    pub fn register(&self, module: &str, policy: Arc<PolicyModule>) -> u64 {
        let ns = self.next_ns.fetch_add(1, Ordering::SeqCst);
        policy.set_namespace(ns);
        let entry = Entry {
            ns,
            policy: Arc::clone(&policy),
        };
        self.shards[shard_of(module)]
            .write()
            .insert(module.to_string(), entry);
        ns
    }

    /// The policy for `module`, if it has a namespace of its own.
    pub fn get(&self, module: &str) -> Option<Arc<PolicyModule>> {
        self.shards[shard_of(module)]
            .read()
            .get(module)
            .map(|e| Arc::clone(&e.policy))
    }

    /// The namespace id for `module`, if registered.
    pub fn namespace_of(&self, module: &str) -> Option<u64> {
        self.shards[shard_of(module)].read().get(module).map(|e| e.ns)
    }

    /// The policy that governs `module`: its own namespace if registered,
    /// else the global fall-back. This is the loader/check-path resolver;
    /// one shard read-lock (uncontended unless that shard is registering).
    pub fn resolve(&self, module: &str) -> Arc<PolicyModule> {
        self.get(module)
            .unwrap_or_else(|| Arc::clone(&self.global))
    }

    /// Drop `module`'s namespace (its modules fall back to the global
    /// policy). The removed policy keeps its id — nothing else will ever
    /// be bound to it. Returns the removed policy, if any.
    pub fn remove(&self, module: &str) -> Option<Arc<PolicyModule>> {
        self.shards[shard_of(module)]
            .write()
            .remove(module)
            .map(|e| e.policy)
    }

    /// Number of registered namespaces (excluding the global fall-back).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether no per-module namespaces are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registered module ids (diagnostics; unordered across shards).
    pub fn modules(&self) -> Vec<String> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.read().keys().cloned());
        }
        out
    }

    /// Fleet-wide revocation: advance the revocation epoch of **every**
    /// policy — the global one and each namespace's — so every cached
    /// grant in every tier (TLB, hot slots, promoted inline caches) goes
    /// stale at once, without republishing any ruleset. Cold path:
    /// O(tenants) atomic bumps; the guard hot path still pays exactly one
    /// epoch load. Returns how many policies were bumped.
    pub fn revoke_all(&self) -> usize {
        self.global.bump_revocation();
        let mut bumped = 1;
        for shard in &self.shards {
            // Clone the Arcs out so the bump runs without holding the
            // shard lock (a concurrent register/resolve never waits on
            // a revocation sweep).
            let policies: Vec<Arc<PolicyModule>> = shard
                .read()
                .values()
                .map(|e| Arc::clone(&e.policy))
                .collect();
            for p in policies {
                p.bump_revocation();
                bumped += 1;
            }
        }
        self.revocations.fetch_add(1, Ordering::SeqCst);
        bumped
    }

    /// How many fleet-wide revocations have run.
    pub fn revocation_count(&self) -> u64 {
        self.revocations.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_core::{AccessFlags, Protection, Region, Size, VAddr};

    fn rw_policy(base: u64) -> Arc<PolicyModule> {
        let pm = PolicyModule::new();
        pm.add_region(Region::new(VAddr(base), Size(0x1000), Protection::READ_WRITE).unwrap())
            .unwrap();
        Arc::new(pm)
    }

    #[test]
    fn resolve_falls_back_to_global() {
        let ns = NamespaceStore::new(rw_policy(0x1000));
        assert_eq!(ns.global().namespace(), GLOBAL_NAMESPACE);
        let p = ns.resolve("unregistered");
        assert!(p.check(VAddr(0x1100), Size(8), AccessFlags::RW).is_ok());
        assert!(ns.get("unregistered").is_none());
        assert!(ns.is_empty());
    }

    #[test]
    fn register_assigns_fresh_monotonic_ids() {
        let ns = NamespaceStore::new(rw_policy(0x1000));
        let a = ns.register("mod_a", rw_policy(0x10_0000));
        let b = ns.register("mod_b", rw_policy(0x20_0000));
        assert!(a > GLOBAL_NAMESPACE);
        assert_ne!(a, b);
        assert_eq!(ns.namespace_of("mod_a"), Some(a));
        assert_eq!(ns.resolve("mod_a").namespace(), a);
        assert_eq!(ns.len(), 2);
        // Replacement gets a NEW id — old cached (ns, gen) tags die.
        let a2 = ns.register("mod_a", rw_policy(0x30_0000));
        assert!(a2 > b);
        assert_eq!(ns.namespace_of("mod_a"), Some(a2));
        assert_eq!(ns.len(), 2);
    }

    #[test]
    fn tenant_churn_does_not_touch_other_namespaces() {
        let ns = NamespaceStore::new(rw_policy(0x1000));
        ns.register("mod_a", rw_policy(0x10_0000));
        ns.register("mod_b", rw_policy(0x20_0000));
        let a = ns.resolve("mod_a");
        let b = ns.resolve("mod_b");
        let b_gen = b.store_generation();
        let global_gen = ns.global().store_generation();
        // Churn tenant A's ruleset hard.
        for i in 0..16u64 {
            a.add_region(
                Region::new(
                    VAddr(0x40_0000 + i * 0x2000),
                    Size(0x1000),
                    Protection::READ_ONLY,
                )
                .unwrap(),
            )
            .unwrap();
        }
        assert_eq!(b.store_generation(), b_gen, "tenant B unaffected");
        assert_eq!(ns.global().store_generation(), global_gen);
    }

    #[test]
    fn revoke_all_bumps_every_policy_once() {
        let ns = NamespaceStore::new(rw_policy(0x1000));
        ns.register("mod_a", rw_policy(0x10_0000));
        ns.register("mod_b", rw_policy(0x20_0000));
        let before: Vec<u64> = ["mod_a", "mod_b"]
            .iter()
            .map(|m| ns.resolve(m).revocation_epoch())
            .collect();
        let g_before = ns.global().revocation_epoch();
        assert_eq!(ns.revoke_all(), 3);
        for (i, m) in ["mod_a", "mod_b"].iter().enumerate() {
            assert_eq!(ns.resolve(m).revocation_epoch(), before[i] + 1);
        }
        assert_eq!(ns.global().revocation_epoch(), g_before + 1);
        assert_eq!(ns.revocation_count(), 1);
        // Generations did NOT move — revocation is epoch-only.
        assert_eq!(ns.resolve("mod_a").snapshot_publishes(), 1);
    }

    #[test]
    fn remove_restores_fallback() {
        let ns = NamespaceStore::new(rw_policy(0x1000));
        ns.register("mod_a", rw_policy(0x10_0000));
        let removed = ns.remove("mod_a").expect("registered");
        assert!(removed.namespace() > GLOBAL_NAMESPACE, "keeps its id");
        assert_eq!(ns.resolve("mod_a").namespace(), GLOBAL_NAMESPACE);
        assert!(ns.remove("mod_a").is_none());
    }

    #[test]
    fn concurrent_registration_across_shards() {
        let ns = Arc::new(NamespaceStore::new(rw_policy(0x1000)));
        let mut handles = Vec::new();
        for t in 0..8 {
            let ns = Arc::clone(&ns);
            handles.push(std::thread::spawn(move || {
                for i in 0..32 {
                    ns.register(&format!("mod_{t}_{i}"), rw_policy(0x10_0000));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ns.len(), 8 * 32);
        // All ids distinct.
        let mut ids: Vec<u64> = ns
            .modules()
            .iter()
            .map(|m| ns.namespace_of(m).unwrap())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8 * 32);
    }
}
