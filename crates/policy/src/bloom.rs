//! AMQ-filter front over the region table (paper §3.1: *"Probabilistic
//! structures, like any of a variety of AMQ-filters, may very well improve
//! average performance"*).
//!
//! Soundness note: a Bloom filter answers "possibly in set" / "definitely
//! not in set". Because false *positives* exist, the filter can never be
//! the authority for **allowing** an access — that would let a colliding
//! address through the firewall. The sound construction (used here) is:
//!
//! * the filter holds the 4 KiB pages that are fully covered by at least
//!   one policy region, tagged with the access intents granted there;
//! * "definitely not present" short-circuits to the default action without
//!   touching the table — this accelerates the deny path and the
//!   miss-heavy workloads;
//! * "possibly present" falls through to the authoritative 64-entry table.
//!
//! For allow-heavy workloads (the paper's common case) the filter is pure
//! overhead; the ablation bench quantifies exactly that trade-off.

use kop_core::layout::PAGE_SHIFT;
use kop_core::{AccessFlags, Region, Size, VAddr};

use crate::store::{Lookup, PolicyError, RegionStore, StoreKind};
use crate::table::RegionTable;

const FILTER_BITS: usize = 1 << 16; // 64 Kib = 8 KiB of filter
const NUM_HASHES: u32 = 3;

/// Bloom filter keyed by (page, intent-bit).
#[derive(Clone)]
struct PageFilter {
    bits: Vec<u64>,
}

impl PageFilter {
    fn new() -> PageFilter {
        PageFilter {
            bits: vec![0u64; FILTER_BITS / 64],
        }
    }

    fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
    }

    fn hash(page: u64, intent_bit: u32, k: u32) -> usize {
        // Fibonacci-style mixing; distinct streams per hash index.
        let x = page
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(17 + 11 * k)
            .wrapping_add((intent_bit as u64) << 7)
            .wrapping_add(k as u64)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        (x >> 40) as usize % FILTER_BITS
    }

    fn insert(&mut self, page: u64, intent_bit: u32) {
        for k in 0..NUM_HASHES {
            let b = Self::hash(page, intent_bit, k);
            self.bits[b / 64] |= 1 << (b % 64);
        }
    }

    fn maybe_contains(&self, page: u64, intent_bit: u32) -> bool {
        (0..NUM_HASHES).all(|k| {
            let b = Self::hash(page, intent_bit, k);
            self.bits[b / 64] & (1 << (b % 64)) != 0
        })
    }
}

/// Bloom filter front + authoritative region table.
#[derive(Clone)]
pub struct BloomFrontTable {
    filter: PageFilter,
    table: RegionTable,
}

impl Default for BloomFrontTable {
    fn default() -> Self {
        Self::new()
    }
}

impl BloomFrontTable {
    /// An empty store.
    pub fn new() -> BloomFrontTable {
        BloomFrontTable {
            filter: PageFilter::new(),
            table: RegionTable::new(),
        }
    }

    fn index_region(&mut self, r: &Region) {
        // Insert every page the region touches, per granted intent bit.
        let first_page = r.base.raw() >> PAGE_SHIFT;
        let last = r.last().expect("validated").raw();
        let last_page = last >> PAGE_SHIFT;
        for page in first_page..=last_page {
            for intent in [AccessFlags::READ, AccessFlags::WRITE, AccessFlags::EXEC] {
                if r.prot.allows(intent) {
                    self.filter.insert(page, intent.raw());
                }
            }
            // Also index a presence bit (intent 0) so covered-but-forbidden
            // accesses are classified by the table, not the default action.
            self.filter.insert(page, 0);
        }
    }

    fn rebuild_filter(&mut self) {
        self.filter.clear();
        for r in self.table.snapshot() {
            self.index_region(&r);
        }
    }
}

impl RegionStore for BloomFrontTable {
    fn kind(&self) -> StoreKind {
        StoreKind::BloomFront
    }

    fn insert(&mut self, region: Region) -> Result<(), PolicyError> {
        self.table.insert(region)?;
        self.index_region(&region);
        Ok(())
    }

    fn remove(&mut self, base: VAddr) -> Result<Region, PolicyError> {
        let removed = self.table.remove(base)?;
        // Bloom filters do not support deletion; rebuild.
        self.rebuild_filter();
        Ok(removed)
    }

    fn clear(&mut self) {
        self.table.clear();
        self.filter.clear();
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn snapshot(&self) -> Vec<Region> {
        self.table.snapshot()
    }

    #[inline]
    fn lookup(&mut self, addr: VAddr, size: Size, flags: AccessFlags) -> Lookup {
        // Fast negative path: if the first page of the access is definitely
        // not indexed at all, no region covers it.
        let page = addr.raw() >> PAGE_SHIFT;
        if !self.filter.maybe_contains(page, 0) {
            return Lookup::NoMatch;
        }
        // Optional sharper check: if the page may be present but definitely
        // lacks one of the requested intent bits, the table can still only
        // say Forbidden/NoMatch — but Forbidden vs NoMatch matters for
        // diagnostics, so fall through to the table either way.
        let _ = flags;
        self.table.lookup(addr, size, flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_core::Protection;

    fn r(base: u64, len: u64, prot: Protection) -> Region {
        Region::new(VAddr(base), Size(len), prot).unwrap()
    }

    #[test]
    fn agrees_with_plain_table() {
        let mut bloom = BloomFrontTable::new();
        let mut table = RegionTable::new();
        let regions = [
            r(0x10_0000, 0x4000, Protection::READ_WRITE),
            r(0x20_0000, 0x1000, Protection::READ_ONLY),
            r(0x30_0000, 0x10, Protection::ALL),
        ];
        for reg in regions {
            bloom.insert(reg).unwrap();
            table.insert(reg).unwrap();
        }
        let probes = [
            (0x10_0008u64, 8u64, AccessFlags::RW),
            (0x20_0000, 4, AccessFlags::WRITE),
            (0x20_0000, 4, AccessFlags::READ),
            (0x40_0000, 8, AccessFlags::READ),
            (0x30_0008, 8, AccessFlags::RW),
            (0x30_000c, 8, AccessFlags::RW), // straddles out
        ];
        for (a, s, f) in probes {
            assert_eq!(
                bloom.lookup(VAddr(a), Size(s), f),
                table.lookup(VAddr(a), Size(s), f),
                "disagreement at {a:#x}"
            );
        }
    }

    #[test]
    fn negative_path_short_circuits() {
        let mut bloom = BloomFrontTable::new();
        bloom.insert(r(0x10_0000, 0x1000, Protection::ALL)).unwrap();
        // An address far away: almost surely a filter miss → NoMatch
        // without a table walk. (Probabilistic, but with 3 hashes over a
        // 64 Ki-bit filter holding ~2 pages, a false positive here would
        // be astronomically unlikely — and even then the result is still
        // correct, just slower.)
        assert_eq!(
            bloom.lookup(VAddr(0xdead_0000), Size(8), AccessFlags::READ),
            Lookup::NoMatch
        );
    }

    #[test]
    fn remove_rebuilds_filter() {
        let mut bloom = BloomFrontTable::new();
        bloom.insert(r(0x10_0000, 0x1000, Protection::ALL)).unwrap();
        bloom.insert(r(0x20_0000, 0x1000, Protection::ALL)).unwrap();
        bloom.remove(VAddr(0x10_0000)).unwrap();
        assert_eq!(
            bloom.lookup(VAddr(0x10_0000), Size(8), AccessFlags::READ),
            Lookup::NoMatch
        );
        assert!(matches!(
            bloom.lookup(VAddr(0x20_0000), Size(8), AccessFlags::READ),
            Lookup::Permitted(_)
        ));
        assert_eq!(bloom.len(), 1);
    }

    #[test]
    fn capacity_inherited_from_table() {
        let mut bloom = BloomFrontTable::new();
        for i in 0..64u64 {
            bloom
                .insert(r(i * 0x10_0000, 0x1000, Protection::ALL))
                .unwrap();
        }
        assert!(matches!(
            bloom
                .insert(r(0xffff_0000, 0x1000, Protection::ALL))
                .unwrap_err(),
            PolicyError::TableFull { .. }
        ));
    }

    #[test]
    fn multi_page_region_indexed_fully() {
        let mut bloom = BloomFrontTable::new();
        // 4 pages.
        bloom
            .insert(r(0x40_0000, 0x4000, Protection::READ_WRITE))
            .unwrap();
        for off in (0u64..0x4000).step_by(0x1000) {
            assert!(matches!(
                bloom.lookup(VAddr(0x40_0000 + off), Size(8), AccessFlags::RW),
                Lookup::Permitted(_)
            ));
        }
    }
}
