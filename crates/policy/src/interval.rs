//! Augmented interval tree — the comparator the paper names directly
//! (§3.1): *"the Linux kernel's red-black tree (even though the tree would
//! have O(log n) time complexity)"*. Linux tracks VMAs in an rbtree
//! augmented with subtree max-end; this is the same structure implemented
//! as an AVL tree (same O(log n) bound, simpler balancing).
//!
//! Unlike the sorted table and splay tree, the interval tree *can* maintain
//! overlapping regions — the augmentation exists precisely to answer
//! stabbing queries over overlapping intervals.

use kop_core::{AccessFlags, Region, Size, VAddr};

use crate::store::{validate_region, Lookup, PolicyError, RegionStore, StoreKind};

#[derive(Clone, Debug)]
struct Node {
    region: Region,
    /// Last address of the region (inclusive) — cached.
    last: VAddr,
    /// Max `last` over this whole subtree (the augmentation).
    max_last: VAddr,
    height: i32,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

impl Node {
    fn new(region: Region) -> Box<Node> {
        let last = region.last().expect("validated non-empty");
        Box::new(Node {
            region,
            last,
            max_last: last,
            height: 1,
            left: None,
            right: None,
        })
    }

    fn update(&mut self) {
        self.height = 1 + height(&self.left).max(height(&self.right));
        self.max_last = self.last;
        if let Some(l) = &self.left {
            self.max_last = self.max_last.max(l.max_last);
        }
        if let Some(r) = &self.right {
            self.max_last = self.max_last.max(r.max_last);
        }
    }

    fn balance_factor(&self) -> i32 {
        height(&self.left) - height(&self.right)
    }
}

fn height(n: &Option<Box<Node>>) -> i32 {
    n.as_ref().map_or(0, |x| x.height)
}

fn rotate_right(mut root: Box<Node>) -> Box<Node> {
    let mut new_root = root.left.take().expect("rotate_right needs left child");
    root.left = new_root.right.take();
    root.update();
    new_root.right = Some(root);
    new_root.update();
    new_root
}

fn rotate_left(mut root: Box<Node>) -> Box<Node> {
    let mut new_root = root.right.take().expect("rotate_left needs right child");
    root.right = new_root.left.take();
    root.update();
    new_root.left = Some(root);
    new_root.update();
    new_root
}

fn rebalance(mut node: Box<Node>) -> Box<Node> {
    node.update();
    let bf = node.balance_factor();
    if bf > 1 {
        if node.left.as_ref().expect("bf>1").balance_factor() < 0 {
            node.left = Some(rotate_left(node.left.take().expect("bf>1")));
        }
        rotate_right(node)
    } else if bf < -1 {
        if node.right.as_ref().expect("bf<-1").balance_factor() > 0 {
            node.right = Some(rotate_right(node.right.take().expect("bf<-1")));
        }
        rotate_left(node)
    } else {
        node
    }
}

fn insert_node(node: Option<Box<Node>>, region: Region) -> Box<Node> {
    match node {
        None => Node::new(region),
        Some(mut n) => {
            if region.base < n.region.base {
                n.left = Some(insert_node(n.left.take(), region));
            } else {
                n.right = Some(insert_node(n.right.take(), region));
            }
            rebalance(n)
        }
    }
}

/// BST search for a node whose region has exactly this base.
fn find_base(node: &Option<Box<Node>>, base: VAddr) -> Option<Region> {
    let mut cur = node;
    while let Some(n) = cur {
        if base < n.region.base {
            cur = &n.left;
        } else if base > n.region.base {
            cur = &n.right;
        } else {
            return Some(n.region);
        }
    }
    None
}

fn remove_node(node: Option<Box<Node>>, base: VAddr) -> (Option<Box<Node>>, Option<Region>) {
    let Some(mut n) = node else {
        return (None, None);
    };
    let removed;
    if base < n.region.base {
        let (l, r) = remove_node(n.left.take(), base);
        n.left = l;
        removed = r;
    } else if base > n.region.base {
        let (rnode, r) = remove_node(n.right.take(), base);
        n.right = rnode;
        removed = r;
    } else {
        // Found (first node with this base on the search path).
        removed = Some(n.region);
        match (n.left.take(), n.right.take()) {
            (None, None) => return (None, removed),
            (Some(l), None) => return (Some(l), removed),
            (None, Some(r)) => return (Some(r), removed),
            (Some(l), Some(r)) => {
                // Replace with in-order successor (min of right subtree).
                let (r_rest, succ) = take_min(r);
                let mut replacement = Node::new(succ);
                replacement.left = Some(l);
                replacement.right = r_rest;
                return (Some(rebalance(replacement)), removed);
            }
        }
    }
    (Some(rebalance(n)), removed)
}

fn take_min(mut node: Box<Node>) -> (Option<Box<Node>>, Region) {
    if let Some(l) = node.left.take() {
        let (rest, min) = take_min(l);
        node.left = rest;
        (Some(rebalance(node)), min)
    } else {
        (node.right.take(), node.region)
    }
}

/// Stabbing query: visit every region covering the whole `[addr, size)`
/// access, pruned by the max-last augmentation.
fn query(
    node: &Option<Box<Node>>,
    addr: VAddr,
    size: Size,
    flags: AccessFlags,
    covering: &mut Option<Region>,
) -> Option<Region> {
    let n = node.as_ref()?;
    // If nothing in this subtree ends at or after addr, no interval here
    // can contain it.
    if n.max_last < addr {
        return None;
    }
    // Left subtree may contain covering intervals.
    if let Some(found) = query(&n.left, addr, size, flags, covering) {
        return Some(found);
    }
    if n.region.covers(addr, size) {
        if n.region.prot.allows(flags) {
            return Some(n.region);
        }
        covering.get_or_insert(n.region);
    }
    // Right subtree only if intervals there can start at or before addr.
    if n.region.base <= addr {
        if let Some(found) = query(&n.right, addr, size, flags, covering) {
            return Some(found);
        }
    }
    None
}

/// AVL interval tree with max-end augmentation; supports overlapping rules.
#[derive(Clone, Debug, Default)]
pub struct IntervalTree {
    root: Option<Box<Node>>,
    len: usize,
}

impl IntervalTree {
    /// An empty tree.
    pub fn new() -> IntervalTree {
        IntervalTree::default()
    }

    /// Tree height (testing aid for the balance invariant).
    pub fn height(&self) -> i32 {
        height(&self.root)
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        fn walk(n: &Option<Box<Node>>) -> Option<(VAddr, i32)> {
            let node = n.as_ref()?;
            let mut max_last = node.last;
            let mut h = 1;
            if let Some((l_max, l_h)) = walk(&node.left) {
                max_last = max_last.max(l_max);
                h = h.max(1 + l_h);
            }
            if let Some((r_max, r_h)) = walk(&node.right) {
                max_last = max_last.max(r_max);
                h = h.max(1 + r_h);
            }
            assert_eq!(node.max_last, max_last, "augmentation out of date");
            assert_eq!(node.height, h, "height out of date");
            assert!(node.balance_factor().abs() <= 1, "AVL balance violated");
            Some((max_last, h))
        }
        walk(&self.root);
    }
}

impl RegionStore for IntervalTree {
    fn kind(&self) -> StoreKind {
        StoreKind::Interval
    }

    fn insert(&mut self, region: Region) -> Result<(), PolicyError> {
        validate_region(&region)?;
        // Bases key removal; duplicates would make `remove(base)` ambiguous
        // (only the first node on the search path would be reachable), so
        // they are rejected uniformly across all stores.
        if let Some(existing) = find_base(&self.root, region.base) {
            return Err(PolicyError::DuplicateBase { existing });
        }
        self.root = Some(insert_node(self.root.take(), region));
        self.len += 1;
        Ok(())
    }

    fn remove(&mut self, base: VAddr) -> Result<Region, PolicyError> {
        let (root, removed) = remove_node(self.root.take(), base);
        self.root = root;
        match removed {
            Some(r) => {
                self.len -= 1;
                Ok(r)
            }
            None => Err(PolicyError::NoSuchRegion { base }),
        }
    }

    fn clear(&mut self) {
        self.root = None;
        self.len = 0;
    }

    fn len(&self) -> usize {
        self.len
    }

    fn snapshot(&self) -> Vec<Region> {
        fn walk(n: &Option<Box<Node>>, out: &mut Vec<Region>) {
            if let Some(node) = n {
                walk(&node.left, out);
                out.push(node.region);
                walk(&node.right, out);
            }
        }
        let mut out = Vec::with_capacity(self.len);
        walk(&self.root, &mut out);
        out
    }

    #[inline]
    fn lookup(&mut self, addr: VAddr, size: Size, flags: AccessFlags) -> Lookup {
        let mut covering = None;
        match query(&self.root, addr, size, flags, &mut covering) {
            Some(r) => Lookup::Permitted(r),
            None => match covering {
                Some(r) => Lookup::Forbidden(r),
                None => Lookup::NoMatch,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_core::Protection;

    fn r(base: u64, len: u64) -> Region {
        Region::new(VAddr(base), Size(len), Protection::READ_WRITE).unwrap()
    }

    #[test]
    fn insert_many_stays_balanced() {
        let mut t = IntervalTree::new();
        for i in 0..1024u64 {
            t.insert(r(i * 0x1000, 0x800)).unwrap();
        }
        t.check_invariants();
        assert_eq!(t.len(), 1024);
        // AVL height bound: 1.44 log2(n+2) ≈ 14.5 for n=1024.
        assert!(t.height() <= 15, "height {} too large", t.height());
        // All lookups work.
        assert!(matches!(
            t.lookup(VAddr(512 * 0x1000 + 4), Size(8), AccessFlags::RW),
            Lookup::Permitted(_)
        ));
        assert!(matches!(
            t.lookup(VAddr(512 * 0x1000 + 0x800), Size(8), AccessFlags::RW),
            Lookup::NoMatch
        ));
    }

    #[test]
    fn supports_overlapping_rules() {
        let mut t = IntervalTree::new();
        t.insert(Region::new(VAddr(0x1000), Size(0x10000), Protection::READ_ONLY).unwrap())
            .unwrap();
        t.insert(Region::new(VAddr(0x4000), Size(0x1000), Protection::READ_WRITE).unwrap())
            .unwrap();
        t.check_invariants();
        // Write inside the RW window: permitted via the overlapping rule.
        assert!(matches!(
            t.lookup(VAddr(0x4800), Size(8), AccessFlags::WRITE),
            Lookup::Permitted(_)
        ));
        // Write outside the window but inside the RO blanket: forbidden.
        assert!(matches!(
            t.lookup(VAddr(0x2000), Size(8), AccessFlags::WRITE),
            Lookup::Forbidden(_)
        ));
        // Read anywhere in the blanket: permitted.
        assert!(matches!(
            t.lookup(VAddr(0x2000), Size(8), AccessFlags::READ),
            Lookup::Permitted(_)
        ));
    }

    #[test]
    fn remove_rebalances() {
        let mut t = IntervalTree::new();
        for i in 0..256u64 {
            t.insert(r(i * 0x1000, 0x800)).unwrap();
        }
        for i in (0..256u64).step_by(2) {
            t.remove(VAddr(i * 0x1000)).unwrap();
        }
        t.check_invariants();
        assert_eq!(t.len(), 128);
        assert!(matches!(
            t.lookup(VAddr(3 * 0x1000), Size(8), AccessFlags::READ),
            Lookup::Permitted(_)
        ));
        assert!(matches!(
            t.lookup(VAddr(2 * 0x1000), Size(8), AccessFlags::READ),
            Lookup::NoMatch
        ));
        assert!(t.remove(VAddr(2 * 0x1000)).is_err());
    }

    #[test]
    fn snapshot_sorted_by_base() {
        let mut t = IntervalTree::new();
        for base in [0x9000u64, 0x1000, 0x5000] {
            t.insert(r(base, 0x100)).unwrap();
        }
        let bases: Vec<u64> = t.snapshot().iter().map(|x| x.base.raw()).collect();
        assert_eq!(bases, vec![0x1000, 0x5000, 0x9000]);
    }

    #[test]
    fn nested_overlaps_resolve() {
        // Three nested regions with increasing permissiveness inside.
        let mut t = IntervalTree::new();
        t.insert(Region::new(VAddr(0x0), Size(0x100000), Protection::NONE).unwrap())
            .unwrap();
        t.insert(Region::new(VAddr(0x10000), Size(0x10000), Protection::READ_ONLY).unwrap())
            .unwrap();
        t.insert(Region::new(VAddr(0x14000), Size(0x1000), Protection::READ_WRITE).unwrap())
            .unwrap();
        t.check_invariants();
        assert!(matches!(
            t.lookup(VAddr(0x14000), Size(8), AccessFlags::WRITE),
            Lookup::Permitted(_)
        ));
        assert!(matches!(
            t.lookup(VAddr(0x10000), Size(8), AccessFlags::READ),
            Lookup::Permitted(_)
        ));
        assert!(matches!(
            t.lookup(VAddr(0x10000), Size(8), AccessFlags::WRITE),
            Lookup::Forbidden(_)
        ));
        assert!(matches!(
            t.lookup(VAddr(0x50000), Size(8), AccessFlags::READ),
            Lookup::Forbidden(_)
        ));
    }
}
