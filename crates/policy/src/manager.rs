//! The `policy-manager` ioctl protocol.
//!
//! §3.1 / Figure 1: *"a root user can communicate with the policy module
//! through an ioctl system call to add or remove regions from the table
//! using a simple application, policy-manager."*
//!
//! Commands and responses have a compact binary encoding — this is the
//! byte payload that crosses the simulated user/kernel boundary through
//! `/dev/carat` (see `kop-kernel::chardev`).

use kop_core::{Protection, Region, Size, VAddr};

use crate::module::{DefaultAction, PolicyModule, ViolationAction};
use crate::stats::GuardStatsSnapshot;
use crate::store::PolicyError;

/// A policy-manager command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PolicyCmd {
    /// Add a firewall rule.
    AddRegion(Region),
    /// Remove the rule with this base address.
    RemoveRegion(VAddr),
    /// List all rules.
    List,
    /// Set the default action for unmatched accesses.
    SetDefault(DefaultAction),
    /// Set the violation action.
    SetViolation(ViolationAction),
    /// Read guard statistics.
    Stats,
    /// Clear all rules and statistics.
    Reset,
    /// Grant a privileged intrinsic id (§5 extension).
    AllowIntrinsic(u32),
    /// Revoke a privileged intrinsic id.
    RevokeIntrinsic(u32),
    /// List granted intrinsic ids.
    ListIntrinsics,
}

/// A policy-manager response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PolicyResponse {
    /// Command succeeded with no payload.
    Ok,
    /// Rule listing.
    Regions(Vec<Region>),
    /// Statistics snapshot.
    Stats(GuardStatsSnapshot),
    /// Granted intrinsic ids.
    Intrinsics(Vec<u32>),
    /// Command failed.
    Err(String),
}

/// Encode/decode failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolicyCmdError(pub String);

impl core::fmt::Display for PolicyCmdError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "policy protocol error: {}", self.0)
    }
}

impl std::error::Error for PolicyCmdError {}

const OP_ADD: u8 = 1;
const OP_REMOVE: u8 = 2;
const OP_LIST: u8 = 3;
const OP_SET_DEFAULT: u8 = 4;
const OP_SET_VIOLATION: u8 = 5;
const OP_STATS: u8 = 6;
const OP_RESET: u8 = 7;
const OP_ALLOW_INTRINSIC: u8 = 8;
const OP_REVOKE_INTRINSIC: u8 = 9;
const OP_LIST_INTRINSICS: u8 = 10;

const RESP_OK: u8 = 0x80;
const RESP_REGIONS: u8 = 0x81;
const RESP_STATS: u8 = 0x82;
const RESP_INTRINSICS: u8 = 0x83;
const RESP_ERR: u8 = 0xff;

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(data: &[u8], off: &mut usize) -> Result<u64, PolicyCmdError> {
    let end = *off + 8;
    if end > data.len() {
        return Err(PolicyCmdError("truncated u64".into()));
    }
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&data[*off..end]);
    *off = end;
    Ok(u64::from_le_bytes(bytes))
}

fn put_region(out: &mut Vec<u8>, r: &Region) {
    put_u64(out, r.base.raw());
    put_u64(out, r.len.raw());
    put_u64(out, r.prot.granted().raw() as u64);
}

fn get_region(data: &[u8], off: &mut usize) -> Result<Region, PolicyCmdError> {
    let base = get_u64(data, off)?;
    let len = get_u64(data, off)?;
    let prot = get_u64(data, off)?;
    let prot = u32::try_from(prot).map_err(|_| PolicyCmdError("bad protection bits".into()))?;
    Region::new(
        VAddr(base),
        Size(len),
        Protection::new(kop_core::AccessFlags::from_raw(prot)),
    )
    .ok_or_else(|| PolicyCmdError("region overflows address space".into()))
}

impl PolicyCmd {
    /// Encode to the ioctl byte payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            PolicyCmd::AddRegion(r) => {
                out.push(OP_ADD);
                put_region(&mut out, r);
            }
            PolicyCmd::RemoveRegion(base) => {
                out.push(OP_REMOVE);
                put_u64(&mut out, base.raw());
            }
            PolicyCmd::List => out.push(OP_LIST),
            PolicyCmd::SetDefault(a) => {
                out.push(OP_SET_DEFAULT);
                out.push(match a {
                    DefaultAction::Allow => 0,
                    DefaultAction::Deny => 1,
                });
            }
            PolicyCmd::SetViolation(a) => {
                out.push(OP_SET_VIOLATION);
                out.push(match a {
                    ViolationAction::Panic => 0,
                    ViolationAction::LogAndDeny => 1,
                    ViolationAction::LogAndAllow => 2,
                    ViolationAction::Quarantine => 3,
                });
            }
            PolicyCmd::Stats => out.push(OP_STATS),
            PolicyCmd::Reset => out.push(OP_RESET),
            PolicyCmd::AllowIntrinsic(id) => {
                out.push(OP_ALLOW_INTRINSIC);
                put_u64(&mut out, *id as u64);
            }
            PolicyCmd::RevokeIntrinsic(id) => {
                out.push(OP_REVOKE_INTRINSIC);
                put_u64(&mut out, *id as u64);
            }
            PolicyCmd::ListIntrinsics => out.push(OP_LIST_INTRINSICS),
        }
        out
    }

    /// Decode from the ioctl byte payload.
    pub fn decode(data: &[u8]) -> Result<PolicyCmd, PolicyCmdError> {
        let op = *data.first().ok_or(PolicyCmdError("empty command".into()))?;
        let mut off = 1usize;
        let cmd = match op {
            OP_ADD => PolicyCmd::AddRegion(get_region(data, &mut off)?),
            OP_REMOVE => PolicyCmd::RemoveRegion(VAddr(get_u64(data, &mut off)?)),
            OP_LIST => PolicyCmd::List,
            OP_SET_DEFAULT => {
                let b = *data.get(1).ok_or(PolicyCmdError("truncated".into()))?;
                off = 2;
                PolicyCmd::SetDefault(match b {
                    0 => DefaultAction::Allow,
                    1 => DefaultAction::Deny,
                    other => return Err(PolicyCmdError(format!("bad default action {other}"))),
                })
            }
            OP_SET_VIOLATION => {
                let b = *data.get(1).ok_or(PolicyCmdError("truncated".into()))?;
                off = 2;
                PolicyCmd::SetViolation(match b {
                    0 => ViolationAction::Panic,
                    1 => ViolationAction::LogAndDeny,
                    2 => ViolationAction::LogAndAllow,
                    3 => ViolationAction::Quarantine,
                    other => return Err(PolicyCmdError(format!("bad violation action {other}"))),
                })
            }
            OP_STATS => PolicyCmd::Stats,
            OP_RESET => PolicyCmd::Reset,
            OP_ALLOW_INTRINSIC => {
                let id = get_u64(data, &mut off)?;
                PolicyCmd::AllowIntrinsic(
                    u32::try_from(id)
                        .map_err(|_| PolicyCmdError("intrinsic id too large".into()))?,
                )
            }
            OP_REVOKE_INTRINSIC => {
                let id = get_u64(data, &mut off)?;
                PolicyCmd::RevokeIntrinsic(
                    u32::try_from(id)
                        .map_err(|_| PolicyCmdError("intrinsic id too large".into()))?,
                )
            }
            OP_LIST_INTRINSICS => PolicyCmd::ListIntrinsics,
            other => return Err(PolicyCmdError(format!("unknown opcode {other:#x}"))),
        };
        if off != data.len() {
            return Err(PolicyCmdError(format!(
                "trailing garbage: {} bytes",
                data.len() - off
            )));
        }
        Ok(cmd)
    }

    /// Apply the command to a policy module — the kernel side of the ioctl.
    pub fn apply(&self, pm: &PolicyModule) -> PolicyResponse {
        let policy_err = |e: PolicyError| PolicyResponse::Err(e.to_string());
        match self {
            PolicyCmd::AddRegion(r) => match pm.add_region(*r) {
                Ok(()) => PolicyResponse::Ok,
                Err(e) => policy_err(e),
            },
            PolicyCmd::RemoveRegion(base) => match pm.remove_region(*base) {
                Ok(_) => PolicyResponse::Ok,
                Err(e) => policy_err(e),
            },
            PolicyCmd::List => PolicyResponse::Regions(pm.regions()),
            PolicyCmd::SetDefault(a) => {
                pm.set_default_action(*a);
                PolicyResponse::Ok
            }
            PolicyCmd::SetViolation(a) => {
                pm.set_violation_action(*a);
                PolicyResponse::Ok
            }
            PolicyCmd::Stats => PolicyResponse::Stats(pm.stats()),
            PolicyCmd::Reset => {
                pm.clear_regions();
                pm.reset_stats();
                PolicyResponse::Ok
            }
            PolicyCmd::AllowIntrinsic(id) => {
                pm.allow_intrinsic(*id);
                PolicyResponse::Ok
            }
            PolicyCmd::RevokeIntrinsic(id) => {
                if pm.revoke_intrinsic(*id) {
                    PolicyResponse::Ok
                } else {
                    PolicyResponse::Err(format!("intrinsic {id} was not granted"))
                }
            }
            PolicyCmd::ListIntrinsics => PolicyResponse::Intrinsics(pm.granted_intrinsics()),
        }
    }
}

impl PolicyResponse {
    /// Encode to the ioctl reply payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            PolicyResponse::Ok => out.push(RESP_OK),
            PolicyResponse::Regions(regions) => {
                out.push(RESP_REGIONS);
                put_u64(&mut out, regions.len() as u64);
                for r in regions {
                    put_region(&mut out, r);
                }
            }
            PolicyResponse::Stats(s) => {
                out.push(RESP_STATS);
                put_u64(&mut out, s.checks);
                put_u64(&mut out, s.permitted);
                put_u64(&mut out, s.denied_no_match);
                put_u64(&mut out, s.denied_insufficient);
                put_u64(&mut out, s.denied_malformed);
            }
            PolicyResponse::Intrinsics(ids) => {
                out.push(RESP_INTRINSICS);
                put_u64(&mut out, ids.len() as u64);
                for id in ids {
                    put_u64(&mut out, *id as u64);
                }
            }
            PolicyResponse::Err(msg) => {
                out.push(RESP_ERR);
                put_u64(&mut out, msg.len() as u64);
                out.extend_from_slice(msg.as_bytes());
            }
        }
        out
    }

    /// Decode from the ioctl reply payload.
    pub fn decode(data: &[u8]) -> Result<PolicyResponse, PolicyCmdError> {
        let op = *data
            .first()
            .ok_or(PolicyCmdError("empty response".into()))?;
        let mut off = 1usize;
        match op {
            RESP_OK => Ok(PolicyResponse::Ok),
            RESP_REGIONS => {
                let n = get_u64(data, &mut off)?;
                let mut regions = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    regions.push(get_region(data, &mut off)?);
                }
                Ok(PolicyResponse::Regions(regions))
            }
            RESP_STATS => {
                let checks = get_u64(data, &mut off)?;
                let permitted = get_u64(data, &mut off)?;
                let denied_no_match = get_u64(data, &mut off)?;
                let denied_insufficient = get_u64(data, &mut off)?;
                let denied_malformed = get_u64(data, &mut off)?;
                Ok(PolicyResponse::Stats(GuardStatsSnapshot {
                    checks,
                    permitted,
                    denied_no_match,
                    denied_insufficient,
                    denied_malformed,
                }))
            }
            RESP_INTRINSICS => {
                let n = get_u64(data, &mut off)?;
                let mut ids = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let id = get_u64(data, &mut off)?;
                    ids.push(
                        u32::try_from(id)
                            .map_err(|_| PolicyCmdError("intrinsic id too large".into()))?,
                    );
                }
                Ok(PolicyResponse::Intrinsics(ids))
            }
            RESP_ERR => {
                let len = get_u64(data, &mut off)? as usize;
                let end = off + len;
                if end > data.len() {
                    return Err(PolicyCmdError("truncated error string".into()));
                }
                let msg = String::from_utf8_lossy(&data[off..end]).into_owned();
                Ok(PolicyResponse::Err(msg))
            }
            other => Err(PolicyCmdError(format!("unknown response {other:#x}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_core::AccessFlags;

    fn region(base: u64, len: u64) -> Region {
        Region::new(VAddr(base), Size(len), Protection::READ_WRITE).unwrap()
    }

    #[test]
    fn command_roundtrip() {
        let cmds = [
            PolicyCmd::AddRegion(region(0x1000, 0x2000)),
            PolicyCmd::RemoveRegion(VAddr(0x1000)),
            PolicyCmd::List,
            PolicyCmd::SetDefault(DefaultAction::Allow),
            PolicyCmd::SetDefault(DefaultAction::Deny),
            PolicyCmd::SetViolation(ViolationAction::Panic),
            PolicyCmd::SetViolation(ViolationAction::LogAndDeny),
            PolicyCmd::SetViolation(ViolationAction::LogAndAllow),
            PolicyCmd::SetViolation(ViolationAction::Quarantine),
            PolicyCmd::Stats,
            PolicyCmd::Reset,
            PolicyCmd::AllowIntrinsic(3),
            PolicyCmd::RevokeIntrinsic(7),
            PolicyCmd::ListIntrinsics,
        ];
        for cmd in cmds {
            let bytes = cmd.encode();
            let back = PolicyCmd::decode(&bytes).expect("decodes");
            assert_eq!(back, cmd);
        }
    }

    #[test]
    fn response_roundtrip() {
        let responses = [
            PolicyResponse::Ok,
            PolicyResponse::Regions(vec![region(0x1000, 0x100), region(0x4000, 0x10)]),
            PolicyResponse::Stats(GuardStatsSnapshot {
                checks: 10,
                permitted: 7,
                denied_no_match: 1,
                denied_insufficient: 1,
                denied_malformed: 1,
            }),
            PolicyResponse::Intrinsics(vec![0, 1, 15]),
            PolicyResponse::Err("policy table full (64 regions)".into()),
        ];
        for resp in responses {
            let bytes = resp.encode();
            let back = PolicyResponse::decode(&bytes).expect("decodes");
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(PolicyCmd::decode(&[]).is_err());
        assert!(PolicyCmd::decode(&[0x42]).is_err());
        assert!(PolicyCmd::decode(&[OP_ADD, 1, 2]).is_err()); // truncated region
        let mut ok = PolicyCmd::List.encode();
        ok.push(0); // trailing garbage
        assert!(PolicyCmd::decode(&ok).is_err());
        assert!(PolicyResponse::decode(&[0x07]).is_err());
    }

    #[test]
    fn apply_add_list_remove() {
        let pm = PolicyModule::new();
        let r = region(0x10_0000, 0x1000);
        assert_eq!(PolicyCmd::AddRegion(r).apply(&pm), PolicyResponse::Ok);
        match PolicyCmd::List.apply(&pm) {
            PolicyResponse::Regions(regions) => assert_eq!(regions, vec![r]),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            PolicyCmd::RemoveRegion(VAddr(0x10_0000)).apply(&pm),
            PolicyResponse::Ok
        );
        assert_eq!(pm.region_count(), 0);
        // Removing again fails.
        match PolicyCmd::RemoveRegion(VAddr(0x10_0000)).apply(&pm) {
            PolicyResponse::Err(msg) => assert!(msg.contains("no region")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn apply_stats_and_reset() {
        let pm = PolicyModule::new();
        pm.set_default_action(DefaultAction::Allow);
        assert!(pm.check(VAddr(0x1000), Size(8), AccessFlags::READ).is_ok());
        match PolicyCmd::Stats.apply(&pm) {
            PolicyResponse::Stats(s) => {
                assert_eq!(s.checks, 1);
                assert_eq!(s.permitted, 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(PolicyCmd::Reset.apply(&pm), PolicyResponse::Ok);
        assert_eq!(pm.stats().checks, 0);
        assert_eq!(pm.region_count(), 0);
    }

    #[test]
    fn full_ioctl_roundtrip_through_bytes() {
        // User space encodes, kernel decodes+applies, encodes response,
        // user space decodes — the full Figure 1 loop.
        let pm = PolicyModule::new();
        let wire_cmd = PolicyCmd::AddRegion(region(0x7000, 0x100)).encode();
        let cmd = PolicyCmd::decode(&wire_cmd).unwrap();
        let wire_resp = cmd.apply(&pm).encode();
        let resp = PolicyResponse::decode(&wire_resp).unwrap();
        assert_eq!(resp, PolicyResponse::Ok);
        assert_eq!(pm.region_count(), 1);
    }
}
