//! Bounded violation log — a fixed ring of raw [`Violation`] records.
//!
//! The old log was a `Vec<String>`: every denial paid for formatting and
//! an unbounded (later trimmed) allocation while holding the lock. Under
//! a violation storm that is exactly the wrong cost model. This ring
//! follows the trace-ring overwrite discipline instead: a fixed capacity,
//! oldest entries overwritten first, and a counter of how many entries
//! were dropped. Denials store the raw 4-word `Violation` (it is `Copy`);
//! formatting happens only when someone *reads* the log.

use std::collections::VecDeque;
use std::sync::Mutex as StdMutex;

use kop_core::Violation;
use kop_trace::Counter;

/// A bounded ring of violations with a dropped-entries counter.
pub struct ViolationLog {
    // Std mutex: the ring is touched only on the (cold) denial path and
    // by readers; poisoning is irrelevant for plain data.
    ring: StdMutex<VecDeque<Violation>>,
    cap: usize,
    dropped: Counter,
}

impl ViolationLog {
    /// A ring retaining at most `cap` entries.
    pub fn new(cap: usize) -> ViolationLog {
        ViolationLog {
            ring: StdMutex::new(VecDeque::with_capacity(cap)),
            cap,
            dropped: Counter::new("policy.log_dropped"),
        }
    }

    /// Append a violation, overwriting the oldest entry when full.
    pub fn push(&self, v: Violation) {
        let mut ring = self.ring.lock().expect("violation log lock");
        if ring.len() == self.cap {
            ring.pop_front();
            self.dropped.inc();
        }
        ring.push_back(v);
    }

    /// The retained violations, oldest first.
    pub fn entries(&self) -> Vec<Violation> {
        self.ring
            .lock()
            .expect("violation log lock")
            .iter()
            .copied()
            .collect()
    }

    /// The retained violations rendered to strings (the only place the
    /// log pays for formatting).
    pub fn rendered(&self) -> Vec<String> {
        self.entries().iter().map(|v| v.to_string()).collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("violation log lock").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// How many entries have been overwritten so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// The live dropped-entries counter cell (for registry registration).
    pub fn dropped_counter(&self) -> &Counter {
        &self.dropped
    }

    /// Clear the ring (does not reset the dropped counter).
    pub fn clear(&self) {
        self.ring.lock().expect("violation log lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_core::error::ViolationKind;
    use kop_core::{AccessFlags, Size, VAddr};

    fn v(addr: u64) -> Violation {
        Violation::new(
            VAddr(addr),
            Size(8),
            AccessFlags::READ,
            ViolationKind::NoMatchingRegion,
        )
    }

    #[test]
    fn retains_newest_and_counts_drops() {
        let log = ViolationLog::new(4);
        for i in 0..10u64 {
            log.push(v(i));
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.dropped(), 6);
        let kept: Vec<u64> = log.entries().iter().map(|v| v.addr.raw()).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn rendering_is_lazy_and_matches_entries() {
        let log = ViolationLog::new(8);
        log.push(v(0x1000));
        let rendered = log.rendered();
        assert_eq!(rendered.len(), 1);
        assert!(rendered[0].contains("no matching policy region"));
    }
}
