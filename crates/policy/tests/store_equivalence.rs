//! Property tests: every policy data structure must agree with the
//! reference 64-entry linear-scan table on non-overlapping region sets.
//!
//! This is the key soundness property of the "iterate on the structure"
//! methodology (§3.1): swapping the structure must never change which
//! accesses the firewall permits.

use proptest::prelude::*;

use kop_core::{AccessFlags, Protection, Region, Size, VAddr};
use kop_policy::store::{make_store, Lookup, StoreKind};

/// Generate a set of non-overlapping regions with varied protections, by
/// carving disjoint slots from a grid.
fn arb_regions(max: usize) -> impl Strategy<Value = Vec<Region>> {
    proptest::collection::vec((0u64..200, 1u64..0x800, 0u32..4), 1..max).prop_map(|specs| {
        let mut regions = Vec::new();
        let mut used = std::collections::BTreeSet::new();
        for (slot, len, prot_sel) in specs {
            if !used.insert(slot) {
                continue; // one region per grid slot => disjoint
            }
            let prot = match prot_sel {
                0 => Protection::READ_ONLY,
                1 => Protection::READ_WRITE,
                2 => Protection::ALL,
                _ => Protection::NONE,
            };
            let base = VAddr(slot * 0x1000 + 0x10_0000);
            regions.push(Region::new(base, Size(len.min(0x1000)), prot).expect("fits"));
        }
        regions
    })
}

fn arb_access() -> impl Strategy<Value = (VAddr, Size, AccessFlags)> {
    (0u64..220, 0u64..0x1100, 1u64..65, 0u32..3).prop_map(|(slot, off, size, f)| {
        let flags = match f {
            0 => AccessFlags::READ,
            1 => AccessFlags::WRITE,
            _ => AccessFlags::RW,
        };
        (VAddr(slot * 0x1000 + 0x10_0000 + off), Size(size), flags)
    })
}

fn classify(l: Lookup) -> &'static str {
    match l {
        Lookup::Permitted(_) => "permitted",
        Lookup::Forbidden(_) => "forbidden",
        Lookup::NoMatch => "no-match",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn all_stores_agree_with_reference_table(
        regions in arb_regions(48),
        accesses in proptest::collection::vec(arb_access(), 1..64),
    ) {
        let mut reference = make_store(StoreKind::Table);
        for r in &regions {
            reference.insert(*r).expect("table accepts disjoint regions");
        }
        for kind in [
            StoreKind::Sorted,
            StoreKind::Splay,
            StoreKind::Interval,
            StoreKind::BloomFront,
            StoreKind::CuckooFront,
            StoreKind::Cached,
        ] {
            let mut store = make_store(kind);
            for r in &regions {
                store.insert(*r).expect("disjoint regions accepted by all stores");
            }
            prop_assert_eq!(store.len(), reference.len());
            for &(addr, size, flags) in &accesses {
                let expect = classify(reference.lookup(addr, size, flags));
                let got = classify(store.lookup(addr, size, flags));
                prop_assert_eq!(
                    got, expect,
                    "store {} disagrees at {:?} size {:?} flags {:?}",
                    kind, addr, size, flags
                );
            }
        }
    }

    #[test]
    fn removal_agrees_across_stores(
        regions in arb_regions(32),
        remove_idx in any::<prop::sample::Index>(),
        accesses in proptest::collection::vec(arb_access(), 1..32),
    ) {
        prop_assume!(!regions.is_empty());
        let victim = regions[remove_idx.index(regions.len())].base;
        let mut reference = make_store(StoreKind::Table);
        for r in &regions {
            reference.insert(*r).unwrap();
        }
        reference.remove(victim).unwrap();
        for kind in [
            StoreKind::Sorted,
            StoreKind::Splay,
            StoreKind::Interval,
            StoreKind::BloomFront,
            StoreKind::CuckooFront,
            StoreKind::Cached,
        ] {
            let mut store = make_store(kind);
            for r in &regions {
                store.insert(*r).unwrap();
            }
            store.remove(victim).unwrap();
            prop_assert_eq!(store.len(), reference.len());
            for &(addr, size, flags) in &accesses {
                prop_assert_eq!(
                    classify(store.lookup(addr, size, flags)),
                    classify(reference.lookup(addr, size, flags)),
                    "store {} disagrees after removal", kind
                );
            }
        }
    }

    #[test]
    fn snapshots_contain_same_regions(regions in arb_regions(32)) {
        let canonical = {
            let mut v = regions.clone();
            v.sort_by_key(|r| r.base);
            v
        };
        for kind in StoreKind::ALL {
            let mut store = make_store(kind);
            for r in &regions {
                store.insert(*r).unwrap();
            }
            let mut snap = store.snapshot();
            snap.sort_by_key(|r| r.base);
            prop_assert_eq!(&snap, &canonical, "snapshot mismatch for {}", kind);
        }
    }
}
