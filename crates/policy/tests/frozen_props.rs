//! Property tests for the frozen snapshot-side index (DESIGN §3.19).
//!
//! Two families:
//!
//! 1. **Lookup parity** — [`FrozenStore`] (every index shape, including
//!    the fleet-scale interval tree) must agree *bit-for-bit* with the
//!    reference linear scan over the same region vector: same verdict
//!    class and the same witness region, including store-order
//!    tiebreaks among overlapping rules. Checked for arbitrary
//!    (overlapping) sets, for every authoritative store kind's
//!    snapshot, and at 5,000 regions.
//!
//! 2. **Insert-validation uniformity** — all 7 [`StoreKind`]s must
//!    classify duplicate-base, zero-size, and overflowing inserts
//!    identically, and end up with identical rule sets, for arbitrary
//!    insert sequences. A store that silently swallowed (or
//!    mis-ordered) a validation error would desynchronize the fleet's
//!    per-tenant stores from the reference.

use proptest::prelude::*;

use kop_core::{AccessFlags, Protection, Region, Size, VAddr};
use kop_policy::store::{make_store, Lookup, PolicyError, StoreKind};
use kop_policy::FrozenStore;

/// The reference semantics, straight from the paper's flat table: the
/// first granting region in store order wins; otherwise the first
/// covering region forbids; otherwise no rule matches.
fn linear_scan(regions: &[Region], addr: VAddr, size: Size, flags: AccessFlags) -> Lookup {
    let mut covering = None;
    for r in regions {
        if r.covers(addr, size) {
            if r.prot.allows(flags) {
                return Lookup::Permitted(*r);
            }
            if covering.is_none() {
                covering = Some(*r);
            }
        }
    }
    match covering {
        Some(r) => Lookup::Forbidden(r),
        None => Lookup::NoMatch,
    }
}

fn prot_of(sel: u32) -> Protection {
    match sel {
        0 => Protection::READ_ONLY,
        1 => Protection::READ_WRITE,
        2 => Protection::ALL,
        _ => Protection::NONE,
    }
}

fn flags_of(sel: u32) -> AccessFlags {
    match sel {
        0 => AccessFlags::READ,
        1 => AccessFlags::WRITE,
        _ => AccessFlags::RW,
    }
}

/// Arbitrary — freely overlapping — region vectors.
fn arb_overlapping(max: usize) -> impl Strategy<Value = Vec<Region>> {
    proptest::collection::vec((0u64..0x4000, 1u64..0x1000, 0u32..4), 1..max).prop_map(|specs| {
        specs
            .into_iter()
            .map(|(slot, len, p)| {
                Region::new(VAddr(0x10_0000 + slot * 0x10), Size(len), prot_of(p)).expect("fits")
            })
            .collect()
    })
}

fn arb_access() -> impl Strategy<Value = (VAddr, Size, AccessFlags)> {
    (0u64..0x5000, 1u64..96, 0u32..3)
        .prop_map(|(off, size, f)| (VAddr(0x10_0000 + off * 0x10), Size(size), flags_of(f)))
}

/// Disjoint regions on a grid (acceptable to every store kind).
fn arb_disjoint(max: usize) -> impl Strategy<Value = Vec<Region>> {
    proptest::collection::vec((0u64..200, 1u64..0x1000, 0u32..4), 1..max).prop_map(|specs| {
        let mut used = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for (slot, len, p) in specs {
            if !used.insert(slot) {
                continue;
            }
            out.push(
                Region::new(VAddr(0x10_0000 + slot * 0x1000), Size(len), prot_of(p))
                    .expect("fits"),
            );
        }
        out
    })
}

/// One error class per validation outcome, so sequences compare across
/// store kinds without caring about error payload details.
fn classify_insert(r: Result<(), PolicyError>) -> &'static str {
    match r {
        Ok(()) => "ok",
        Err(PolicyError::DuplicateBase { .. }) => "duplicate-base",
        Err(PolicyError::ZeroLength) => "zero-length",
        Err(PolicyError::Overflow) => "overflow",
        Err(PolicyError::Overlap { .. }) => "overlap",
        Err(e) => panic!("unexpected insert error: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Frozen indexes agree with the linear scan on overlapping sets —
    /// verdict AND witness region (the tiebreak among covering rules).
    #[test]
    fn frozen_matches_linear_scan_exactly(
        regions in arb_overlapping(256),
        accesses in proptest::collection::vec(arb_access(), 1..96),
    ) {
        let frozen = FrozenStore::build(regions.clone());
        let flat = FrozenStore::flat(regions.clone());
        for &(addr, size, flags) in &accesses {
            let expect = linear_scan(&regions, addr, size, flags);
            prop_assert_eq!(
                frozen.lookup_frozen(addr, size, flags), expect,
                "frozen index {} diverges at {:?}", frozen.kind().name(), addr
            );
            prop_assert_eq!(
                flat.lookup_frozen(addr, size, flags), expect,
                "flat baseline diverges at {:?}", addr
            );
        }
    }

    /// Every authoritative store's snapshot, frozen, still answers
    /// exactly like the store itself (and like the linear scan).
    #[test]
    fn frozen_snapshot_agrees_with_every_store_kind(
        regions in arb_disjoint(48),
        accesses in proptest::collection::vec(arb_access(), 1..48),
    ) {
        for kind in StoreKind::ALL {
            let mut store = make_store(kind);
            for r in &regions {
                store.insert(*r).expect("disjoint regions accepted");
            }
            let snap = store.snapshot();
            let frozen = FrozenStore::build(snap.clone());
            for &(addr, size, flags) in &accesses {
                let expect = linear_scan(&snap, addr, size, flags);
                prop_assert_eq!(
                    frozen.lookup_frozen(addr, size, flags), expect,
                    "frozen {} of {} snapshot diverges", frozen.kind().name(), kind
                );
                // The mutable store path must agree on the verdict class
                // (witness regions are identical for disjoint sets).
                prop_assert_eq!(
                    store.lookup(addr, size, flags), expect,
                    "store {} diverges from its own frozen snapshot", kind
                );
            }
        }
    }

    /// Duplicate-base, zero-size, and overflow inserts classify
    /// identically across all 7 store kinds, and the surviving rule
    /// sets are identical.
    #[test]
    fn insert_validation_uniform_across_all_kinds(
        specs in proptest::collection::vec((0u64..40, 0u64..0x1000, 0u32..4, 0u32..16), 1..48),
    ) {
        // Build the insert sequence: mostly valid disjoint grid slots,
        // with natural duplicate bases (shared slots), explicit
        // zero-size rules, and the occasional overflow.
        let inserts: Vec<Region> = specs
            .iter()
            .map(|&(slot, len, p, degenerate)| match degenerate {
                0 => Region {
                    base: VAddr(0x10_0000 + slot * 0x1000),
                    len: Size(0),
                    prot: prot_of(p),
                },
                1 => Region {
                    base: VAddr(u64::MAX - 0x10),
                    len: Size(0x100),
                    prot: prot_of(p),
                },
                _ => Region {
                    base: VAddr(0x10_0000 + slot * 0x1000),
                    len: Size(len.clamp(1, 0xfff)),
                    prot: prot_of(p),
                },
            })
            .collect();

        let mut reference: Option<(Vec<&'static str>, Vec<Region>)> = None;
        for kind in StoreKind::ALL {
            let mut store = make_store(kind);
            let outcomes: Vec<&'static str> = inserts
                .iter()
                .map(|r| classify_insert(store.insert(*r)))
                .collect();
            let mut snap = store.snapshot();
            snap.sort_by_key(|r| r.base);
            match &reference {
                None => reference = Some((outcomes, snap)),
                Some((ref_outcomes, ref_snap)) => {
                    prop_assert_eq!(
                        &outcomes, ref_outcomes,
                        "store {} classifies inserts differently", kind
                    );
                    prop_assert_eq!(
                        &snap, ref_snap,
                        "store {} retains different rules", kind
                    );
                }
            }
        }
    }
}

/// The fleet-scale end of the satellite: 5,000 regions through a
/// deterministic generator, thousands of probes, exact parity.
#[test]
fn frozen_agrees_with_linear_scan_at_5000_regions() {
    let mut state = 0x243f_6a88_85a3_08d3u64; // deterministic LCG
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut regions = Vec::with_capacity(5000);
    for _ in 0..5000 {
        let base = 0x10_0000 + (next() % 0x80_0000);
        let len = 1 + (next() % 0x800);
        let prot = prot_of((next() % 4) as u32);
        regions.push(Region::new(VAddr(base), Size(len), prot).unwrap());
    }
    let frozen = FrozenStore::build(regions.clone());
    let flat = FrozenStore::flat(regions.clone());
    assert_eq!(frozen.len(), 5000);
    for _ in 0..4000 {
        let addr = VAddr(0x10_0000 + (next() % 0x81_0000));
        let size = Size(1 + (next() % 64));
        let flags = flags_of((next() % 3) as u32);
        let expect = linear_scan(&regions, addr, size, flags);
        assert_eq!(frozen.lookup_frozen(addr, size, flags), expect);
        assert_eq!(flat.lookup_frozen(addr, size, flags), expect);
    }
}
