//! Concurrency: guard checks race against policy mutation — the real
//! deployment shape (driver contexts invoke `carat_guard` while the
//! operator reconfigures rules over ioctl). The policy module must stay
//! consistent: every check sees either the old or the new rule set,
//! never a torn one.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use kop_core::{AccessFlags, Protection, Region, Size, VAddr};
use kop_policy::{DefaultAction, PolicyModule, StoreKind, ViolationAction};

fn region(base: u64, len: u64) -> Region {
    Region::new(VAddr(base), Size(len), Protection::READ_WRITE).unwrap()
}

#[test]
fn checks_race_mutations_without_tearing() {
    for kind in StoreKind::ALL {
        let pm = Arc::new(PolicyModule::with_kind(kind));
        pm.set_violation_action(ViolationAction::LogAndDeny);
        // A permanent region that must never stop matching.
        pm.add_region(region(0x100_0000, 0x1000)).unwrap();
        let stop = Arc::new(AtomicBool::new(false));

        let checkers: Vec<_> = (0..4)
            .map(|_| {
                let pm = Arc::clone(&pm);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut permitted = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // The permanent region must always permit.
                        let r = pm.check(VAddr(0x100_0800), Size(8), AccessFlags::RW);
                        assert!(r.is_ok(), "{kind}: permanent rule disappeared");
                        permitted += 1;
                        // A churned region may permit or deny — either is
                        // fine, it must just not panic or tear.
                        let _ = pm.check(VAddr(0x200_0000), Size(8), AccessFlags::READ);
                    }
                    permitted
                })
            })
            .collect();

        let mutator = {
            let pm = Arc::clone(&pm);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    let r = region(0x200_0000, 0x1000);
                    let _ = pm.add_region(r);
                    let _ = pm.remove_region(VAddr(0x200_0000));
                    if i % 50 == 0 {
                        pm.reset_stats();
                    }
                }
                stop.store(true, Ordering::Relaxed);
            })
        };

        mutator.join().unwrap();
        let total: u64 = checkers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "{kind}: checkers made progress");
        // Permanent region still present and correct.
        assert!(pm
            .check(VAddr(0x100_0000), Size(8), AccessFlags::RW)
            .is_ok());
    }
}

#[test]
fn stats_are_coherent_under_contention() {
    let pm = Arc::new(PolicyModule::new());
    pm.set_default_action(DefaultAction::Allow);
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let pm = Arc::clone(&pm);
            std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    pm.check(VAddr(0x1000 + i * 8), Size(8), AccessFlags::READ)
                        .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let s = pm.stats();
    assert_eq!(s.checks, 40_000);
    assert_eq!(s.permitted, 40_000);
    assert_eq!(s.denied(), 0);
}

#[test]
fn violation_log_capped_under_concurrent_denials() {
    let pm = Arc::new(PolicyModule::new()); // default deny
    pm.set_violation_action(ViolationAction::LogAndDeny);
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let pm = Arc::clone(&pm);
            std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let _ = pm.check(VAddr(t * 1_000_000 + i), Size(1), AccessFlags::WRITE);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(pm.stats().denied(), 8_000);
    assert!(pm.violation_log().len() <= 1024, "log stays capped");
}
