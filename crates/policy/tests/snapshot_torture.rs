//! Concurrency torture tests for the SMP guard path: N readers hammer
//! `check` while a writer grants/revokes — no torn tables, no stale
//! admits after a revoke returns, generations monotonic, and the
//! lock-free paths agree with the mutex path on every input.
//!
//! The stale-admit detector uses an odd/even state counter to rule out
//! TOCTOU false positives: the writer stores `2k` (even) *before* it
//! starts a grant and `2k+1` (odd) only *after* the matching revoke has
//! returned. A reader samples the counter before (`s1`) and after (`s2`)
//! its check; `s1 == s2 && odd` proves — in the `SeqCst` total order —
//! that the whole check ran inside a window where the revoke had
//! completed and no new grant had begun, so an allowed access in that
//! window is a genuine stale admit.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use kop_core::error::ViolationKind;
use kop_core::{AccessFlags, Protection, Region, Size, VAddr};
use kop_policy::{CheckPath, GuardTlb, PolicyModule, StoreKind};

use proptest::prelude::*;

fn region(base: u64, len: u64, prot: Protection) -> Region {
    Region::new(VAddr(base), Size(len), prot).unwrap()
}

/// Run `readers` concurrent reader bodies against a grant/revoke storm.
/// `reader` receives (policy, state counter, stop flag) and returns the
/// number of stale admits it observed.
fn storm<F>(churns: u64, readers: usize, reader: F) -> u64
where
    F: Fn(&PolicyModule, &AtomicU64, &AtomicBool) -> u64 + Sync,
{
    let pm = PolicyModule::new(); // default deny
    let state = AtomicU64::new(1); // odd: nothing granted yet
    let stop = AtomicBool::new(false);
    let r = region(0x1000, 0x1000, Protection::READ_WRITE);

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..readers)
            .map(|_| s.spawn(|| reader(&pm, &state, &stop)))
            .collect();
        for k in 0..churns {
            state.store(2 * k + 2, Ordering::SeqCst); // grant may begin
            pm.add_region(r).unwrap();
            pm.remove_region(r.base).unwrap();
            state.store(2 * k + 3, Ordering::SeqCst); // revoke settled
        }
        stop.store(true, Ordering::SeqCst);
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

#[test]
fn revoke_storm_never_admits_stale_access_on_snapshot_path() {
    let stale = storm(2_000, 4, |pm, state, stop| {
        let mut stale = 0u64;
        while !stop.load(Ordering::SeqCst) {
            let s1 = state.load(Ordering::SeqCst);
            let allowed = pm.check(VAddr(0x1800), Size(8), AccessFlags::RW).is_ok();
            let s2 = state.load(Ordering::SeqCst);
            if allowed && s1 == s2 && s1 % 2 == 1 {
                stale += 1;
            }
        }
        stale
    });
    assert_eq!(stale, 0, "snapshot path admitted after revoke returned");
}

#[test]
fn revoke_storm_never_admits_stale_access_through_tlb() {
    let stale = storm(2_000, 4, |pm, state, stop| {
        // Each reader owns its TLB — the per-thread structure under test.
        let tlb = GuardTlb::with_prefix("torture.tlb");
        let mut stale = 0u64;
        while !stop.load(Ordering::SeqCst) {
            let s1 = state.load(Ordering::SeqCst);
            let allowed = tlb
                .check(pm, 0, VAddr(0x1800), Size(8), AccessFlags::RW)
                .is_ok();
            let s2 = state.load(Ordering::SeqCst);
            if allowed && s1 == s2 && s1 % 2 == 1 {
                stale += 1;
            }
        }
        stale
    });
    assert_eq!(stale, 0, "guard TLB admitted after revoke returned");
}

#[test]
fn generations_are_monotonic_under_churn() {
    let pm = PolicyModule::new();
    let stop = AtomicBool::new(false);
    let r = region(0x1000, 0x1000, Protection::READ_WRITE);
    std::thread::scope(|s| {
        let readers: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(|| {
                    let mut last = 0u64;
                    let mut observed = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        let g = pm.store_generation();
                        assert!(g >= last, "generation went backwards: {last} -> {g}");
                        if g != last {
                            observed += 1;
                        }
                        last = g;
                    }
                    observed
                })
            })
            .collect();
        for _ in 0..2_000 {
            pm.add_region(r).unwrap();
            pm.remove_region(r.base).unwrap();
        }
        stop.store(true, Ordering::SeqCst);
        for h in readers {
            h.join().unwrap();
        }
    });
    // 2 publishes per churn, +1 initial generation.
    assert_eq!(pm.store_generation(), 1 + 2 * 2_000);
}

#[test]
fn replace_regions_is_atomic_no_torn_rulesets() {
    // Two disjoint rule sets; readers must only ever observe exactly one
    // of them, never a mixture.
    let set_a = vec![
        region(0x1000, 0x1000, Protection::READ_WRITE),
        region(0x3000, 0x1000, Protection::READ_ONLY),
    ];
    let set_b = vec![
        region(0x10_000, 0x1000, Protection::READ_WRITE),
        region(0x30_000, 0x1000, Protection::READ_ONLY),
        region(0x50_000, 0x1000, Protection::NONE),
    ];
    let key = |rs: &[Region]| -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = rs.iter().map(|r| (r.base.raw(), r.len.raw())).collect();
        v.sort_unstable();
        v
    };
    let key_a = key(&set_a);
    let key_b = key(&set_b);

    let pm = PolicyModule::new();
    pm.replace_regions(set_a.iter().copied()).unwrap();
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        let readers: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(|| {
                    let mut seen_a = false;
                    let mut seen_b = false;
                    while !stop.load(Ordering::SeqCst) {
                        let snap = pm.policy_snapshot();
                        let k = key(snap.regions());
                        if k == key_a {
                            seen_a = true;
                        } else if k == key_b {
                            seen_b = true;
                        } else {
                            panic!("torn ruleset observed: {k:?}");
                        }
                    }
                    (seen_a, seen_b)
                })
            })
            .collect();
        for i in 0..2_000 {
            let set = if i % 2 == 0 { &set_b } else { &set_a };
            pm.replace_regions(set.iter().copied()).unwrap();
        }
        stop.store(true, Ordering::SeqCst);
        for h in readers {
            h.join().unwrap();
        }
    });
}

#[test]
fn concurrent_stats_reconcile_exactly() {
    // Fixed policy, hammering readers: the relaxed counters must not
    // lose updates.
    let pm = Arc::new(PolicyModule::new());
    pm.add_region(region(0x1000, 0x1000, Protection::READ_WRITE))
        .unwrap();
    let per_thread = 10_000u64;
    std::thread::scope(|s| {
        for t in 0..4 {
            let pm = Arc::clone(&pm);
            s.spawn(move || {
                for i in 0..per_thread {
                    // Half permitted, half denied.
                    let addr = if (i + t) % 2 == 0 { 0x1800 } else { 0x9000 };
                    let _ = pm.check(VAddr(addr), Size(8), AccessFlags::RW);
                }
            });
        }
    });
    let s = pm.stats();
    assert_eq!(s.checks, 4 * per_thread);
    assert_eq!(s.permitted + s.denied_no_match, 4 * per_thread);
}

// ---------------------------------------------------------------------
// Property tests: the lock-free paths agree with the mutex path.
// ---------------------------------------------------------------------

fn arb_prot() -> impl Strategy<Value = Protection> {
    prop_oneof![
        Just(Protection::NONE),
        Just(Protection::READ_ONLY),
        Just(Protection::READ_WRITE),
        Just(Protection::ALL),
    ]
}

fn arb_region() -> impl Strategy<Value = Region> {
    // Bases on a coarse grid so regions overlap often.
    (0u64..32, 1u64..5, arb_prot())
        .prop_map(|(slot, pages, prot)| region(0x1000 * slot, 0x1000 * pages, prot))
}

fn arb_flags() -> impl Strategy<Value = AccessFlags> {
    prop_oneof![
        Just(AccessFlags::READ),
        Just(AccessFlags::WRITE),
        Just(AccessFlags::RW),
        Just(AccessFlags::EXEC),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snapshot_path_agrees_with_mutex_path(
        regions in proptest::collection::vec(arb_region(), 0..10),
        probes in proptest::collection::vec(
            (0u64..0x40_000, prop_oneof![Just(1u64), Just(2), Just(4), Just(8)], arb_flags()),
            1..20,
        ),
    ) {
        for kind in [StoreKind::Table, StoreKind::Sorted, StoreKind::Interval] {
            let pm = PolicyModule::with_kind(kind);
            for r in &regions {
                // Some stores reject duplicate bases — skip those rules
                // on both paths alike.
                let _ = pm.add_region(*r);
            }
            for &(addr, size, flags) in &probes {
                pm.set_check_path(CheckPath::Snapshot);
                let snap = pm.check(VAddr(addr), Size(size), flags).map_err(|v| v.kind);
                pm.set_check_path(CheckPath::MutexStore);
                let mutex = pm.check(VAddr(addr), Size(size), flags).map_err(|v| v.kind);
                prop_assert_eq!(snap, mutex, "paths diverged ({:?} {:#x})", kind, addr);
            }
        }
    }

    #[test]
    fn tlb_agrees_with_full_check(
        regions in proptest::collection::vec(arb_region(), 0..10),
        probes in proptest::collection::vec(
            (0u64..0x40_000, prop_oneof![Just(1u64), Just(2), Just(4), Just(8)], arb_flags(), 0u32..8),
            1..40,
        ),
    ) {
        let pm = PolicyModule::new();
        for r in &regions {
            let _ = pm.add_region(*r);
        }
        let tlb = GuardTlb::with_prefix("prop.tlb");
        let reference = PolicyModule::new();
        for r in &regions {
            let _ = reference.add_region(*r);
        }
        for &(addr, size, flags, site) in &probes {
            let via_tlb = tlb
                .check(&pm, site, VAddr(addr), Size(size), flags)
                .map_err(|v| v.kind);
            let direct = reference
                .check(VAddr(addr), Size(size), flags)
                .map_err(|v| v.kind);
            // The TLB may satisfy a grant from cache, in which case the
            // denial kind can't differ because there is no denial; on
            // results both must agree exactly.
            prop_assert_eq!(via_tlb, direct, "TLB diverged at {:#x}", addr);
        }
        prop_assert_eq!(tlb.hits() + tlb.misses(), probes.len() as u64);
    }
}

#[test]
fn malformed_access_kinds_survive_concurrency() {
    // The precheck path (malformed/overflow) is lock-free and must
    // classify identically on both check paths.
    let pm = PolicyModule::new();
    for path in [CheckPath::Snapshot, CheckPath::MutexStore] {
        pm.set_check_path(path);
        // Size-0 with intent flags is the vacuous range-guard case —
        // allowed. Only the flag-less shape is malformed.
        assert!(pm.check(VAddr(0x1000), Size(0), AccessFlags::READ).is_ok());
        let v = pm
            .check(VAddr(0x1000), Size(0), AccessFlags::NONE)
            .unwrap_err();
        assert_eq!(v.kind, ViolationKind::MalformedAccess);
        let v = pm
            .check(VAddr(u64::MAX), Size(8), AccessFlags::READ)
            .unwrap_err();
        assert_eq!(v.kind, ViolationKind::AddressOverflow);
    }
}
