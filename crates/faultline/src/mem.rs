//! The device seam: a [`MemSpace`] wrapper that misbehaves like failing
//! hardware.
//!
//! [`FaultyMem`] delegates every access to the wrapped space and injects
//! faults per the plan's device-side [`FaultPoint`]s:
//!
//! * **surprise removal** — while active, MMIO reads return all-ones and
//!   MMIO writes vanish, exactly what a PCIe read to a removed device
//!   returns on real hardware;
//! * **TX hang** — `tx_tick` does nothing, so TDH stays stuck while the
//!   driver keeps queueing (the situation `e1000e`'s `tx_timeout`
//!   watchdog exists for);
//! * **DMA drop** — the tick runs (descriptors complete, TDH advances)
//!   but the frames never reach the wire;
//! * **link flap** — STATUS reads report link down;
//! * **descriptor corruption** — a RAM read (the driver's RAM reads are
//!   descriptor reads) comes back with one bit flipped;
//! * **RX DMA drop** — an incoming frame vanishes before the receive
//!   engine sees it (wire loss);
//! * **RX status corruption** — a descriptor status-byte read comes back
//!   with DD|EOP flipped (done work looks pending, or vice versa);
//! * **interrupt storm / lost interrupt** — ICR reads come back with
//!   spurious causes set, or with every latched cause swallowed.
//!
//! The wrapper sits *under* the guard layer (wrap `DirectMem`, then
//! [`kop_e1000e::GuardedMem`] over it) or *over* it — either way the
//! driver code is unchanged, mirroring how the paper instruments the
//! stock driver without modifying it.

use std::sync::Arc;

use kop_core::Violation;
use kop_e1000e::device::{E1000Device, FrameSink};
use kop_e1000e::regs::{self, BAR_SIZE};
use kop_e1000e::{AccessCounts, MemSpace};
use kop_trace::{Producer, TraceEvent, Tracer};

use crate::plan::FaultPlan;

/// What the fault layer actually did — the injection-side ledger the
/// resilience figure reports against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// MMIO reads answered with all-ones (surprise removal).
    pub mmio_all_ones: u64,
    /// MMIO writes silently dropped (surprise removal).
    pub mmio_writes_dropped: u64,
    /// TX ticks suppressed (TDH left stuck).
    pub tx_ticks_suppressed: u64,
    /// Frames completed by the device but dropped before the wire.
    pub frames_dropped: u64,
    /// STATUS reads answered with link down.
    pub link_flaps: u64,
    /// RAM reads answered with a flipped bit.
    pub reads_corrupted: u64,
    /// Incoming frames dropped before the receive DMA engine saw them.
    pub rx_frames_dropped: u64,
    /// RX descriptor status reads answered with flipped low bits.
    pub rx_status_corrupted: u64,
    /// ICR reads answered with spurious causes set (interrupt storm).
    pub irq_storms: u64,
    /// ICR reads answered with zero, swallowing latched causes.
    pub irqs_lost: u64,
}

impl FaultStats {
    /// Total injected fault events across all device sites.
    pub fn total(&self) -> u64 {
        self.mmio_all_ones
            + self.mmio_writes_dropped
            + self.tx_ticks_suppressed
            + self.frames_dropped
            + self.link_flaps
            + self.reads_corrupted
            + self.rx_frames_dropped
            + self.rx_status_corrupted
            + self.irq_storms
            + self.irqs_lost
    }
}

/// Discards every frame — the wire side of a stalled DMA engine.
struct DropSink;

impl FrameSink for DropSink {
    fn deliver(&mut self, _frame: &[u8]) {}
}

/// A [`MemSpace`] that injects device faults per a seeded [`FaultPlan`].
pub struct FaultyMem<M: MemSpace> {
    inner: M,
    plan: FaultPlan,
    stats: FaultStats,
}

impl<M: MemSpace> FaultyMem<M> {
    /// Wrap `inner`; only the plan's device-side points are consulted.
    pub fn new(inner: M, plan: FaultPlan) -> FaultyMem<M> {
        FaultyMem {
            inner,
            plan,
            stats: FaultStats::default(),
        }
    }

    /// The injection ledger so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.stats
    }

    /// The plan, for inspecting per-point event/fire counters.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Unwrap, discarding the fault layer.
    pub fn into_inner(self) -> M {
        self.inner
    }

    fn in_bar(&self, addr: u64) -> bool {
        let bar = self.inner.mmio_base();
        addr >= bar && addr < bar + BAR_SIZE
    }

    /// Record a fired fault in the wrapped space's tracer, if any.
    fn note_fault(&self, what: &'static str) {
        if let Some(t) = self.inner.tracer() {
            t.record(Producer::Faultline, TraceEvent::FaultInjected { what });
        }
    }
}

/// All-ones of the access width, what a dead PCIe device reads as.
fn all_ones(size: u64) -> u64 {
    if size >= 8 {
        u64::MAX
    } else {
        (1u64 << (size * 8)) - 1
    }
}

impl<M: MemSpace> MemSpace for FaultyMem<M> {
    fn read(&mut self, addr: u64, size: u64) -> Result<u64, Violation> {
        if self.in_bar(addr) {
            if self.plan.surprise_removal.check() {
                self.stats.mmio_all_ones += 1;
                self.note_fault("surprise_removal_read");
                return Ok(all_ones(size));
            }
            let mut v = self.inner.read(addr, size)?;
            if addr == self.inner.mmio_base() + regs::STATUS && self.plan.link_flap.check() {
                self.stats.link_flaps += 1;
                self.note_fault("link_flap");
                v &= !regs::status::LU;
            }
            if addr == self.inner.mmio_base() + regs::ICR {
                // The inner read already cleared ICR; the fault decides
                // what the ISR *sees* (spurious causes / nothing at all).
                if self.plan.irq_storm.check() {
                    self.stats.irq_storms += 1;
                    self.note_fault("irq_storm");
                    v |= regs::intr::RXT0 | regs::intr::TXDW;
                }
                if self.plan.lost_irq.check() {
                    self.stats.irqs_lost += 1;
                    self.note_fault("lost_irq");
                    v = 0;
                }
            }
            return Ok(v);
        }
        let mut v = self.inner.read(addr, size)?;
        if self.plan.desc_corrupt.check() {
            self.stats.reads_corrupted += 1;
            self.note_fault("desc_corrupt");
            // Deterministic bit choice: walk the word as faults accumulate.
            v ^= 1 << (self.plan.desc_corrupt.fired() % (size * 8).max(1));
        }
        if size == 1 && self.plan.rx_desc_corrupt.check() {
            self.stats.rx_status_corrupted += 1;
            self.note_fault("rx_desc_corrupt");
            // Status bytes are the driver's only 1-byte reads; flipping
            // DD|EOP makes done work look pending (missed harvest) or
            // pending work look done (garbage descriptor).
            v ^= 0b11;
        }
        Ok(v)
    }

    fn write(&mut self, addr: u64, size: u64, value: u64) -> Result<(), Violation> {
        if self.in_bar(addr) && self.plan.surprise_removal.check() {
            self.stats.mmio_writes_dropped += 1;
            self.note_fault("surprise_removal_write");
            return Ok(());
        }
        self.inner.write(addr, size, value)
    }

    // Bulk paths carry payload, not control state — left fault-free so
    // delivered frames stay byte-exact (corruption targets are the
    // control-plane reads above).
    fn bulk_write(&mut self, addr: u64, bytes: &[u8]) {
        self.inner.bulk_write(addr, bytes)
    }

    fn bulk_read(&mut self, addr: u64, len: usize) -> Vec<u8> {
        self.inner.bulk_read(addr, len)
    }

    fn tx_tick(&mut self, sink: &mut dyn FrameSink) -> u64 {
        if self.plan.tx_hang.check() {
            self.stats.tx_ticks_suppressed += 1;
            self.note_fault("tx_hang");
            return 0;
        }
        if self.plan.dma_drop.check() {
            let n = self.inner.tx_tick(&mut DropSink);
            self.stats.frames_dropped += n;
            self.note_fault("dma_drop");
            return 0;
        }
        self.inner.tx_tick(sink)
    }

    fn rx_inject(&mut self, frame: &[u8]) -> bool {
        if self.plan.rx_dma_drop.check() {
            self.stats.rx_frames_dropped += 1;
            self.note_fault("rx_dma_drop");
            return false;
        }
        self.inner.rx_inject(frame)
    }

    fn device(&mut self) -> &mut E1000Device {
        self.inner.device()
    }

    fn counts(&self) -> AccessCounts {
        self.inner.counts()
    }

    fn arena_base(&self) -> u64 {
        self.inner.arena_base()
    }

    fn arena_len(&self) -> u64 {
        self.inner.arena_len()
    }

    fn mmio_base(&self) -> u64 {
        self.inner.mmio_base()
    }

    fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.inner.tracer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Trigger;
    use kop_e1000e::device::VecSink;
    use kop_e1000e::{DirectMem, E1000Driver};

    fn faulty(plan: FaultPlan) -> FaultyMem<DirectMem> {
        FaultyMem::new(DirectMem::with_defaults(E1000Device::default()), plan)
    }

    #[test]
    fn surprise_removal_reads_all_ones_and_swallows_writes() {
        let plan = FaultPlan::quiet().with_surprise_removal(Trigger::Window { start: 1, len: 100 });
        let mut m = faulty(plan);
        let bar = m.mmio_base();
        assert_eq!(m.read(bar + regs::STATUS, 4).unwrap(), 0xffff_ffff);
        assert_eq!(m.read(bar + regs::CTRL, 8).unwrap(), u64::MAX);
        m.write(bar + regs::CTRL, 4, regs::ctrl::SLU).unwrap();
        let st = m.fault_stats();
        assert_eq!(st.mmio_all_ones, 2);
        assert_eq!(st.mmio_writes_dropped, 1);
        // RAM is unaffected by device removal.
        let base = m.arena_base();
        m.write(base, 8, 7).unwrap();
        assert_eq!(m.read(base, 8).unwrap(), 7);
    }

    #[test]
    fn tx_hang_leaves_tdh_stuck_until_window_passes() {
        let plan = FaultPlan::quiet().with_tx_hang(Trigger::Window { start: 1, len: 2 });
        let mut drv = E1000Driver::probe(faulty(plan)).unwrap();
        drv.up().unwrap();
        drv.xmit([2; 6], 0x0800, b"stuck?").unwrap();
        let mut sink = VecSink::default();
        assert_eq!(drv.mem().tx_tick(&mut sink), 0);
        assert_eq!(drv.mem().tx_tick(&mut sink), 0);
        assert_eq!(drv.mem().fault_stats().tx_ticks_suppressed, 2);
        // Window over: the queued frame drains.
        assert_eq!(drv.mem().tx_tick(&mut sink), 1);
        assert_eq!(sink.frames.len(), 1);
    }

    #[test]
    fn watchdog_recovers_driver_from_injected_hang() {
        let plan = FaultPlan::quiet().with_tx_hang(Trigger::Window { start: 1, len: 4 });
        let mut drv = E1000Driver::probe(faulty(plan)).unwrap();
        drv.up().unwrap();
        drv.xmit([2; 6], 0x0800, b"doomed").unwrap();
        let mut sink = VecSink::default();
        drv.mem().tx_tick(&mut sink);
        assert!(!drv.watchdog().unwrap(), "first pass arms");
        drv.mem().tx_tick(&mut sink);
        assert!(drv.watchdog().unwrap(), "second pass fires and resets");
        assert_eq!(drv.stats().resets, 1);
        // Post-reset the driver transmits again once the hang window ends.
        drv.xmit([2; 6], 0x0800, b"recovered").unwrap();
        while drv.mem().tx_tick(&mut sink) == 0 {}
        assert_eq!(sink.frames.len(), 1);
    }

    #[test]
    fn dma_drop_completes_descriptors_but_loses_frames() {
        let plan = FaultPlan::quiet().with_dma_drop(Trigger::Nth(1));
        let mut drv = E1000Driver::probe(faulty(plan)).unwrap();
        drv.up().unwrap();
        drv.xmit([2; 6], 0x0800, b"lost").unwrap();
        let mut sink = VecSink::default();
        assert_eq!(drv.mem().tx_tick(&mut sink), 0);
        assert!(sink.frames.is_empty());
        assert_eq!(drv.mem().fault_stats().frames_dropped, 1);
        // Descriptors were consumed: ring is clean, not hung.
        drv.clean_tx().unwrap();
        assert_eq!(drv.tx_pending(), 0);
    }

    #[test]
    fn link_flap_masks_lu_on_status_reads() {
        let plan = FaultPlan::quiet().with_link_flap(Trigger::Nth(2));
        let mut m = faulty(plan);
        let bar = m.mmio_base();
        m.write(bar + regs::CTRL, 4, regs::ctrl::SLU).unwrap();
        assert_ne!(m.read(bar + regs::STATUS, 4).unwrap() & regs::status::LU, 0);
        assert_eq!(m.read(bar + regs::STATUS, 4).unwrap() & regs::status::LU, 0);
        assert_ne!(m.read(bar + regs::STATUS, 4).unwrap() & regs::status::LU, 0);
        assert_eq!(m.fault_stats().link_flaps, 1);
    }

    #[test]
    fn desc_corrupt_flips_exactly_one_bit_on_ram_reads() {
        let plan = FaultPlan::quiet().with_desc_corrupt(Trigger::Nth(2));
        let mut m = faulty(plan);
        let base = m.arena_base();
        m.write(base, 8, 0).unwrap();
        assert_eq!(m.read(base, 8).unwrap(), 0);
        let corrupted = m.read(base, 8).unwrap();
        assert_eq!(corrupted.count_ones(), 1, "exactly one bit flipped");
        assert_eq!(m.read(base, 8).unwrap(), 0, "fault was transient");
        assert_eq!(m.fault_stats().reads_corrupted, 1);
    }

    #[test]
    fn fired_faults_land_in_the_trace() {
        let plan = FaultPlan::quiet().with_link_flap(Trigger::Nth(1));
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        let inner = kop_e1000e::GuardedMem::with_tracer(
            DirectMem::with_defaults(E1000Device::default()),
            kop_policy::NoopPolicy,
            Arc::clone(&tracer),
        );
        let mut m = FaultyMem::new(inner, plan);
        let bar = m.mmio_base();
        let _ = m.read(bar + regs::STATUS, 4).unwrap();
        let snap = tracer.snapshot();
        assert!(
            snap.records
                .iter()
                .any(|r| r.producer == Producer::Faultline
                    && matches!(r.event, TraceEvent::FaultInjected { what: "link_flap" })),
            "fault event missing from {:?}",
            snap.records
        );
        // The guarded read under the fault layer was traced too.
        assert_eq!(tracer.total_checks(), 1);
    }

    #[test]
    fn rx_dma_drop_loses_frames_on_the_wire_side() {
        let plan = FaultPlan::quiet().with_rx_dma_drop(Trigger::Nth(2));
        let mut drv = E1000Driver::probe(faulty(plan)).unwrap();
        drv.up().unwrap();
        assert!(drv.mem().rx_inject(b"delivered frame"));
        assert!(!drv.mem().rx_inject(b"dropped frame"), "wire loss");
        assert!(drv.mem().rx_inject(b"delivered again"));
        assert_eq!(drv.mem().fault_stats().rx_frames_dropped, 1);
        // The driver harvests exactly the two delivered frames.
        let frames = drv.rx_poll().unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], b"delivered frame");
        assert_eq!(frames[1], b"delivered again");
    }

    #[test]
    fn rx_status_corruption_hides_done_work_until_next_poll() {
        // Fire on the driver's first 1-byte status read: the completed
        // descriptor looks pending, the poll comes up empty, and the
        // next (clean) poll harvests the frame — no loss.
        let plan = FaultPlan::quiet().with_rx_desc_corrupt(Trigger::Nth(1));
        let mut drv = E1000Driver::probe(faulty(plan)).unwrap();
        drv.up().unwrap();
        assert!(drv.mem().rx_inject(b"hidden briefly"));
        let (frames, drained) = drv.poll(8).unwrap();
        assert!(frames.is_empty(), "corrupted status hid the frame");
        // The end-of-pass drain re-check reads the true status byte, so
        // NAPI already knows there is still work: poll again.
        assert!(!drained);
        assert_eq!(drv.mem().fault_stats().rx_status_corrupted, 1);
        let (frames, _) = drv.poll(8).unwrap();
        assert_eq!(frames, vec![b"hidden briefly".to_vec()], "recovered");
    }

    #[test]
    fn irq_storm_raises_spurious_causes() {
        let plan = FaultPlan::quiet().with_irq_storm(Trigger::Nth(1));
        let mut drv = E1000Driver::probe(faulty(plan)).unwrap();
        drv.up().unwrap();
        // No RX work exists, yet the ISR sees causes.
        let cause = drv.irq_enter().unwrap();
        assert_ne!(cause & regs::intr::RXT0, 0, "spurious RXT0");
        assert_eq!(drv.mem().fault_stats().irq_storms, 1);
        // The poll behind the spurious interrupt finds nothing and
        // re-arms; the datapath is unharmed.
        let (frames, drained) = drv.poll(8).unwrap();
        assert!(frames.is_empty());
        assert!(drained);
        assert_eq!(drv.stats().rx_no_desc, 1);
    }

    #[test]
    fn lost_irq_recovered_by_polling() {
        let plan = FaultPlan::quiet().with_lost_irq(Trigger::Nth(1));
        let mut drv = E1000Driver::probe(faulty(plan)).unwrap();
        drv.up().unwrap();
        assert!(drv.mem().rx_inject(b"quietly waiting"));
        // The latched RXT0 is swallowed at ISR entry...
        let cause = drv.irq_enter().unwrap();
        assert_eq!(cause, 0, "interrupt lost");
        assert_eq!(drv.mem().fault_stats().irqs_lost, 1);
        // ...but the frame is still in the ring; a poll recovers it.
        let (frames, _) = drv.poll(8).unwrap();
        assert_eq!(frames, vec![b"quietly waiting".to_vec()]);
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let mut m = faulty(FaultPlan::quiet());
        let bar = m.mmio_base();
        m.write(bar + regs::CTRL, 4, regs::ctrl::SLU).unwrap();
        assert_ne!(m.read(bar + regs::STATUS, 4).unwrap() & regs::status::LU, 0);
        assert_eq!(m.fault_stats(), FaultStats::default());
        assert_eq!(m.fault_stats().total(), 0);
    }
}
