//! The kernel-memory seam: a [`FaultHook`] implementation.
//!
//! The simulated kernel ([`kop_kernel::SimMemory`]) accepts one installed
//! hook and consults it on every `kmalloc` and every typed read.
//! [`KernelFaults`] drives that hook from a seeded plan: allocations fail
//! (the `-ENOMEM` path modules so rarely test) and reads come back with a
//! bit flipped (a transient corruption a guarded module must not be able
//! to turn into a kernel-wide failure).
//!
//! Once installed the hook is owned by the kernel, so observation goes
//! through shared [`KernelFaultCounters`] handed out before installation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kop_core::{Size, VAddr};
use kop_kernel::FaultHook;

use crate::plan::{FaultPlan, FaultPoint};

/// Shared view of what an installed [`KernelFaults`] hook has injected.
#[derive(Clone, Debug, Default)]
pub struct KernelFaultCounters {
    failed_allocs: Arc<AtomicU64>,
    corrupted_reads: Arc<AtomicU64>,
}

impl KernelFaultCounters {
    /// Allocations the hook failed.
    pub fn failed_allocs(&self) -> u64 {
        self.failed_allocs.load(Ordering::Relaxed)
    }

    /// Reads the hook corrupted.
    pub fn corrupted_reads(&self) -> u64 {
        self.corrupted_reads.load(Ordering::Relaxed)
    }
}

/// A [`FaultHook`] injecting kmalloc failures and transient read
/// corruption per a seeded [`FaultPlan`].
pub struct KernelFaults {
    kmalloc_fail: FaultPoint,
    read_corrupt: FaultPoint,
    counters: KernelFaultCounters,
}

impl KernelFaults {
    /// Build from a plan; only the kernel-side points are consulted.
    pub fn new(plan: FaultPlan) -> KernelFaults {
        KernelFaults {
            kmalloc_fail: plan.kmalloc_fail,
            read_corrupt: plan.read_corrupt,
            counters: KernelFaultCounters::default(),
        }
    }

    /// Counters that stay readable after the hook is installed.
    pub fn counters(&self) -> KernelFaultCounters {
        self.counters.clone()
    }
}

impl FaultHook for KernelFaults {
    fn fail_kmalloc(&mut self, _size: u64) -> bool {
        if self.kmalloc_fail.check() {
            self.counters.failed_allocs.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn corrupt_read(&mut self, _addr: VAddr, size: Size, value: u64) -> u64 {
        if self.read_corrupt.check() {
            self.counters
                .corrupted_reads
                .fetch_add(1, Ordering::Relaxed);
            value ^ (1 << (self.read_corrupt.fired() % (size.0 * 8).max(1)))
        } else {
            value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Trigger;
    use kop_core::KernelError;
    use kop_kernel::Kernel;

    #[test]
    fn kmalloc_fails_on_schedule_and_kernel_survives() {
        let (mut k, _key) = Kernel::boot_default();
        let hook = KernelFaults::new(FaultPlan::quiet().with_kmalloc_fail(Trigger::Nth(2)));
        let counters = hook.counters();
        k.mem.set_fault_hook(Box::new(hook));
        assert!(k.kmalloc(64).is_ok());
        match k.kmalloc(64) {
            Err(KernelError::NoMemory(msg)) => assert!(msg.contains("injected")),
            other => panic!("expected injected NoMemory, got {other:?}"),
        }
        assert!(k.kmalloc(64).is_ok(), "failure is transient");
        assert_eq!(counters.failed_allocs(), 1);
        assert!(k.panicked().is_none());
    }

    #[test]
    fn read_corruption_is_transient_and_counted() {
        let (mut k, _key) = Kernel::boot_default();
        let addr = k.kmalloc(8).unwrap();
        k.mem.write_uint(addr, Size(8), 0).unwrap();
        let hook = KernelFaults::new(FaultPlan::quiet().with_read_corrupt(Trigger::Nth(1)));
        let counters = hook.counters();
        k.mem.set_fault_hook(Box::new(hook));
        let bad = k.mem.read_uint(addr, Size(8)).unwrap();
        assert_eq!(bad.count_ones(), 1, "one bit flipped");
        let good = k.mem.read_uint(addr, Size(8)).unwrap();
        assert_eq!(good, 0, "stored value was never touched");
        assert_eq!(counters.corrupted_reads(), 1);
        k.mem.clear_fault_hook();
    }
}
