//! Fault plans: *when* a fault fires, decided deterministically.
//!
//! A [`FaultPoint`] counts the events presented to it and fires according
//! to its [`Trigger`]. A [`FaultPlan`] bundles one point per fault site
//! across all three seams; wrappers ([`crate::FaultyMem`],
//! [`crate::FaultyPolicy`], [`crate::KernelFaults`]) each consume the
//! points for their seam. Probability triggers draw from a splitmix RNG
//! seeded per point from the plan seed, so two plans built from the same
//! seed produce identical fault schedules.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// When a fault point fires, relative to its private event counter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Trigger {
    /// Never fires (the quiet default).
    Never,
    /// Fires exactly on the `n`th event (1-based), once.
    Nth(u64),
    /// Fires for every event in `[start, start + len)` (1-based counter).
    Window {
        /// First event (1-based) on which the fault is active.
        start: u64,
        /// Number of consecutive events the fault stays active.
        len: u64,
    },
    /// Fires independently per event with this probability, drawn from the
    /// point's seeded RNG.
    Probability(f64),
}

/// One injectable fault site: an event counter plus a [`Trigger`].
#[derive(Clone, Debug)]
pub struct FaultPoint {
    trigger: Trigger,
    rng: StdRng,
    events: u64,
    fired: u64,
}

impl FaultPoint {
    /// A point with the given trigger; `seed` feeds the RNG used by
    /// [`Trigger::Probability`].
    pub fn new(trigger: Trigger, seed: u64) -> FaultPoint {
        FaultPoint {
            trigger,
            rng: StdRng::seed_from_u64(seed),
            events: 0,
            fired: 0,
        }
    }

    /// A point that never fires.
    pub fn off() -> FaultPoint {
        FaultPoint::new(Trigger::Never, 0)
    }

    /// Present one event: bump the counter and decide whether the fault
    /// fires on it.
    pub fn check(&mut self) -> bool {
        self.events += 1;
        let hit = match self.trigger {
            Trigger::Never => false,
            Trigger::Nth(n) => self.events == n,
            Trigger::Window { start, len } => self.events >= start && self.events - start < len,
            Trigger::Probability(p) => self.rng.random::<f64>() < p,
        };
        if hit {
            self.fired += 1;
        }
        hit
    }

    /// Events presented so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Events on which the fault fired.
    pub fn fired(&self) -> u64 {
        self.fired
    }
}

/// A seeded schedule of faults across all three seams.
///
/// Starts quiet; enable sites with the `with_*` builders. The plan is
/// `Clone`, so one configured plan can drive several wrappers (each clone
/// keeps independent counters but the identical schedule).
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Device seam: MMIO accesses return all-ones / writes vanish
    /// (surprise removal). Counted per MMIO access.
    pub surprise_removal: FaultPoint,
    /// Device seam: the TX DMA engine does nothing this tick (TDH stuck).
    /// Counted per `tx_tick`.
    pub tx_hang: FaultPoint,
    /// Device seam: descriptors complete but the frame is dropped on the
    /// wire side. Counted per `tx_tick`.
    pub dma_drop: FaultPoint,
    /// Device seam: STATUS reads report link down. Counted per STATUS
    /// read.
    pub link_flap: FaultPoint,
    /// Device seam: a RAM (descriptor) read comes back with one bit
    /// flipped. Counted per RAM read.
    pub desc_corrupt: FaultPoint,
    /// Kernel seam: `kmalloc` fails. Counted per allocation attempt.
    pub kmalloc_fail: FaultPoint,
    /// Kernel seam: a simulated-memory read is transiently corrupted.
    /// Counted per read.
    pub read_corrupt: FaultPoint,
    /// Policy seam: `carat_guard` denies an access the policy would have
    /// allowed. Counted per check.
    pub spurious_deny: FaultPoint,
    /// Policy seam: a check is delayed (costed at
    /// [`crate::DELAY_CYCLES`]). Counted per check.
    pub check_delay: FaultPoint,
    /// Harness seam: the module under supervision misbehaves (probes a
    /// forbidden address) this round, driving it toward quarantine and
    /// the supervisor toward a restart. Counted per supervision round by
    /// the soak harness — no wrapper consumes it.
    pub restart_storm: FaultPoint,
    /// Device RX seam: the receive DMA engine drops an incoming frame on
    /// the floor (wire loss — `rx_inject` reports failure, nothing is
    /// written to memory). Counted per `rx_inject`.
    pub rx_dma_drop: FaultPoint,
    /// Device RX seam: an RX descriptor *status-byte* read comes back
    /// with its low bits flipped — the driver sees done-work as pending
    /// (a missed harvest, recovered on the next poll) or garbage.
    /// Counted per 1-byte RAM read.
    pub rx_desc_corrupt: FaultPoint,
    /// Interrupt seam: an ICR read comes back with RX/TX causes spuriously
    /// set (interrupt storm — the ISR runs with no work behind it).
    /// Counted per ICR read.
    pub irq_storm: FaultPoint,
    /// Interrupt seam: an ICR read comes back zero, swallowing latched
    /// causes (lost interrupt — recovered by the next poll or watchdog).
    /// Counted per ICR read.
    pub lost_irq: FaultPoint,
}

/// Distinct per-point seed offsets so sites with probability triggers
/// draw independent streams from the same plan seed.
const POINT_SALTS: [u64; 14] = [
    0x9e37_79b9_7f4a_7c15,
    0xbf58_476d_1ce4_e5b9,
    0x94d0_49bb_1331_11eb,
    0xd6e8_feb8_6659_fd93,
    0xa5a5_a5a5_5a5a_5a5a,
    0x0123_4567_89ab_cdef,
    0xfedc_ba98_7654_3210,
    0x0f0f_0f0f_f0f0_f0f0,
    0x3c6e_f372_fe94_f82b,
    0x1f83_d9ab_fb41_bd6b,
    0x5be0_cd19_137e_2179,
    0x6a09_e667_f3bc_c908,
    0xbb67_ae85_84ca_a73b,
    0x510e_527f_ade6_82d1,
];

impl FaultPlan {
    /// A plan whose probability triggers will draw from streams derived
    /// from `seed`; all sites start [`Trigger::Never`].
    pub fn new(seed: u64) -> FaultPlan {
        let mut salts = POINT_SALTS.iter();
        let mut point = || FaultPoint::new(Trigger::Never, seed ^ salts.next().unwrap());
        FaultPlan {
            surprise_removal: point(),
            tx_hang: point(),
            dma_drop: point(),
            link_flap: point(),
            desc_corrupt: point(),
            kmalloc_fail: point(),
            read_corrupt: point(),
            spurious_deny: point(),
            check_delay: point(),
            restart_storm: point(),
            rx_dma_drop: point(),
            rx_desc_corrupt: point(),
            irq_storm: point(),
            lost_irq: point(),
        }
    }

    /// A plan with every site off (alias of `new(0)` for readability).
    pub fn quiet() -> FaultPlan {
        FaultPlan::new(0)
    }

    fn retrigger(point: &mut FaultPoint, trigger: Trigger) {
        point.trigger = trigger;
    }

    /// Enable surprise removal with the given trigger.
    pub fn with_surprise_removal(mut self, t: Trigger) -> FaultPlan {
        Self::retrigger(&mut self.surprise_removal, t);
        self
    }

    /// Enable TX hangs with the given trigger.
    pub fn with_tx_hang(mut self, t: Trigger) -> FaultPlan {
        Self::retrigger(&mut self.tx_hang, t);
        self
    }

    /// Enable wire-side frame drops with the given trigger.
    pub fn with_dma_drop(mut self, t: Trigger) -> FaultPlan {
        Self::retrigger(&mut self.dma_drop, t);
        self
    }

    /// Enable link flaps with the given trigger.
    pub fn with_link_flap(mut self, t: Trigger) -> FaultPlan {
        Self::retrigger(&mut self.link_flap, t);
        self
    }

    /// Enable descriptor-read bit corruption with the given trigger.
    pub fn with_desc_corrupt(mut self, t: Trigger) -> FaultPlan {
        Self::retrigger(&mut self.desc_corrupt, t);
        self
    }

    /// Enable kmalloc failures with the given trigger.
    pub fn with_kmalloc_fail(mut self, t: Trigger) -> FaultPlan {
        Self::retrigger(&mut self.kmalloc_fail, t);
        self
    }

    /// Enable transient read corruption with the given trigger.
    pub fn with_read_corrupt(mut self, t: Trigger) -> FaultPlan {
        Self::retrigger(&mut self.read_corrupt, t);
        self
    }

    /// Enable spurious guard denials with the given trigger.
    pub fn with_spurious_deny(mut self, t: Trigger) -> FaultPlan {
        Self::retrigger(&mut self.spurious_deny, t);
        self
    }

    /// Enable guard-check delays with the given trigger.
    pub fn with_check_delay(mut self, t: Trigger) -> FaultPlan {
        Self::retrigger(&mut self.check_delay, t);
        self
    }

    /// Enable supervised-module misbehaviour storms with the given
    /// trigger.
    pub fn with_restart_storm(mut self, t: Trigger) -> FaultPlan {
        Self::retrigger(&mut self.restart_storm, t);
        self
    }

    /// Enable RX wire-side frame drops with the given trigger.
    pub fn with_rx_dma_drop(mut self, t: Trigger) -> FaultPlan {
        Self::retrigger(&mut self.rx_dma_drop, t);
        self
    }

    /// Enable RX descriptor status corruption with the given trigger.
    pub fn with_rx_desc_corrupt(mut self, t: Trigger) -> FaultPlan {
        Self::retrigger(&mut self.rx_desc_corrupt, t);
        self
    }

    /// Enable spurious interrupt storms with the given trigger.
    pub fn with_irq_storm(mut self, t: Trigger) -> FaultPlan {
        Self::retrigger(&mut self.irq_storm, t);
        self
    }

    /// Enable lost interrupts with the given trigger.
    pub fn with_lost_irq(mut self, t: Trigger) -> FaultPlan {
        Self::retrigger(&mut self.lost_irq, t);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_fires_exactly_once() {
        let mut p = FaultPoint::new(Trigger::Nth(3), 1);
        let hits: Vec<bool> = (0..6).map(|_| p.check()).collect();
        assert_eq!(hits, [false, false, true, false, false, false]);
        assert_eq!(p.fired(), 1);
        assert_eq!(p.events(), 6);
    }

    #[test]
    fn window_covers_len_events() {
        let mut p = FaultPoint::new(Trigger::Window { start: 2, len: 3 }, 1);
        let hits: Vec<bool> = (0..6).map(|_| p.check()).collect();
        assert_eq!(hits, [false, true, true, true, false, false]);
        assert_eq!(p.fired(), 3);
    }

    #[test]
    fn probability_is_deterministic_per_seed() {
        let run = |seed| {
            let mut p = FaultPoint::new(Trigger::Probability(0.3), seed);
            (0..1000).map(|_| p.check()).collect::<Vec<bool>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
        let fired = run(42).iter().filter(|&&h| h).count();
        // ~300 expected; loose bounds just catch a broken draw.
        assert!((150..450).contains(&fired), "fired {fired} of 1000");
    }

    #[test]
    fn never_and_off_never_fire() {
        let mut p = FaultPoint::off();
        assert!((0..100).all(|_| !p.check()));
    }

    #[test]
    fn plan_clones_replay_identically() {
        let plan = FaultPlan::new(7).with_dma_drop(Trigger::Probability(0.5));
        let mut a = plan.clone();
        let mut b = plan;
        for _ in 0..200 {
            assert_eq!(a.dma_drop.check(), b.dma_drop.check());
        }
    }

    #[test]
    fn plan_points_draw_independent_streams() {
        let mut plan = FaultPlan::new(9)
            .with_tx_hang(Trigger::Probability(0.5))
            .with_dma_drop(Trigger::Probability(0.5));
        let a: Vec<bool> = (0..64).map(|_| plan.tx_hang.check()).collect();
        let b: Vec<bool> = (0..64).map(|_| plan.dma_drop.check()).collect();
        assert_ne!(a, b, "sites must not share one RNG stream");
    }
}
