//! # kop-faultline — deterministic fault injection for the simulation
//!
//! The paper's robustness claim is qualitative: a guarded module that
//! violates policy is caught before it corrupts the kernel. This crate
//! makes the claim *measurable* by injecting faults — deterministically,
//! from a seed — at the three seams where a real system breaks:
//!
//! * **device** ([`FaultyMem`]) — wraps any [`kop_e1000e::MemSpace`] and
//!   misbehaves like failing hardware: MMIO reads return all-ones
//!   (surprise removal), the TX DMA engine hangs (TDH stuck), frames are
//!   dropped on the wire side, the link flaps, descriptor reads come back
//!   with a flipped bit;
//! * **kernel memory** ([`KernelFaults`]) — a [`kop_kernel::FaultHook`]
//!   that fails `kmalloc` and transiently corrupts simulated reads;
//! * **policy** ([`FaultyPolicy`]) — wraps any
//!   [`kop_policy::PolicyCheck`] and spuriously denies or delays checks,
//!   modelling a buggy or slow policy module.
//!
//! Every fault site is driven by a [`FaultPoint`] whose [`Trigger`] fires
//! on the nth event, inside an event window, or with a probability drawn
//! from a seeded RNG — so a fault storm replays bit-identically from its
//! seed, and the recovery machinery (driver watchdog/reset/retry, module
//! quarantine) can be regression-tested instead of hand-waved.

#![warn(missing_docs)]

pub mod kernel;
pub mod mem;
pub mod plan;
pub mod policy;

pub use kernel::{KernelFaultCounters, KernelFaults};
pub use mem::{FaultStats, FaultyMem};
pub use plan::{FaultPlan, FaultPoint, Trigger};
pub use policy::{FaultyPolicy, DELAY_CYCLES};
