//! The policy seam: a [`PolicyCheck`] wrapper that misbehaves.
//!
//! A buggy or overloaded policy module fails in two ways the guard layer
//! must tolerate: it *denies an access it should allow* (spurious deny —
//! the driver sees a `Violation` out of nowhere) and it *takes too long*
//! (delay — modelled as extra cycles, since the simulation has no wall
//! clock). [`FaultyPolicy`] injects both per a seeded plan, so the
//! driver's retry path and the benchmark's cost model can be exercised
//! against a policy that is not perfectly well-behaved.

use std::cell::RefCell;

use kop_core::error::ViolationKind;
use kop_core::{AccessFlags, Size, VAddr, Violation};
use kop_policy::PolicyCheck;

use crate::plan::{FaultPlan, FaultPoint};

/// Modelled cost of one delayed check, in machine cycles. A healthy R350
/// guard check is a few tens of cycles; a delayed one is two orders of
/// magnitude worse (lock contention, cold caches).
pub const DELAY_CYCLES: u64 = 4000;

struct PolicyFaultState {
    spurious_deny: FaultPoint,
    check_delay: FaultPoint,
    denials: u64,
    delays: u64,
    extra_cycles: u64,
}

/// A [`PolicyCheck`] that spuriously denies or delays checks per a
/// seeded [`FaultPlan`].
pub struct FaultyPolicy<P: PolicyCheck> {
    inner: P,
    // `carat_guard` takes `&self` (the policy is shared), so the fault
    // counters live behind interior mutability.
    state: RefCell<PolicyFaultState>,
}

impl<P: PolicyCheck> FaultyPolicy<P> {
    /// Wrap `inner`; only the plan's policy-side points are consulted.
    pub fn new(inner: P, plan: FaultPlan) -> FaultyPolicy<P> {
        FaultyPolicy {
            inner,
            state: RefCell::new(PolicyFaultState {
                spurious_deny: plan.spurious_deny,
                check_delay: plan.check_delay,
                denials: 0,
                delays: 0,
                extra_cycles: 0,
            }),
        }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Checks denied that the real policy never saw.
    pub fn denials(&self) -> u64 {
        self.state.borrow().denials
    }

    /// Checks that were delayed.
    pub fn delays(&self) -> u64 {
        self.state.borrow().delays
    }

    /// Total modelled delay cost ([`DELAY_CYCLES`] per delayed check) —
    /// add this to a machine model's cycle budget.
    pub fn extra_cycles(&self) -> u64 {
        self.state.borrow().extra_cycles
    }
}

impl<P: PolicyCheck> PolicyCheck for FaultyPolicy<P> {
    fn carat_guard(&self, addr: VAddr, size: Size, flags: AccessFlags) -> Result<(), Violation> {
        {
            let mut st = self.state.borrow_mut();
            if st.check_delay.check() {
                st.delays += 1;
                st.extra_cycles += DELAY_CYCLES;
            }
            if st.spurious_deny.check() {
                st.denials += 1;
                return Err(Violation::new(
                    addr,
                    size,
                    flags,
                    ViolationKind::NoMatchingRegion,
                ));
            }
        }
        self.inner.carat_guard(addr, size, flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Trigger;
    use kop_policy::NoopPolicy;

    #[test]
    fn spurious_deny_rejects_an_allowed_access() {
        let p = FaultyPolicy::new(
            NoopPolicy,
            FaultPlan::quiet().with_spurious_deny(Trigger::Nth(2)),
        );
        assert!(p
            .carat_guard(VAddr(0x100), Size(8), AccessFlags::READ)
            .is_ok());
        let v = p
            .carat_guard(VAddr(0x100), Size(8), AccessFlags::READ)
            .unwrap_err();
        assert_eq!(v.kind, ViolationKind::NoMatchingRegion);
        assert_eq!(v.addr, VAddr(0x100));
        assert!(p
            .carat_guard(VAddr(0x100), Size(8), AccessFlags::READ)
            .is_ok());
        assert_eq!(p.denials(), 1);
    }

    #[test]
    fn delay_accumulates_modelled_cycles_without_denying() {
        let p = FaultyPolicy::new(
            NoopPolicy,
            FaultPlan::quiet().with_check_delay(Trigger::Window { start: 1, len: 3 }),
        );
        for _ in 0..5 {
            p.carat_guard(VAddr(0), Size(1), AccessFlags::READ).unwrap();
        }
        assert_eq!(p.delays(), 3);
        assert_eq!(p.extra_cycles(), 3 * DELAY_CYCLES);
        assert_eq!(p.denials(), 0);
    }

    #[test]
    fn quiet_plan_forwards_to_inner_policy() {
        let pm = kop_policy::PolicyModule::new();
        pm.set_default_action(kop_policy::DefaultAction::Allow);
        let p = FaultyPolicy::new(&pm, FaultPlan::quiet());
        p.carat_guard(VAddr(0x40), Size(4), AccessFlags::WRITE)
            .unwrap();
        assert_eq!(pm.stats().checks, 1);
        assert_eq!(p.denials() + p.delays(), 0);
    }
}
